#include "src/designs/designs.hpp"

#include <stdexcept>

namespace bb::designs {

namespace {

DesignInfo make_systolic() {
  DesignInfo d;
  d.name = "systolic";
  d.title = "Systolic counter";
  d.benchmark = "one entire 8-handshake cycle (count x8 then carry)";
  d.source = R"(
-- 8-handshake systolic counter (van Berkel style): eight handshakes on
-- `count`, then a carry handshake.  Pure control: a 9-way sequencer whose
-- count branches share the external port through an 8-way call.
procedure systolic8 (sync count; sync carry) is
begin
  loop
    sync count ; sync count ; sync count ; sync count ;
    sync count ; sync count ; sync count ; sync count ;
    sync carry
  end
end
)";
  return d;
}

DesignInfo make_wagging() {
  DesignInfo d;
  d.name = "wagging";
  d.title = "Wagging register";
  d.benchmark = "forward latency (first word in to first word out)";
  d.source = R"(
-- 8-place 8-bit word wagging register: two interleaved 4-stage shift
-- halves; words alternate ("wag") between the halves.
procedure wag8 (input in : 8; output out : 8) is
  variable a0, a1, a2, a3 : 8
  variable b0, b1, b2, b3 : 8
begin
  loop
    ( in -> a0 ; a1 := a0 ; a2 := a1 ; a3 := a2 ; out <- a3 ) ;
    ( in -> b0 ; b1 := b0 ; b2 := b1 ; b3 := b2 ; out <- b3 )
  end
end
)";
  return d;
}

DesignInfo make_stack() {
  DesignInfo d;
  d.name = "stack";
  d.title = "Stack";
  d.benchmark = "three push operations followed by three pop operations";
  d.source = R"(
-- 8-place 8-bit stack.  cmd = 1 pushes the next word from `push`;
-- cmd = 0 pops onto `pop`.
procedure stack8 (input cmd : 1; input push : 8; output pop : 8) is
  variable s0, s1, s2, s3, s4, s5, s6, s7 : 8
  variable sp : 4
  variable c : 1
  variable t : 8
begin
  sp := 0 ;
  loop
    cmd -> c ;
    if c = 1 then
      push -> t ;
      case sp of
        0: s0 := t | 1: s1 := t | 2: s2 := t | 3: s3 := t |
        4: s4 := t | 5: s5 := t | 6: s6 := t | 7: s7 := t
      end ;
      sp := sp + 1
    else
      sp := sp - 1 ;
      case sp of
        0: pop <- s0 | 1: pop <- s1 | 2: pop <- s2 | 3: pop <- s3 |
        4: pop <- s4 | 5: pop <- s5 | 6: pop <- s6 | 7: pop <- s7
      end
    end
  end
end
)";
  return d;
}

DesignInfo make_ssem() {
  DesignInfo d;
  d.name = "ssem";
  d.title = "Microprocessor core";
  d.benchmark =
      "machine program that writes the values 0..4 to consecutive memory "
      "locations and stops";
  d.source = R"(
-- SSEM-like 32-bit non-pipelined microprocessor core (Manchester Baby
-- instruction set).  Memory lives in the environment behind three ports:
-- maddr latches an address, mdata reads the addressed word, mwdata
-- writes it.  Instruction word: bits 4..0 = line, bits 15..13 = function
-- (0 JMP, 1 JRP, 2 LDN, 3 STO, 4/5 SUB, 6 CMP, 7 STP).
procedure ssem (output maddr : 5; input mdata : 32; output mwdata : 32) is
  variable pc : 5
  variable acc : 32
  variable ir : 32
  variable t : 32
  variable running : 1
begin
  pc := 0 ; acc := 0 ; running := 1 ;
  while running = 1 then
    maddr <- pc ; mdata -> ir ; pc := pc + 1 ;
    case ir[15..13] of
      0 : ( maddr <- ir[4..0] ; mdata -> t ; pc := t[4..0] )
    | 1 : ( maddr <- ir[4..0] ; mdata -> t ; pc := pc + t[4..0] )
    | 2 : ( maddr <- ir[4..0] ; mdata -> t ; acc := - t )
    | 3 : ( maddr <- ir[4..0] ; mwdata <- acc )
    | 4, 5 : ( maddr <- ir[4..0] ; mdata -> t ; acc := acc - t )
    | 6 : ( if acc[31] = 1 then pc := pc + 1 else continue end )
    | 7 : running := 0
    end
  end
end
)";
  return d;
}

}  // namespace

const DesignInfo& systolic_counter() {
  static const DesignInfo d = make_systolic();
  return d;
}
const DesignInfo& wagging_register() {
  static const DesignInfo d = make_wagging();
  return d;
}
const DesignInfo& stack() {
  static const DesignInfo d = make_stack();
  return d;
}
const DesignInfo& ssem() {
  static const DesignInfo d = make_ssem();
  return d;
}

std::vector<const DesignInfo*> all_designs() {
  return {&systolic_counter(), &wagging_register(), &stack(), &ssem()};
}

const DesignInfo& design(const std::string& name) {
  for (const DesignInfo* d : all_designs()) {
    if (d->name == name) return *d;
  }
  throw std::out_of_range("unknown design '" + name + "'");
}

std::uint32_t ssem_encode(int function, int line) {
  return (static_cast<std::uint32_t>(function) << 13) |
         static_cast<std::uint32_t>(line & 0x1F);
}

std::vector<std::uint32_t> ssem_benchmark_program() {
  // acc = -mem[line] via LDN, so negative constants yield the positive
  // values to store.
  std::vector<std::uint32_t> mem(32, 0);
  constexpr int kLdn = 2, kSto = 3, kStp = 7;
  int pc = 0;
  for (int k = 0; k < 5; ++k) {
    mem[pc++] = ssem_encode(kLdn, 26 + k);  // acc := -mem[26+k] = k
    mem[pc++] = ssem_encode(kSto, 20 + k);  // mem[20+k] := acc
  }
  mem[pc++] = ssem_encode(kStp, 0);
  for (int k = 0; k < 5; ++k) {
    mem[26 + k] = static_cast<std::uint32_t>(-k);  // two's complement -k
  }
  return mem;
}

std::vector<SsemExpectation> ssem_expected_results() {
  return {{20, 0}, {21, 1}, {22, 2}, {23, 3}, {24, 4}};
}

}  // namespace bb::designs
