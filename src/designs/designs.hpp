// The four evaluation designs of Section 6, in mini-Balsa:
//   1. an 8-handshake systolic counter             (control dominated)
//   2. an 8-place 8-bit word wagging register      (mixed)
//   3. an 8-place 8-bit stack                      (mixed)
//   4. a small 32-bit non-pipelined SSEM-like microprocessor core
//      (datapath dominated; Manchester Baby instruction set)
// plus the SSEM machine program the paper benchmarks ("writes consecutive
// memory locations with numbers 0 through 4").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bb::designs {

struct DesignInfo {
  std::string name;         ///< short id: systolic / wagging / stack / ssem
  std::string title;        ///< Table 3 row label
  std::string source;       ///< mini-Balsa text
  std::string benchmark;    ///< what the paper's benchmark run measures
};

const DesignInfo& systolic_counter();
const DesignInfo& wagging_register();
const DesignInfo& stack();
const DesignInfo& ssem();

/// All four, in Table 3 order.
std::vector<const DesignInfo*> all_designs();

/// Lookup by short id; throws std::out_of_range for unknown names.
const DesignInfo& design(const std::string& name);

// ---- SSEM (Manchester Baby) machine code ----

/// Instruction encoding: bits 4..0 = line (address), bits 15..13 =
/// function: 0 JMP, 1 JRP, 2 LDN, 3 STO, 4 SUB, 6 CMP, 7 STP.
std::uint32_t ssem_encode(int function, int line);

/// The benchmark program: stores the values 0..4 into memory words
/// 20..24 and stops.  Returned as a 32-word memory image.
std::vector<std::uint32_t> ssem_benchmark_program();

/// Addresses and values the benchmark must leave in memory.
struct SsemExpectation {
  int address;
  std::uint32_t value;
};
std::vector<SsemExpectation> ssem_expected_results();

}  // namespace bb::designs
