// Shared structured-diagnostics framework for the static-analysis
// subsystem.
//
// Every finding carries a stable rule id (e.g. "NL001"), a severity, the
// object it refers to (a channel, arc, state, net, ...) and an explanatory
// message.  Rules are registered centrally (see diag.cpp) so reporters and
// suppression work uniformly across all four intermediate representations
// of the flow: handshake netlists (HS...), Burst-Mode machines (BM...),
// two-level logic (MN...), and gate netlists (NL...).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bb::lint {

enum class Severity {
  kNote,     ///< informational; never affects exit status
  kWarning,  ///< suspicious but not fatal; the flow reports and continues
  kError,    ///< invariant violation; the flow aborts
};

/// "note" / "warning" / "error".
std::string_view severity_name(Severity severity);

/// Registry entry for one lint rule.
struct RuleInfo {
  std::string_view id;     ///< stable identifier, e.g. "BM003"
  Severity severity;       ///< default severity
  std::string_view title;  ///< one-line summary of what the rule checks
};

/// All registered rules, in id order.
const std::vector<RuleInfo>& all_rules();

/// Looks up a rule by id (nullptr for unknown ids).
const RuleInfo* find_rule(std::string_view id);

/// One finding.
struct Diagnostic {
  std::string rule;     ///< registered rule id
  Severity severity = Severity::kWarning;
  std::string object;   ///< what the finding is about, e.g. "arc 0->1"
  std::string message;  ///< human-oriented explanation
};

/// An ordered collection of diagnostics with per-rule suppression.
///
/// Suppressed rules are dropped at add() time, so a Report constructed
/// with suppressions never contains findings for those rules (merge()
/// re-applies the receiver's suppressions to incoming diagnostics).
class Report {
 public:
  /// Suppresses a rule id.  Unknown ids are accepted (and simply never
  /// match), so suppression lists survive rule renames.
  void suppress(std::string rule_id);
  bool is_suppressed(std::string_view rule_id) const;

  /// Adds a finding with the rule's registered default severity.
  /// Throws std::invalid_argument for unregistered rule ids.
  void add(std::string_view rule_id, std::string object, std::string message);

  /// Adds a finding with an explicit severity override.
  void add(std::string_view rule_id, Severity severity, std::string object,
           std::string message);

  /// Appends another report's diagnostics (subject to this report's
  /// suppressions).
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// Diagnostics of a given severity, in report order.
  std::vector<const Diagnostic*> by_severity(Severity severity) const;

  /// One line per finding:
  ///   error[BM002] arc 0->1: input burst is empty ...
  /// followed by a "N error(s), M warning(s)" summary line.
  std::string to_text() const;

  /// Stable machine-readable rendering:
  ///   {"diagnostics":[{"rule":...,"severity":...,"object":...,
  ///    "message":...},...],"errors":N,"warnings":N,"notes":N}
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
  std::vector<std::string> suppressed_;
};

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace bb::lint
