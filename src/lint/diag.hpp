// Shared structured-diagnostics framework for the static-analysis
// subsystem.
//
// Every finding carries a stable rule id (e.g. "NL001"), a severity, the
// object it refers to (a channel, arc, state, net, ...) and an explanatory
// message.  Rules are registered centrally (see diag.cpp) so reporters,
// suppression, severity overrides and baselines work uniformly across
// every intermediate representation of the flow: handshake netlists
// (HS...), Burst-Mode machines (BM...), two-level logic (MN...), gate
// netlists (NL...), and the deep semantic passes of src/analyze (AN...
// over Burst-Mode machines, PN... over Petri nets).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bb::lint {

enum class Severity {
  kNote,     ///< informational; never affects exit status
  kWarning,  ///< suspicious but not fatal; the flow reports and continues
  kError,    ///< invariant violation; the flow aborts
};

/// "note" / "warning" / "error".
std::string_view severity_name(Severity severity);

/// Registry entry for one lint rule.
struct RuleInfo {
  std::string_view id;     ///< stable identifier, e.g. "BM003"
  Severity severity;       ///< default severity
  std::string_view title;  ///< one-line summary of what the rule checks
};

/// All registered rules, in id order.
const std::vector<RuleInfo>& all_rules();

/// Looks up a rule by id (nullptr for unknown ids).
const RuleInfo* find_rule(std::string_view id);

/// One finding.
struct Diagnostic {
  std::string rule;     ///< registered rule id
  Severity severity = Severity::kWarning;
  std::string object;   ///< what the finding is about, e.g. "arc 0->1"
  std::string message;  ///< human-oriented explanation
};

/// One accepted (baselined) finding: an exact (rule, object) pair that
/// should not be reported again.  The object must match byte-for-byte,
/// so a baseline pins known findings without hiding new ones on the
/// same rule.
struct BaselineEntry {
  std::string rule;
  std::string object;
};

/// Parses a baseline file: one "<rule>\t<object>" per line, '#' comments
/// and blank lines ignored.  Malformed lines (no tab) are skipped.
std::vector<BaselineEntry> parse_baseline(std::string_view text);

/// An ordered collection of diagnostics with per-rule suppression,
/// per-rule severity overrides, and baseline (per-finding) suppression.
///
/// Suppressed rules and baselined findings are dropped at add() time, so
/// a Report constructed with suppressions never contains findings for
/// those rules (merge() re-applies the receiver's suppressions and
/// baseline to incoming diagnostics).
class Report {
 public:
  /// Suppresses a rule id.  Unknown ids are accepted (and simply never
  /// match), so suppression lists survive rule renames.
  void suppress(std::string rule_id);
  bool is_suppressed(std::string_view rule_id) const;

  /// Overrides the severity every subsequent add() of `rule_id` uses
  /// (explicit-severity add() calls are overridden too, so a config
  /// demotion wins over a pass's own escalation).  Unknown ids are
  /// accepted and never match.
  void override_severity(std::string rule_id, Severity severity);

  /// Drops future findings that match the entry exactly (rule + object).
  void baseline(BaselineEntry entry);
  bool is_baselined(std::string_view rule_id, std::string_view object) const;

  /// The current findings rendered as a baseline file accepting them all.
  std::string to_baseline() const;

  /// Adds a finding with the rule's registered default severity.
  /// Throws std::invalid_argument for unregistered rule ids.
  void add(std::string_view rule_id, std::string object, std::string message);

  /// Adds a finding with an explicit severity override.
  void add(std::string_view rule_id, Severity severity, std::string object,
           std::string message);

  /// Appends another report's diagnostics (subject to this report's
  /// suppressions).
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// Diagnostics of a given severity, in report order.
  std::vector<const Diagnostic*> by_severity(Severity severity) const;

  /// One line per finding:
  ///   error[BM002] arc 0->1: input burst is empty ...
  /// followed by a "N error(s), M warning(s)" summary line.
  std::string to_text() const;

  /// Stable machine-readable rendering:
  ///   {"schema_version":1,"diagnostics":[{"rule":...,"severity":...,
  ///    "object":...,"message":...},...],"errors":N,"warnings":N,
  ///    "notes":N}
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
  std::vector<std::string> suppressed_;
  std::vector<std::pair<std::string, Severity>> overrides_;
  std::vector<BaselineEntry> baseline_;
};

/// Version tag of the lint JSON and baseline renderings.
inline constexpr int kDiagSchemaVersion = 1;

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace bb::lint
