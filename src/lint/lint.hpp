// The cross-layer static-analysis engine.
//
// One lint pass per intermediate representation of the flow (Fig. 1):
//   lint_handshake  handshake-component netlists      rules HS001-HS005
//   lint_bm         compiled Burst-Mode machines      rules BM001-BM007
//   lint_two_level  synthesized two-level logic       rules MN001-MN003
//   lint_gates      mapped gate netlists              rules NL001-NL004
//
// Each pass returns a lint::Report (src/lint/diag.hpp).  The flow driver
// (src/flow) runs all passes by default, aborts on Error-severity
// findings and records the full report; the `bb-lint` tool runs them
// standalone on any design.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/bm/spec.hpp"
#include "src/hsnet/netlist.hpp"
#include "src/lint/diag.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"

namespace bb::lint {

struct LintOptions {
  /// Rule ids to drop (per-rule suppression).
  std::vector<std::string> suppress;
  /// Per-rule severity overrides (rule id -> severity); they win over
  /// both registered defaults and pass-side escalations.
  std::vector<std::pair<std::string, Severity>> severity;
  /// Accepted findings (exact rule + object pairs) that should not be
  /// reported again; usually loaded from a baseline file.
  std::vector<BaselineEntry> baseline;
  /// NL004 threshold: maximum gate inputs one net may drive.
  int fanout_limit = 48;
  /// NL005/NL006 cap: the semantic netlist audit evaluates each mapped
  /// cone exhaustively over its variables; cones needing more than this
  /// many evaluations are skipped with an NL007 note instead of burning
  /// exponential time.
  std::size_t cone_eval_limit = 1u << 16;
};

/// Seeds a report with the options' suppressions, severity overrides and
/// baseline.
Report make_report(const LintOptions& options);

/// Handshake layer: dangling/unconnected channels (HS001/HS002),
/// over-connected channels (HS003), active/passive port-direction
/// mismatches (HS004) and components unreachable from every external
/// channel (HS005).
Report lint_handshake(const hsnet::Netlist& netlist,
                      const LintOptions& options = {});

/// CH/BM layer: wraps bm::validate (BM001-BM007) so Burst-Mode
/// well-formedness findings flow through the shared framework.
Report lint_bm(const bm::Spec& spec, const LintOptions& options = {});

/// Two-level logic layer: re-derives the hazard-freedom obligations from
/// the specification and screens every product of the synthesized logic
/// against them (MN001 dynamic hazards, MN002 static hazards, MN003
/// shape mismatches).
Report lint_two_level(const minimalist::SynthesizedController& ctrl,
                      const bm::Spec& spec, const LintOptions& options = {});

/// Gate layer: multiple drivers (NL001), floating gate inputs (NL002),
/// combinational cycles not broken by a DEL/DOUT or state-holding cell
/// (NL003), and fanout-limit violations (NL004).
Report lint_gates(const netlist::GateNetlist& netlist,
                  const LintOptions& options = {});

/// True if port `index` of the component is the active (handshake
/// initiating) end of its channel; false for passive ends.  Mirrors the
/// port tables of src/hsnet/component.hpp and the activities assigned by
/// the Balsa-to-CH translation.
bool port_is_active(const hsnet::Component& component, std::size_t index);

}  // namespace bb::lint
