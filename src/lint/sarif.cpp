#include "src/lint/sarif.hpp"

#include "src/util/json.hpp"

namespace bb::lint {

namespace {

/// SARIF "level" for a severity ("note" / "warning" / "error").
std::string_view sarif_level(Severity severity) {
  return severity_name(severity);
}

}  // namespace

std::string to_sarif(const std::vector<SarifInput>& inputs,
                     std::string_view tool_name,
                     std::string_view tool_version) {
  util::JsonWriter w;
  w.begin_object();
  w.member("$schema",
           "https://json.schemastore.org/sarif-2.1.0.json");
  w.member("version", "2.1.0");
  w.key("runs").begin_array();
  w.begin_object();

  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.member("name", tool_name);
  w.member("version", tool_version);
  w.member("informationUri",
           "https://github.com/balsa-bm-backend/balsa-bm-backend");
  w.key("rules").begin_array();
  for (const RuleInfo& rule : all_rules()) {
    w.begin_object();
    w.member("id", rule.id);
    w.key("shortDescription").begin_object();
    w.member("text", rule.title);
    w.end_object();
    w.key("defaultConfiguration").begin_object();
    w.member("level", sarif_level(rule.severity));
    w.end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results").begin_array();
  for (const SarifInput& input : inputs) {
    for (const Diagnostic& d : input.report->diagnostics()) {
      w.begin_object();
      w.member("ruleId", d.rule);
      w.member("level", sarif_level(d.severity));
      w.key("message").begin_object();
      w.member("text", d.message);
      w.end_object();
      w.key("locations").begin_array();
      w.begin_object();
      w.key("logicalLocations").begin_array();
      w.begin_object();
      w.member("fullyQualifiedName",
               input.design.empty() ? d.object
                                    : input.design + "::" + d.object);
      w.member("name", d.object);
      w.end_object();
      w.end_array();  // logicalLocations
      w.end_object();
      w.end_array();  // locations
      if (!input.design.empty()) {
        w.key("properties").begin_object();
        w.member("design", input.design);
        w.end_object();
      }
      w.end_object();  // result
    }
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.str();
}

std::string to_sarif(const Report& report, std::string_view design,
                     std::string_view tool_name,
                     std::string_view tool_version) {
  return to_sarif({SarifInput{std::string(design), &report}}, tool_name,
                  tool_version);
}

}  // namespace bb::lint
