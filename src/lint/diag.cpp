#include "src/lint/diag.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/json.hpp"

namespace bb::lint {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      // --- handshake-component netlists (src/hsnet) ---
      {"HS001", Severity::kError,
       "dangling channel: a non-external channel with a single endpoint"},
      {"HS002", Severity::kWarning,
       "declared channel connected to no component"},
      {"HS003", Severity::kError,
       "channel connected to more than two component ports"},
      {"HS004", Severity::kError,
       "port-direction mismatch: a channel needs one active and one "
       "passive end"},
      {"HS005", Severity::kWarning,
       "component unreachable from any external channel"},
      // --- Burst-Mode machines (src/bm) ---
      {"BM001", Severity::kError,
       "signal used as both an input and an output"},
      {"BM002", Severity::kError,
       "arc with an empty input burst (machines are input-driven)"},
      {"BM003", Severity::kError,
       "nondeterministic choice: sibling arcs with identical input bursts"},
      {"BM004", Severity::kError,
       "maximal-set violation: an input burst contained in a sibling's"},
      {"BM005", Severity::kError,
       "polarity violation: a wire edge repeats instead of alternating"},
      {"BM006", Severity::kError,
       "state entered with inconsistent wire valuations"},
      {"BM007", Severity::kWarning,
       "state unreachable from the initial state"},
      // --- synthesized two-level logic (src/minimalist) ---
      {"MN001", Severity::kError,
       "product term is not a dynamic-hazard-free implicant"},
      {"MN002", Severity::kError,
       "required cube not contained in any single product (static hazard)"},
      {"MN003", Severity::kError,
       "controller logic does not match its specification's shape"},
      // --- gate-level netlists (src/netlist) ---
      {"NL001", Severity::kError, "net driven by more than one gate output"},
      {"NL002", Severity::kError,
       "floating gate input: fanin net with no driver that is not a "
       "primary input"},
      {"NL003", Severity::kError,
       "combinational cycle not broken by a DEL or state-holding cell"},
      {"NL004", Severity::kWarning, "net fanout exceeds the configured limit"},
      {"NL005", Severity::kError,
       "hazard-increasing decomposition: a mapped cone net computes "
       "neither a (complemented) sub-cube nor a (complemented) sum of "
       "cover products"},
      {"NL006", Severity::kError,
       "mapped cone function differs from the synthesized two-level "
       "logic"},
      {"NL007", Severity::kNote,
       "netlist semantic audit skipped (cone exceeds the exhaustive "
       "evaluation limit)"},
      // --- deep Burst-Mode legality passes (src/analyze) ---
      {"AN001", Severity::kError,
       "unique-entry-point violation: a state is entered with conflicting "
       "valuations of the signals its outgoing arcs depend on"},
      {"AN002", Severity::kError,
       "input-burst distinguishability violation between sibling arcs "
       "(subset, effective-subset, or opposite edges of one wire)"},
      {"AN003", Severity::kError,
       "output-burst inconsistency: an output edge that does not toggle "
       "at its firing point, or equal input bursts with diverging "
       "responses"},
      {"AN004", Severity::kWarning,
       "dead or incomplete behaviour: an arc that can never fire, or a "
       "cyclic wire that only ever moves in one direction"},
      // --- Petri-net structural passes (src/analyze) ---
      {"PN001", Severity::kError,
       "dead transition: no token flow can ever enable it (coverability "
       "fixpoint, no reachability)"},
      {"PN002", Severity::kError,
       "unmarked siphon: a place set that can never acquire a token, "
       "structurally deadlocking its consumers"},
      {"PN003", Severity::kWarning,
       "no initially marked trap: every token can drain, so the net can "
       "halt (Commoner liveness hint)"},
      {"PN004", Severity::kError,
       "transition with an empty pre-set fires unboundedly and breaks "
       "1-safety"},
      // --- synthesis-flow failures (src/flow, reported via FlowError) ---
      {"FL001", Severity::kError,
       "controller failed Burst-Mode validation during the flow"},
      {"FL002", Severity::kError,
       "controller exceeded its synthesis work budget"},
      {"FL003", Severity::kError,
       "controller exceeded the Burst-Mode state cap (max_states)"},
      {"FL004", Severity::kError,
       "per-controller fallback failed: a member component could not be "
       "synthesized standalone"},
      {"FL005", Severity::kWarning,
       "controller degraded to the per-component fallback path"},
  };
  return rules;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : all_rules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

std::vector<BaselineEntry> parse_baseline(std::string_view text) {
  std::vector<BaselineEntry> entries;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    entries.push_back(BaselineEntry{std::string(line.substr(0, tab)),
                                    std::string(line.substr(tab + 1))});
  }
  return entries;
}

void Report::suppress(std::string rule_id) {
  if (!is_suppressed(rule_id)) suppressed_.push_back(std::move(rule_id));
}

bool Report::is_suppressed(std::string_view rule_id) const {
  return std::find(suppressed_.begin(), suppressed_.end(), rule_id) !=
         suppressed_.end();
}

void Report::override_severity(std::string rule_id, Severity severity) {
  for (auto& [rule, sev] : overrides_) {
    if (rule == rule_id) {
      sev = severity;
      return;
    }
  }
  overrides_.emplace_back(std::move(rule_id), severity);
}

void Report::baseline(BaselineEntry entry) {
  if (!is_baselined(entry.rule, entry.object)) {
    baseline_.push_back(std::move(entry));
  }
}

bool Report::is_baselined(std::string_view rule_id,
                          std::string_view object) const {
  for (const BaselineEntry& e : baseline_) {
    if (e.rule == rule_id && e.object == object) return true;
  }
  return false;
}

std::string Report::to_baseline() const {
  std::string s = "# bb-lint baseline: one accepted finding per line "
                  "(<rule>\\t<object>)\n";
  for (const Diagnostic& d : diags_) {
    // Deduplicate: several findings may share a (rule, object) pair.
    const std::string line = d.rule + "\t" + d.object + "\n";
    if (s.find("\n" + line) == std::string::npos) s += line;
  }
  return s;
}

void Report::add(std::string_view rule_id, std::string object,
                 std::string message) {
  const RuleInfo* info = find_rule(rule_id);
  if (info == nullptr) {
    throw std::invalid_argument("lint: unregistered rule id '" +
                                std::string(rule_id) + "'");
  }
  add(rule_id, info->severity, std::move(object), std::move(message));
}

void Report::add(std::string_view rule_id, Severity severity,
                 std::string object, std::string message) {
  if (find_rule(rule_id) == nullptr) {
    throw std::invalid_argument("lint: unregistered rule id '" +
                                std::string(rule_id) + "'");
  }
  if (is_suppressed(rule_id)) return;
  if (is_baselined(rule_id, object)) return;
  for (const auto& [rule, sev] : overrides_) {
    if (rule == rule_id) {
      severity = sev;
      break;
    }
  }
  diags_.push_back(Diagnostic{std::string(rule_id), severity,
                              std::move(object), std::move(message)});
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.diags_) {
    if (is_suppressed(d.rule)) continue;
    if (is_baselined(d.rule, d.object)) continue;
    Severity severity = d.severity;
    for (const auto& [rule, sev] : overrides_) {
      if (rule == d.rule) {
        severity = sev;
        break;
      }
    }
    diags_.push_back(
        Diagnostic{d.rule, severity, d.object, d.message});
  }
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::vector<const Diagnostic*> Report::by_severity(Severity severity) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) out.push_back(&d);
  }
  return out;
}

std::string Report::to_text() const {
  std::string s;
  for (const Diagnostic& d : diags_) {
    s += std::string(severity_name(d.severity)) + "[" + d.rule + "] " +
         d.object + ": " + d.message + "\n";
  }
  s += std::to_string(count(Severity::kError)) + " error(s), " +
       std::to_string(count(Severity::kWarning)) + " warning(s), " +
       std::to_string(count(Severity::kNote)) + " note(s)\n";
  return s;
}

std::string Report::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kDiagSchemaVersion);
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : diags_) {
    w.begin_object()
        .member("rule", d.rule)
        .member("severity", severity_name(d.severity))
        .member("object", d.object)
        .member("message", d.message)
        .end_object();
  }
  w.end_array();
  w.member("errors", static_cast<std::uint64_t>(count(Severity::kError)));
  w.member("warnings",
           static_cast<std::uint64_t>(count(Severity::kWarning)));
  w.member("notes", static_cast<std::uint64_t>(count(Severity::kNote)));
  w.end_object();
  return w.str();
}

std::string json_escape(std::string_view text) {
  return util::json_escape(text);
}

}  // namespace bb::lint
