// SARIF 2.1.0 export for lint/analysis reports, so findings load into
// standard viewers (GitHub code scanning, VS Code SARIF viewer, ...).
//
// The flow's diagnostics are attached to logical objects (a channel, an
// arc, a net), not source lines, so results carry logicalLocations with
// the object's fully-qualified name; the design each report came from is
// recorded as the location's decoratedName and in the result properties.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/lint/diag.hpp"

namespace bb::lint {

/// One analyzed design and its findings, for a multi-design SARIF run.
struct SarifInput {
  std::string design;    ///< design name or file path ("" for anonymous)
  const Report* report;  ///< must outlive the to_sarif call
};

/// Renders one SARIF 2.1.0 document with a single run.  The tool driver
/// lists every registered rule (with its default severity) so viewers can
/// show titles for rules with no findings in this run.
std::string to_sarif(const std::vector<SarifInput>& inputs,
                     std::string_view tool_name = "bb-lint",
                     std::string_view tool_version = "1.0.0");

/// Single-report convenience wrapper.
std::string to_sarif(const Report& report, std::string_view design = "",
                     std::string_view tool_name = "bb-lint",
                     std::string_view tool_version = "1.0.0");

}  // namespace bb::lint
