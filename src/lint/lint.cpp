#include "src/lint/lint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "src/bm/validate.hpp"
#include "src/minimalist/funcspec.hpp"
#include "src/minimalist/hfmin.hpp"
#include "src/netlist/analysis.hpp"

namespace bb::lint {

namespace {

using hsnet::Component;
using hsnet::ComponentKind;

std::string quoted(const std::string& name) { return "'" + name + "'"; }

}  // namespace

Report make_report(const LintOptions& options) {
  Report report;
  for (const std::string& rule : options.suppress) report.suppress(rule);
  for (const auto& [rule, severity] : options.severity) {
    report.override_severity(rule, severity);
  }
  for (const BaselineEntry& entry : options.baseline) {
    report.baseline(entry);
  }
  return report;
}

bool port_is_active(const Component& c, std::size_t index) {
  const std::size_t last = c.ports.empty() ? 0 : c.ports.size() - 1;
  switch (c.kind) {
    case ComponentKind::kLoop:
    case ComponentKind::kSequence:
    case ComponentKind::kConcur:
      return index > 0;  // activate is passive, outputs are active
    case ComponentKind::kCall:
    case ComponentKind::kSynch:
    case ComponentKind::kMerge:
      return index == last;  // clients/inputs passive, server active
    case ComponentKind::kDecisionWait:
      // activate, in1..inn (all passive), then out1..outn (active).
      return index > static_cast<std::size_t>(c.ways);
    case ComponentKind::kWhile:
    case ComponentKind::kCase:
      return index > 0;  // activate passive; guard/select and bodies active
    case ComponentKind::kPassivator:
    case ComponentKind::kContinue:
    case ComponentKind::kVariable:
    case ComponentKind::kConstant:
    case ComponentKind::kMemory:
      return false;  // purely passive components
    case ComponentKind::kFetch:
      return index > 0;  // activate passive; pulls input, pushes output
    case ComponentKind::kBinaryFunc:
    case ComponentKind::kUnaryFunc:
      return index > 0;  // out is pulled (passive); operands are pulled
    case ComponentKind::kGuard:
      return index > 0;  // query answers a mux-ack; cond is pulled
  }
  return false;
}

Report lint_handshake(const hsnet::Netlist& netlist,
                      const LintOptions& options) {
  Report report = make_report(options);

  // Gather every port occurrence per channel (the netlist's endpoint
  // list de-duplicates component ids, which would hide a component
  // connected twice to the same channel).
  struct PortRef {
    const Component* component;
    std::size_t index;
  };
  std::map<std::string, std::vector<PortRef>> ports;
  for (const Component& c : netlist.components()) {
    for (std::size_t i = 0; i < c.ports.size(); ++i) {
      ports[c.ports[i]].push_back(PortRef{&c, i});
    }
  }

  for (const auto& [name, info] : netlist.channels()) {
    const auto it = ports.find(name);
    const std::size_t uses = it == ports.end() ? 0 : it->second.size();
    const std::string object = "channel " + quoted(name);
    if (uses == 0) {
      report.add("HS002", object,
                 "declared but connected to no component port; it carries "
                 "no handshake and can be removed");
      continue;
    }
    const auto describe = [&](const PortRef& ref) {
      return quoted(ref.component->display_name()) + " port " +
             std::to_string(ref.index) + " (" +
             (port_is_active(*ref.component, ref.index) ? "active"
                                                        : "passive") +
             ")";
    };
    if (uses == 1 && !info.external) {
      report.add("HS001", object,
                 "connected only to " + describe(it->second[0]) +
                     "; a non-external channel needs a peer on the other "
                     "end or the handshake deadlocks");
      continue;
    }
    if (uses > 2) {
      std::string who;
      for (const PortRef& ref : it->second) {
        if (!who.empty()) who += ", ";
        who += describe(ref);
      }
      report.add("HS003", object,
                 "connected to " + std::to_string(uses) +
                     " component ports (" + who +
                     "); channels are point-to-point — use a Call or "
                     "Synch component to share one");
      continue;
    }
    if (uses == 2) {
      const PortRef& a = it->second[0];
      const PortRef& b = it->second[1];
      const bool a_active = port_is_active(*a.component, a.index);
      const bool b_active = port_is_active(*b.component, b.index);
      if (a_active == b_active) {
        report.add("HS004", object,
                   "connects two " +
                       std::string(a_active ? "active" : "passive") +
                       " ports: " + describe(a) + " and " + describe(b) +
                       "; every channel needs exactly one active "
                       "(initiating) and one passive end" +
                       (a_active ? "" : " — two passive ends never start "
                                        "a handshake"));
      }
    }
  }

  // HS005: components reachable from the environment.  Seed with every
  // component touching an external channel and walk shared channels.
  bool has_external = false;
  for (const auto& [name, info] : netlist.channels()) {
    has_external = has_external || info.external;
  }
  if (has_external && !netlist.components().empty()) {
    std::set<int> reached;
    std::deque<int> queue;
    for (const auto& [name, info] : netlist.channels()) {
      if (!info.external) continue;
      for (const int id : info.endpoints) {
        if (reached.insert(id).second) queue.push_back(id);
      }
    }
    while (!queue.empty()) {
      const int id = queue.front();
      queue.pop_front();
      for (const std::string& port : netlist.component(id).ports) {
        const hsnet::ChannelInfo* info = netlist.channel(port);
        if (info == nullptr) continue;
        for (const int peer : info->endpoints) {
          if (reached.insert(peer).second) queue.push_back(peer);
        }
      }
    }
    for (const Component& c : netlist.components()) {
      if (!reached.count(c.id)) {
        report.add("HS005", "component " + quoted(c.display_name()),
                   "not reachable from any external channel; it can never "
                   "be activated and is dead hardware");
      }
    }
  }
  return report;
}

Report lint_bm(const bm::Spec& spec, const LintOptions& options) {
  Report report = make_report(options);
  report.merge(bm::validate(spec).report);
  return report;
}

Report lint_two_level(const minimalist::SynthesizedController& ctrl,
                      const bm::Spec& spec, const LintOptions& options) {
  Report report = make_report(options);
  const std::string object = "controller " + quoted(ctrl.name);

  minimalist::MachineSpec machine;
  try {
    machine = minimalist::extract(spec);
  } catch (const std::exception& e) {
    report.add("MN003", object,
               std::string("flow-table extraction failed: ") + e.what());
    return report;
  }
  if (machine.functions.size() != ctrl.functions.size() ||
      machine.num_vars != ctrl.num_vars) {
    report.add("MN003", object,
               "logic shape mismatch: specification expects " +
                   std::to_string(machine.functions.size()) +
                   " functions over " + std::to_string(machine.num_vars) +
                   " variables but the controller implements " +
                   std::to_string(ctrl.functions.size()) + " over " +
                   std::to_string(ctrl.num_vars));
    return report;
  }

  for (std::size_t fi = 0; fi < ctrl.functions.size(); ++fi) {
    const minimalist::FuncSpec& fspec = machine.functions[fi];
    const minimalist::SolvedFunction& solved = ctrl.functions[fi];
    const std::string fobject = "function " + quoted(fspec.name);

    for (const logic::Cube& product : solved.products.cubes()) {
      if (product.size() != ctrl.num_vars) {
        report.add("MN003", fobject,
                   "product " + product.to_string() + " spans " +
                       std::to_string(product.size()) + " variables, not " +
                       std::to_string(ctrl.num_vars));
        continue;
      }
      // Mirror is_dhf_implicant but name the witness that fails.
      bool bad = false;
      for (const logic::Cube& off : fspec.off.cubes()) {
        if (product.intersects(off)) {
          report.add("MN001", fobject,
                     "product " + product.to_string() +
                         " intersects OFF-set cube " + off.to_string() +
                         "; the gate output would be 1 where the "
                         "specification requires 0");
          bad = true;
          break;
        }
      }
      if (bad) continue;
      for (const minimalist::Privilege& p : fspec.privileges) {
        if (product.intersects(p.transition) &&
            !product.agrees_with_fixed(p.anchor)) {
          report.add("MN001", fobject,
                     "product " + product.to_string() +
                         " intersects privileged transition cube " +
                         p.transition.to_string() +
                         " without respecting its anchor " +
                         p.anchor.to_string() +
                         "; it can turn on and off again mid-burst "
                         "(dynamic function hazard)");
          break;
        }
      }
    }

    for (const logic::Cube& required : fspec.on_required) {
      const bool covered = std::any_of(
          solved.products.cubes().begin(), solved.products.cubes().end(),
          [&](const logic::Cube& p) { return p.contains(required); });
      if (!covered) {
        report.add("MN002", fobject,
                   "required cube " + required.to_string() +
                       " is not contained in any single product; a "
                       "static-1 transition across it can glitch "
                       "(Nowick/Dill hazard-free covering condition)");
      }
    }
  }
  return report;
}

Report lint_gates(const netlist::GateNetlist& net,
                  const LintOptions& options) {
  Report report = make_report(options);
  const auto& gates = net.gates();
  const int num_nets = net.num_nets();

  const auto net_label = [&](int id) {
    const std::string& name = net.net_name(id);
    return "net " + (name.empty() ? "#" + std::to_string(id) : quoted(name));
  };
  const auto gate_label = [&](int g) {
    return gates[g].cell + " (gate #" + std::to_string(g) + ")";
  };

  // Driver and fanout tables.
  std::vector<std::vector<int>> drivers(num_nets);
  std::vector<int> fanout(num_nets, 0);
  for (std::size_t g = 0; g < gates.size(); ++g) {
    drivers[gates[g].output].push_back(static_cast<int>(g));
    for (const int f : gates[g].fanins) ++fanout[f];
  }

  // NL001: multiple drivers.
  for (int id = 0; id < num_nets; ++id) {
    if (drivers[id].size() > 1) {
      std::string who;
      for (const int g : drivers[id]) {
        if (!who.empty()) who += ", ";
        who += gate_label(g);
      }
      report.add("NL001", net_label(id),
                 "driven by " + std::to_string(drivers[id].size()) +
                     " gate outputs (" + who +
                     "); wired-or is not part of the gate model and the "
                     "simulator resolves only one driver");
    }
  }

  // NL002: floating gate inputs (one finding per net).
  std::set<int> floating_reported;
  for (std::size_t g = 0; g < gates.size(); ++g) {
    for (const int f : gates[g].fanins) {
      if (drivers[f].empty() && !net.is_input(f) &&
          floating_reported.insert(f).second) {
        report.add("NL002", net_label(f),
                   "feeds " + gate_label(static_cast<int>(g)) +
                       " but has no driver and is not marked as a primary "
                       "input; it would float at an undefined level");
      }
    }
  }

  // NL003: combinational cycles.  DEL/DOUT delay cells and state-holding
  // C-elements are legal cycle breakers (the Huffman feedback
  // discipline); any cycle made only of ordinary combinational gates
  // oscillates or latches unpredictably.
  for (const std::vector<int>& scc : netlist::combinational_cycles(net)) {
    std::string nets;
    std::size_t shown = 0;
    for (const int g : scc) {
      if (shown == 8) {
        nets += ", ...";
        break;
      }
      if (!nets.empty()) nets += ", ";
      nets += net_label(gates[g].output);
      ++shown;
    }
    report.add("NL003",
               "cycle through " + std::to_string(scc.size()) + " gate(s)",
               "combinational feedback loop (" + nets +
                   ") contains no DEL/DOUT delay cell and no "
                   "state-holding cell; it can oscillate or latch "
                   "an undefined value");
  }

  // NL004: fanout limits.
  for (int id = 0; id < num_nets; ++id) {
    if (options.fanout_limit > 0 && fanout[id] > options.fanout_limit) {
      report.add("NL004", net_label(id),
                 "drives " + std::to_string(fanout[id]) +
                     " gate inputs (limit " +
                     std::to_string(options.fanout_limit) +
                     "); the bounded-delay assumption of the mapped "
                     "library degrades at high fanout — buffer the net");
    }
  }
  return report;
}

}  // namespace bb::lint
