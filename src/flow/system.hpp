// A complete simulatable system: synthesized control at gate level plus
// behavioural datapath models, assembled from one handshake netlist
// ("Final Optimized Circuit" of Fig. 1, ready for Verilog-XL-style
// simulation).
#pragma once

#include <memory>

#include "src/flow/flow.hpp"
#include "src/sim/datapath.hpp"
#include "src/sim/gatesim.hpp"
#include "src/sim/kernel.hpp"

namespace bb::flow {

class System {
 public:
  System(const hsnet::Netlist& netlist, const FlowOptions& options);

  /// Channel wire nets (creates them if needed).  Valid before start().
  sim::ChannelNets chan(const std::string& channel);

  /// Registers a testbench process; subscriptions happen at start().
  void add_process(sim::Process* process,
                   const std::vector<int>& watched_nets);

  /// Applies a fault plan (sim/fault.hpp) to the gate binding built by
  /// start().  The plan must be built against gates() and must outlive
  /// the simulation; call before start(); nullptr clears.  The initial
  /// settle stays fault-free (see GateBinding::set_fault_plan).
  void set_fault_plan(const sim::FaultPlan* plan);

  /// Builds the simulator, binds gates and datapath, seeds state codes,
  /// settles the initial assignment.  Call exactly once.
  sim::Simulator& start();

  sim::Simulator& simulator() { return *sim_; }
  sim::DatapathContext& data() { return data_; }
  const netlist::GateNetlist& gates() const { return gates_; }
  const ControlResult& control() const { return control_; }

  double control_area() const { return control_.area; }
  double datapath_area() const { return datapath_area_; }
  double total_area() const { return control_.area + datapath_area_; }

 private:
  ControlResult control_;
  netlist::GateNetlist gates_;
  sim::DatapathContext data_;
  std::unique_ptr<sim::DatapathBuilder> datapath_;
  double datapath_area_ = 0.0;
  const sim::FaultPlan* faults_ = nullptr;
  std::unique_ptr<sim::GateBinding> binding_;
  std::unique_ptr<sim::Simulator> sim_;
  std::vector<std::pair<sim::Process*, std::vector<int>>> pending_;
};

}  // namespace bb::flow
