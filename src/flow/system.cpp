#include "src/flow/system.hpp"

#include <stdexcept>

namespace bb::flow {

System::System(const hsnet::Netlist& netlist, const FlowOptions& options)
    : control_(synthesize_control(netlist, options)),
      gates_(std::move(control_.gates)) {
  // Make sure every external channel has wire nets even when no gate
  // references them (e.g. a datapath-only port).
  for (const auto& [name, info] : netlist.channels()) {
    if (info.external) sim::channel_nets(gates_, name);
  }
  datapath_ = std::make_unique<sim::DatapathBuilder>(gates_, data_);
  datapath_area_ = datapath_->build_all(netlist);
}

sim::ChannelNets System::chan(const std::string& channel) {
  if (sim_ != nullptr) {
    throw std::logic_error("System::chan: simulator already started");
  }
  return sim::channel_nets(gates_, channel);
}

void System::add_process(sim::Process* process,
                         const std::vector<int>& watched_nets) {
  pending_.emplace_back(process, watched_nets);
}

void System::set_fault_plan(const sim::FaultPlan* plan) {
  if (sim_ != nullptr) {
    throw std::logic_error(
        "System::set_fault_plan: simulator already started");
  }
  faults_ = plan;
}

sim::Simulator& System::start() {
  if (sim_ != nullptr) {
    throw std::logic_error("System::start called twice");
  }
  sim_ = std::make_unique<sim::Simulator>(gates_.num_nets());

  binding_ = std::make_unique<sim::GateBinding>(gates_);
  binding_->set_fault_plan(faults_);
  binding_->bind(*sim_);

  // Seed each controller's one-hot state code, then settle with the
  // seeded feedback nets clamped.
  std::vector<int> clamped;
  for (std::size_t i = 0; i < control_.controllers.size(); ++i) {
    const auto& ctrl = control_.controllers[i];
    for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
      const int net =
          gates_.net(control_.prefixes[i] + "/" + ctrl.state_bits[s]);
      if (net >= 0) {
        sim_->set_initial(net, ctrl.initial_state_code[s]);
        clamped.push_back(net);
      }
    }
  }
  binding_->settle_initial(*sim_, clamped);

  datapath_->attach(*sim_);
  for (auto& [process, nets] : pending_) {
    for (const int net : nets) sim_->subscribe(net, process);
    sim_->add_process(process);
  }
  pending_.clear();
  return *sim_;
}

}  // namespace bb::flow
