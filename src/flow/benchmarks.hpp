// The Section 6 benchmark runs: each design is taken through the complete
// flow, simulated with its paper-specified protocol, and measured for
// speed (ns) and area.
#pragma once

#include <string>

#include "src/flow/flow.hpp"

namespace bb::flow {

struct BenchmarkResult {
  std::string design;
  bool ok = false;         ///< protocol completed and results were correct
  std::string detail;      ///< failure reason or correctness notes
  double time_ns = 0.0;    ///< the paper's per-design speed metric
  double control_area = 0.0;
  double datapath_area = 0.0;
  double total_area = 0.0;
  int controllers = 0;     ///< final controller count after clustering
  int components = 0;      ///< handshake components before clustering
};

/// Runs one design ("systolic", "wagging", "stack", "ssem").
BenchmarkResult run_benchmark(const std::string& design,
                              const FlowOptions& options);

/// A Table 3 row: both flows plus the derived improvement/overhead.
struct Table3Row {
  std::string title;
  BenchmarkResult unoptimized;
  BenchmarkResult optimized;
  double speed_improvement_pct = 0.0;
  double area_overhead_pct = 0.0;
};

Table3Row run_table3_row(const std::string& design);

}  // namespace bb::flow
