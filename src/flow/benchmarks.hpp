// The Section 6 benchmark runs: each design is taken through the complete
// flow, simulated with its paper-specified protocol, and measured for
// speed (ns) and area.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/flow/flow.hpp"
#include "src/sim/kernel.hpp"

namespace bb::flow {

class System;

/// Instrumentation points for run_benchmark, used by the fault-injection
/// campaign (flow/faultsim.hpp).  `before_start` runs after the System is
/// built (synthesis done, all nets known) and before System::start(), so
/// callers can attach fault plans and extra monitor processes; anything
/// those closures reference must outlive the run_benchmark call.  Limits
/// of 0 keep the benchmark defaults.
struct BenchmarkHooks {
  std::function<void(System&)> before_start;
  double max_sim_ns = 0.0;
  std::uint64_t max_events = 0;
};

struct BenchmarkResult {
  std::string design;
  bool ok = false;         ///< protocol completed and results were correct
  bool completed = false;  ///< protocol completed (ok additionally checks
                           ///< result values; completed && !ok is silent
                           ///< data corruption under fault injection)
  sim::RunStatus status = sim::RunStatus::kQuiescent;  ///< why the run ended
  std::string detail;      ///< failure reason or correctness notes
  double time_ns = 0.0;    ///< the paper's per-design speed metric
  double control_area = 0.0;
  double datapath_area = 0.0;
  double total_area = 0.0;
  int controllers = 0;     ///< final controller count after clustering
  int components = 0;      ///< handshake components before clustering
};

/// Runs one design ("systolic", "wagging", "stack", "ssem").
BenchmarkResult run_benchmark(const std::string& design,
                              const FlowOptions& options,
                              const BenchmarkHooks* hooks = nullptr);

/// A Table 3 row: both flows plus the derived improvement/overhead.
struct Table3Row {
  std::string title;
  BenchmarkResult unoptimized;
  BenchmarkResult optimized;
  double speed_improvement_pct = 0.0;
  double area_overhead_pct = 0.0;
};

Table3Row run_table3_row(const std::string& design);

}  // namespace bb::flow
