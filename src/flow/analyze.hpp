// Non-aborting whole-design analysis driver.
//
// synthesize_control treats Error-severity findings as fatal (LintError)
// because its job is to produce a netlist.  Analysis tools (bb-lint, the
// serve `analyze` op) want the opposite: run EVERY lint and semantic pass
// over EVERY intermediate representation and report all findings at
// once.  analyze_control walks the same IR chain as the flow — handshake
// netlist, clustered CH programs, Burst-Mode machines, Petri nets,
// two-level logic, mapped gates — merging each pass's report and never
// aborting; a controller whose synthesis crashes outright is recorded in
// `skipped` (plus an FL005 warning) and its later layers are left
// unchecked.
#pragma once

#include <string>
#include <vector>

#include "src/flow/flow.hpp"

namespace bb::flow {

struct AnalyzeResult {
  lint::Report report;
  /// Controllers whose synthesis or mapping threw; the gate-level passes
  /// did not see their logic.
  std::vector<std::string> skipped;
};

/// Runs the full pass pipeline over one design.  The per-layer lint
/// passes always run; options.analyze additionally enables the deep
/// semantic passes (AN/PN/NL005-NL007).  options.lint_options
/// (suppressions, severity overrides, baseline, limits) applies to every
/// pass.
AnalyzeResult analyze_control(const hsnet::Netlist& netlist,
                              const FlowOptions& options);

}  // namespace bb::flow
