#include "src/flow/faultsim.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "src/balsa/compile.hpp"
#include "src/bm/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/system.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/lint/diag.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/opt/cluster.hpp"
#include "src/util/json.hpp"
#include "src/sim/fault.hpp"
#include "src/trace/automaton.hpp"
#include "src/trace/spec_lts.hpp"
#include "src/util/prng.hpp"

namespace bb::flow {

namespace {

/// One controller's specification language plus the interface wires to
/// observe.  Built once per design; monitors reference it across runs.
struct MonitorSpec {
  std::string name;
  trace::Dfa dfa;
  std::vector<std::string> signals;  ///< alphabet wire names, sorted
};

/// True for plain handshake wires ("<chan>_r" / "<chan>_a").  Indexed
/// data wires ("..._a3") use a value encoding whose specified bursts do
/// not project onto single simulated transitions, so controllers whose
/// alphabet contains them are not monitored.
bool plain_handshake_wire(const std::string& signal) {
  const auto n = signal.size();
  return n >= 2 && signal[n - 2] == '_' &&
         (signal[n - 1] == 'r' || signal[n - 1] == 'a');
}

/// Re-derives the clustered controllers exactly as synthesize_control
/// does (same clustering options, deterministic order), compiles each to
/// its Burst-Mode machine, and turns the machine into a MonitorSpec DFA
/// via trace::bm_spec_lts.  The BM machine — not the CH program — is the
/// specification the gates implement: a synthesized controller may
/// legally overlap return-to-zero phases that the CH handshake expansion
/// serializes.  Where the healthy circuit still diverges (hazard pulses
/// under a faster-than-fundamental-mode environment), baseline
/// calibration bounds the monitor's horizon instead of dropping it.
std::vector<MonitorSpec> monitor_specs(const hsnet::Netlist& net,
                                       const FlowOptions& options) {
  std::vector<ch::Program> programs;
  for (const int id : net.control_ids()) {
    programs.push_back(hsnet::to_ch(net.component(id)));
  }
  std::vector<opt::ClusteredProgram> clustered;
  if (options.cluster) {
    opt::ClusterOptions copts;
    copts.max_states = options.max_states;
    clustered = opt::optimize(std::move(programs), copts);
  } else {
    clustered = opt::wrap(std::move(programs));
  }

  std::vector<MonitorSpec> specs;
  for (const auto& cp : clustered) {
    try {
      const bm::Spec machine = bm::compile(*cp.program.body, cp.program.name);
      std::set<std::string> signals;
      bool monitorable = true;
      for (const auto& [signal, is_input] : machine.is_input) {
        (void)is_input;
        if (!plain_handshake_wire(signal)) {
          monitorable = false;
          break;
        }
        signals.insert(signal);
      }
      if (!monitorable || signals.empty()) continue;
      MonitorSpec spec;
      spec.name = cp.program.name;
      spec.dfa = trace::determinize(trace::bm_spec_lts(machine));
      spec.signals.assign(signals.begin(), signals.end());
      specs.push_back(std::move(spec));
    } catch (const std::exception&) {
      // State explosion or an uncompilable program: skip the monitor;
      // the benchmark oracles still classify this design's runs.
    }
  }
  return specs;
}

/// Records every edge on a controller's interface wires as "<wire>+/-".
/// The verdict is computed afterwards with trace::reject_prefix, which
/// also yields the minimal counterexample prefix.
class TraceMonitor : public sim::Process {
 public:
  explicit TraceMonitor(const MonitorSpec* spec) : spec_(spec) {}

  /// Resolves the alphabet to nets and subscribes; false when a wire is
  /// missing from the netlist (monitor not attached).
  bool attach(System& system) {
    const auto& gates = system.gates();
    std::vector<int> nets;
    for (const std::string& signal : spec_->signals) {
      const int net = gates.net(signal);
      if (net < 0) return false;
      nets.push_back(net);
    }
    net_label_.assign(static_cast<std::size_t>(gates.num_nets()), {});
    for (std::size_t i = 0; i < nets.size(); ++i) {
      net_label_[nets[i]] = spec_->signals[i];
    }
    system.add_process(this, nets);
    return true;
  }

  void on_change(sim::Simulator& sim, int net) override {
    // A faulted run can oscillate for millions of events; the rejecting
    // prefix (if any) is always near the front, so recording a bounded
    // window loses nothing.
    if (observed_.size() >= kMaxTrace) return;
    observed_.push_back(net_label_[net] + (sim.value(net) ? "+" : "-"));
  }

  const MonitorSpec* spec() const { return spec_; }
  const std::vector<std::string>& observed() const { return observed_; }

 private:
  static constexpr std::size_t kMaxTrace = 4096;
  const MonitorSpec* spec_;
  std::vector<std::string> net_label_;
  std::vector<std::string> observed_;
};

/// A monitor that survived baseline validation, together with the trace
/// horizon it is trusted over.  The testbench environment answers
/// handshakes faster than the synthesized state variables settle, so a
/// healthy circuit can emit a hazard pulse that diverges from the
/// machine's serialized trace language mid-run; the baseline run
/// calibrates how far the healthy trace conforms, and faulted runs are
/// checked only over that many leading labels.  Targeted faults violate
/// the specification within the first handful of labels, far inside any
/// calibrated horizon.
struct TrustedMonitor {
  const MonitorSpec* spec = nullptr;
  std::size_t horizon = 0;  ///< labels checked per run; SIZE_MAX = all
};

/// The leading portion of an observed trace a monitor is trusted over.
std::vector<std::string> clip(std::vector<std::string> observed,
                              std::size_t horizon) {
  if (observed.size() > horizon) observed.resize(horizon);
  return observed;
}

/// A fault selected before any run, as closures over stable gate indices
/// (the flow is deterministic, so indices carry across fresh Systems).
struct PlannedFault {
  std::string kind;
  std::string label;  ///< preset description; empty = derive from plan
  std::function<void(sim::FaultPlan&)> apply;
};

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Runs one faulted simulation and classifies it.
FaultRun execute(const std::string& design, const FlowOptions& options,
                 const CampaignOptions& campaign, const PlannedFault& pf,
                 const std::vector<TrustedMonitor>& trusted) {
  obs::Span span("faultsim.run", obs::kCatFault);
  span.arg("design", design);
  span.arg("kind", pf.kind);
  obs::Registry::global().counter("faultsim.runs").add();
  FaultRun run;
  run.kind = pf.kind;

  std::optional<sim::FaultPlan> plan;
  std::vector<std::pair<std::unique_ptr<TraceMonitor>, std::size_t>> monitors;
  BenchmarkHooks hooks;
  hooks.max_sim_ns = campaign.max_sim_ns;
  hooks.max_events = campaign.max_events;
  hooks.before_start = [&](System& system) {
    plan.emplace(system.gates());
    pf.apply(*plan);
    system.set_fault_plan(&*plan);
    if (!pf.label.empty()) {
      run.fault = pf.label;
    } else {
      for (const sim::Fault& fault : plan->faults()) {
        if (!run.fault.empty()) run.fault += "; ";
        run.fault += fault.describe(system.gates());
      }
    }
    for (const TrustedMonitor& tm : trusted) {
      auto monitor = std::make_unique<TraceMonitor>(tm.spec);
      if (monitor->attach(system)) {
        monitors.emplace_back(std::move(monitor), tm.horizon);
      }
    }
  };

  bool crashed = false;
  BenchmarkResult result;
  try {
    result = run_benchmark(design, options, &hooks);
  } catch (const std::exception& e) {
    crashed = true;
    run.outcome = FaultOutcome::kCrash;
    run.detail = e.what();
  }

  if (!crashed) {
    run.detail = result.detail;
    run.outcome = FaultOutcome::kTolerated;
    // The trace verdict wins: a counterexample names the exact protocol
    // step the fault corrupted, which the end-to-end oracles cannot.
    // Each monitor only judges the leading window its baseline run
    // calibrated as trustworthy.
    for (const auto& [monitor, horizon] : monitors) {
      auto cex = trace::reject_prefix(monitor->spec()->dfa,
                                      clip(monitor->observed(), horizon));
      if (!cex.empty()) {
        run.outcome = FaultOutcome::kTraceCounterexample;
        run.monitor = monitor->spec()->name;
        run.counterexample = std::move(cex);
        break;
      }
    }
    if (run.outcome == FaultOutcome::kTolerated && !result.ok) {
      if (result.completed) {
        run.outcome = FaultOutcome::kWrongOutput;
      } else if (result.status == sim::RunStatus::kQuiescent) {
        run.outcome = FaultOutcome::kDeadlock;
      } else {
        run.outcome = FaultOutcome::kHang;
      }
    }
  }
  run.detected = fault_detected(run.outcome);
  span.arg("outcome", fault_outcome_name(run.outcome));
  if (run.detected) {
    obs::Registry::global().counter("faultsim.detected").add();
  }
  return run;
}

/// FNV-1a, to give each design its own PRNG stream under one seed.
std::uint64_t mix_design(std::uint64_t seed, const std::string& design) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : design) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return seed ^ h;
}

}  // namespace

std::string_view fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kTolerated:
      return "tolerated";
    case FaultOutcome::kTraceCounterexample:
      return "trace-counterexample";
    case FaultOutcome::kWrongOutput:
      return "wrong-output";
    case FaultOutcome::kDeadlock:
      return "deadlock";
    case FaultOutcome::kHang:
      return "hang";
    case FaultOutcome::kCrash:
      return "crash";
  }
  return "?";
}

bool fault_detected(FaultOutcome outcome) {
  return outcome != FaultOutcome::kTolerated;
}

std::uint64_t effective_seed(const CampaignOptions& options) {
  if (options.seed != 0) return options.seed;
  if (const char* env = std::getenv("BB_SEED")) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 1;
}

DesignCampaign run_design_campaign(const std::string& design,
                                   const FlowOptions& options,
                                   const CampaignOptions& campaign) {
  obs::Span design_span("faultsim.design", obs::kCatFault);
  design_span.arg("design", design);
  DesignCampaign dc;
  dc.design = design;
  const std::uint64_t seed = effective_seed(campaign);

  const auto net = balsa::compile_source(designs::design(design).source);
  const std::vector<MonitorSpec> specs = monitor_specs(net, options);

  // Healthy baseline: validates the monitors (one that rejects a healthy
  // trace is specification-mismatched, not fault evidence — drop it) and
  // collects the netlist facts the fault list is drawn from.
  int num_gates = 0;
  std::vector<int> state_gates;  // C-element outputs: SEU targets
  std::map<std::string, int> targeted_gate;  // monitor -> driving gate
  std::vector<std::unique_ptr<TraceMonitor>> baseline_monitors;
  BenchmarkHooks hooks;
  hooks.max_sim_ns = campaign.max_sim_ns;
  hooks.max_events = campaign.max_events;
  hooks.before_start = [&](System& system) {
    const auto& gates = system.gates();
    num_gates = static_cast<int>(gates.gates().size());
    for (std::size_t g = 0; g < gates.gates().size(); ++g) {
      if (gates.gates()[g].fn == netlist::CellFn::kCelem) {
        state_gates.push_back(static_cast<int>(g));
      }
    }
    const auto drivers = gates.driver_table();
    for (const MonitorSpec& spec : specs) {
      for (const std::string& signal : spec.signals) {
        const int n = gates.net(signal);
        if (n >= 0 && drivers[n] >= 0) {
          targeted_gate.emplace(spec.name, drivers[n]);
          break;
        }
      }
      auto monitor = std::make_unique<TraceMonitor>(&spec);
      if (monitor->attach(system)) {
        baseline_monitors.push_back(std::move(monitor));
      }
    }
  };
  const BenchmarkResult baseline = [&] {
    obs::Span span("faultsim.baseline", obs::kCatFault);
    span.arg("design", design);
    return run_benchmark(design, options, &hooks);
  }();
  dc.baseline_ok = baseline.ok;

  // Calibrate each monitor against the healthy trace.  A fully
  // conforming baseline earns an unlimited horizon.  If the healthy run
  // first diverges from the machine's serialized language at label p
  // (hazard pulses under the fast testbench environment do this), the
  // monitor is still sound over the first p-1 labels, so faulted runs
  // are judged on that window; a horizon too short to contain a
  // handshake is specification mismatch, and the monitor is dropped.
  constexpr std::size_t kMinHorizon = 8;
  std::vector<TrustedMonitor> trusted;
  for (const auto& monitor : baseline_monitors) {
    const auto cex =
        trace::reject_prefix(monitor->spec()->dfa, monitor->observed());
    if (cex.empty()) {
      trusted.push_back(
          {monitor->spec(), std::numeric_limits<std::size_t>::max()});
    } else if (cex.size() - 1 >= kMinHorizon) {
      trusted.push_back({monitor->spec(), cex.size() - 1});
    }
  }
  dc.monitors = static_cast<int>(trusted.size());

  // The deterministic fault list.
  util::SplitMix64 prng(mix_design(seed, design));
  std::vector<PlannedFault> planned;

  // Targeted stuck-at-1 per validated monitor: forcing a controller
  // output high at t=0 makes an edge the specification never allows
  // there, so these are the faults the trace verifier catches.  The
  // sampled set keeps the random faults from re-injecting them.
  std::set<std::pair<int, bool>> sampled;
  for (const TrustedMonitor& tm : trusted) {
    const auto it = targeted_gate.find(tm.spec->name);
    if (it == targeted_gate.end()) continue;
    const int gate = it->second;
    if (!sampled.insert({gate, true}).second) continue;
    planned.push_back({"stuck-at-1", "", [gate](sim::FaultPlan& plan) {
                         plan.stuck_at(gate, true);
                       }});
  }
  for (int j = 0; j < campaign.random_stuck_at && num_gates > 0; ++j) {
    const bool value = (j % 2) != 0;
    int gate = static_cast<int>(prng.below(num_gates));
    for (int retry = 0; retry < 8 && sampled.count({gate, value}); ++retry) {
      gate = static_cast<int>(prng.below(num_gates));
    }
    sampled.insert({gate, value});
    planned.push_back(
        {value ? "stuck-at-1" : "stuck-at-0", "",
         [gate, value](sim::FaultPlan& plan) { plan.stuck_at(gate, value); }});
  }

  for (int j = 0; j < campaign.bit_flips && num_gates > 0; ++j) {
    const int gate =
        state_gates.empty()
            ? static_cast<int>(prng.below(num_gates))
            : state_gates[prng.below(state_gates.size())];
    const double at_ns = 5.0 + static_cast<double>(prng.below(150));
    planned.push_back({"bit-flip", "", [gate, at_ns](sim::FaultPlan& plan) {
                         plan.bit_flip(plan.netlist().gates()[gate].output,
                                       at_ns);
                       }});
  }

  for (int j = 0; j < campaign.delay_runs; ++j) {
    const std::uint64_t delay_seed = prng.next();
    const double scale = campaign.delay_scale;
    const double jitter = campaign.delay_jitter_ns;
    planned.push_back({"delay-perturbation",
                       "delay-perturbation scale=" + fmt_double(scale) +
                           " jitter=" + fmt_double(jitter) + "ns seed=" +
                           std::to_string(delay_seed),
                       [delay_seed, scale, jitter](sim::FaultPlan& plan) {
                         plan.perturb_delays(delay_seed, scale, jitter);
                       }});
  }

  for (const PlannedFault& pf : planned) {
    FaultRun run = execute(design, options, campaign, pf, trusted);
    ++dc.injected;
    if (run.detected) {
      ++dc.detected;
    } else {
      ++dc.tolerated;
    }
    if (run.outcome == FaultOutcome::kWrongOutput) ++dc.silent_corruption;
    if (run.outcome == FaultOutcome::kTraceCounterexample) {
      ++dc.trace_detected;
    }
    dc.runs.push_back(std::move(run));
  }
  return dc;
}

CampaignResult run_fault_campaign(const std::vector<std::string>& designs,
                                  const FlowOptions& options,
                                  const CampaignOptions& campaign) {
  CampaignResult result;
  result.seed = effective_seed(campaign);
  for (const std::string& design : designs) {
    result.designs.push_back(run_design_campaign(design, options, campaign));
  }
  return result;
}

int CampaignResult::total_injected() const {
  int n = 0;
  for (const DesignCampaign& d : designs) n += d.injected;
  return n;
}

int CampaignResult::total_detected() const {
  int n = 0;
  for (const DesignCampaign& d : designs) n += d.detected;
  return n;
}

int CampaignResult::total_tolerated() const {
  int n = 0;
  for (const DesignCampaign& d : designs) n += d.tolerated;
  return n;
}

int CampaignResult::total_silent_corruption() const {
  int n = 0;
  for (const DesignCampaign& d : designs) n += d.silent_corruption;
  return n;
}

std::string CampaignResult::to_text() const {
  std::string s = "fault campaign, seed " + std::to_string(seed) + "\n";
  for (const DesignCampaign& d : designs) {
    s += d.design + ": " + std::to_string(d.injected) + " injected, " +
         std::to_string(d.detected) + " detected (" +
         std::to_string(d.trace_detected) + " by trace verifier), " +
         std::to_string(d.tolerated) + " tolerated, " +
         std::to_string(d.silent_corruption) + " silent corruption; " +
         std::to_string(d.monitors) + " monitor(s), baseline " +
         (d.baseline_ok ? "ok" : "FAILED") + "\n";
    for (const FaultRun& run : d.runs) {
      s += "  " + std::string(run.detected ? "detected " : "tolerated ") +
           run.fault + ": " + std::string(fault_outcome_name(run.outcome));
      if (!run.monitor.empty()) {
        s += " via " + run.monitor + " [";
        for (std::size_t i = 0; i < run.counterexample.size(); ++i) {
          if (i > 0) s += " ";
          s += run.counterexample[i];
        }
        s += "]";
      }
      s += "\n";
    }
  }
  s += "total: " + std::to_string(total_injected()) + " injected, " +
       std::to_string(total_detected()) + " detected, " +
       std::to_string(total_tolerated()) + " tolerated, " +
       std::to_string(total_silent_corruption()) + " silent corruption\n";
  return s;
}

std::string CampaignResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kFaultCampaignSchemaVersion);
  w.member("seed", seed);
  w.key("designs").begin_array();
  for (const DesignCampaign& d : designs) {
    w.begin_object();
    w.member("design", d.design);
    w.member("baseline_ok", d.baseline_ok);
    w.member("monitors", d.monitors);
    w.member("injected", d.injected);
    w.member("detected", d.detected);
    w.member("tolerated", d.tolerated);
    w.member("silent_corruption", d.silent_corruption);
    w.member("trace_detected", d.trace_detected);
    w.key("runs").begin_array();
    for (const FaultRun& run : d.runs) {
      w.begin_object();
      w.member("fault", run.fault);
      w.member("kind", run.kind);
      w.member("outcome", fault_outcome_name(run.outcome));
      w.member("detected", run.detected);
      if (!run.monitor.empty()) {
        w.member("monitor", run.monitor);
        w.key("counterexample").begin_array();
        for (const std::string& label : run.counterexample) {
          w.value(label);
        }
        w.end_array();
      }
      w.member("detail", run.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("totals")
      .begin_object()
      .member("injected", total_injected())
      .member("detected", total_detected())
      .member("tolerated", total_tolerated())
      .member("silent_corruption", total_silent_corruption())
      .end_object();
  w.end_object();
  return w.str();
}

}  // namespace bb::flow
