#include "src/flow/testbench.hpp"

namespace bb::flow {

ActivateDriver::ActivateDriver(System& system, const std::string& channel,
                               double at_ns)
    : nets_(system.chan(channel)), at_ns_(at_ns) {
  system.add_process(this, {nets_.ack});
}

void ActivateDriver::start(sim::Simulator& sim) {
  sim.schedule(nets_.req, true, at_ns_);
}

void ActivateDriver::on_change(sim::Simulator& sim, int net) {
  if (net != nets_.ack) return;
  if (sim.value(net)) {
    sim.schedule(nets_.req, false, 0.8);
  } else {
    done_ = true;
    done_time_ = sim.now();
  }
}

SyncServer::SyncServer(System& system, const std::string& channel,
                       double delay_ns)
    : nets_(system.chan(channel)), delay_ns_(delay_ns) {
  system.add_process(this, {nets_.req});
}

void SyncServer::on_change(sim::Simulator& sim, int net) {
  if (net != nets_.req) return;
  if (sim.value(net)) {
    if (enabled && !enabled()) return;
    sim.schedule(nets_.ack, true, delay_ns_);
  } else {
    sim.schedule(nets_.ack, false, delay_ns_);
    ++completed_;
    if (on_cycle) on_cycle(completed_, sim.now());
  }
}

PullServer::PullServer(System& system, const std::string& channel,
                       std::function<std::uint64_t()> provider,
                       double delay_ns)
    : channel_(channel),
      nets_(system.chan(channel)),
      provider_(std::move(provider)),
      delay_ns_(delay_ns) {
  data_ = &system.data();
  system.add_process(this, {nets_.req});
}

void PullServer::on_change(sim::Simulator& sim, int net) {
  if (net != nets_.req) return;
  if (sim.value(net)) {
    if (enabled && !enabled()) return;  // stall: benchmark window over
    data_->set(channel_, provider_());
    sim.schedule(nets_.ack, true, delay_ns_);
    ++served_;
  } else {
    sim.schedule(nets_.ack, false, delay_ns_);
  }
}

PushServer::PushServer(System& system, const std::string& channel,
                       double delay_ns)
    : channel_(channel), nets_(system.chan(channel)), delay_ns_(delay_ns) {
  data_ = &system.data();
  system.add_process(this, {nets_.req});
}

void PushServer::on_change(sim::Simulator& sim, int net) {
  if (net != nets_.req) return;
  if (sim.value(net)) {
    values_.push_back(data_->get(channel_));
    sim.schedule(nets_.ack, true, delay_ns_);
  } else {
    sim.schedule(nets_.ack, false, delay_ns_);
    ++consumed_;
    last_time_ = sim.now();
    if (on_data) on_data(values_.back(), sim.now());
  }
}

SsemMemory::SsemMemory(System& system, std::vector<std::uint32_t> image,
                       double read_ns, double write_ns)
    : maddr_(system.chan("maddr")),
      mdata_(system.chan("mdata")),
      mwdata_(system.chan("mwdata")),
      mem_(std::move(image)),
      read_ns_(read_ns),
      write_ns_(write_ns),
      system_(&system) {
  mem_.resize(32, 0);
  system.add_process(this, {maddr_.req, mdata_.req, mwdata_.req});
}

void SsemMemory::on_change(sim::Simulator& sim, int net) {
  auto& data = system_->data();
  if (net == maddr_.req) {
    if (sim.value(net)) {
      addr_ = static_cast<std::uint32_t>(data.get("maddr")) & 0x1F;
      sim.schedule(maddr_.ack, true, 0.8);
    } else {
      sim.schedule(maddr_.ack, false, 0.8);
    }
  } else if (net == mdata_.req) {
    if (sim.value(net)) {
      data.set("mdata", mem_.at(addr_));
      ++reads_;
      sim.schedule(mdata_.ack, true, read_ns_);
    } else {
      sim.schedule(mdata_.ack, false, 0.8);
    }
  } else if (net == mwdata_.req) {
    if (sim.value(net)) {
      mem_.at(addr_) = static_cast<std::uint32_t>(data.get("mwdata"));
      ++writes_;
      sim.schedule(mwdata_.ack, true, write_ns_);
    } else {
      sim.schedule(mwdata_.ack, false, 0.8);
    }
  }
}

}  // namespace bb::flow
