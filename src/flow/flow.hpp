// The Balsa system back-end of Fig. 1: control/datapath partitioning,
// Balsa-to-CH translation, clustering optimization, CH-to-BMS, Burst-Mode
// synthesis, and technology mapping into one merged control netlist.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <cstdint>

#include "src/hsnet/netlist.hpp"
#include "src/lint/lint.hpp"
#include "src/minimalist/cache.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"
#include "src/opt/cluster.hpp"
#include "src/techmap/map.hpp"
#include "src/techmap/templates.hpp"

namespace bb::flow {

struct FlowOptions {
  /// Run the paper's clustering optimizations (T1 + T2).
  bool cluster = true;
  /// Minimalist mode: speed scripts for the optimized flow, area mode for
  /// the per-component baseline templates.
  minimalist::SynthMode mode = minimalist::SynthMode::kSpeed;
  /// Map the two logic levels separately (Section 5), or whole-cone.
  bool level_separated = true;
  /// Reject clustered controllers above this many BM states (0 = no cap).
  int max_states = 40;
  /// Use the hand-optimized gate templates for standard components (the
  /// Balsa library baseline); components without a template are
  /// synthesized per `mode`.  Only meaningful when cluster == false.
  bool templates = false;
  /// Run the static-analysis passes (src/lint) over every intermediate
  /// representation.  Error-severity findings abort the flow with a
  /// LintError; warnings are collected in ControlResult::lint_report.
  bool lint = true;
  /// Additionally run the deep semantic passes (src/analyze): Burst-Mode
  /// legality under the level-sensitive reading (AN), structural
  /// Petri-net deadlock/liveness (PN), and the exhaustive mapped-cone
  /// audit (NL005-NL007).  Off by default — the passes cost real time on
  /// large controllers; bb-lint and the serve `analyze` op turn them on.
  /// Requires lint == true; findings gate the flow exactly like lint
  /// findings (errors abort with LintError).
  bool analyze = false;
  /// Suppression list and thresholds forwarded to the lint passes.
  lint::LintOptions lint_options;
  /// Worker threads for the per-controller synthesis loop.  0 = auto
  /// (the BB_JOBS environment variable when set, otherwise the hardware
  /// concurrency); 1 forces the serial path.  Parallel output is merged
  /// in controller-index order and is byte-identical to the serial flow.
  int jobs = 0;
  /// Memoize Burst-Mode synthesis through a content-addressed cache
  /// (keyed on bm::Spec::to_canonical() + mode, so structurally
  /// identical controllers from different instances share one entry).
  /// The cache is exact — cached and uncached flows produce identical
  /// results — so it is on by default; set false as an escape hatch.
  bool cache = true;
  /// Cache instance to use; nullptr = the process-wide
  /// minimalist::SynthCache::global().  Tests inject a local instance.
  minimalist::SynthCache* cache_instance = nullptr;
  /// Fail-fast behaviour (the default): any controller failure aborts
  /// synthesize_control with the original exception.  When false, a
  /// controller that exceeds max_states, blows its work budget, or
  /// throws during compile/synthesis/mapping is *degraded*: it falls
  /// back to the unclustered per-component baseline (hand templates
  /// where available, area-mode synthesis otherwise) and the failure is
  /// recorded in ControlResult::failures; all other controllers'
  /// output is byte-identical to a fully healthy run.
  bool strict = true;
  /// Per-controller synthesis work budget, in abstract operations
  /// charged by the exponential steps (unate-covering branch nodes, DHF
  /// candidate expansions, state-minimization passes).  0 = auto (the
  /// BB_WORK_BUDGET environment variable when set, unlimited
  /// otherwise); < 0 forces unlimited; > 0 is an explicit cap.  A cache
  /// hit costs no budgeted work.
  long long work_budget = 0;
  /// When non-empty, this synthesize_control call collects a span trace
  /// and writes it here as Chrome trace-event JSON (open in Perfetto or
  /// chrome://tracing).  If an enclosing obs::Session already owns the
  /// trace (e.g. a tool passed --trace), the spans land in that trace
  /// instead and no separate file is written.  Tools usually leave this
  /// empty and own the session themselves; the BB_TRACE environment
  /// variable is honored at the tool layer, not here.
  std::string trace_path;
  /// When non-empty, a metrics snapshot (obs::Registry::global()) is
  /// written here after the call.  Same ownership rules as trace_path.
  std::string metrics_path;

  /// The paper's optimized back-end configuration.
  static FlowOptions optimized();
  /// The unoptimized Balsa baseline: per-component controllers compiled
  /// as compact, area-efficient implementations (the hand-optimized
  /// template library stand-in).
  static FlowOptions unoptimized();
};

/// Wall-clock observability of one synthesize_control call.  Per-stage
/// times are summed across controllers (CPU-style totals); the wall time
/// of the parallel region is reported separately so speedup is visible.
struct StageTimings {
  double to_ch_ms = 0.0;      ///< Balsa-to-CH translation (+ templates)
  double cluster_ms = 0.0;    ///< T1/T2 clustering
  double bm_compile_ms = 0.0; ///< CH-to-BMS, summed across controllers
  double minimalist_ms = 0.0; ///< two-level synthesis (or cache lookup)
  double techmap_ms = 0.0;    ///< technology mapping
  double lint_ms = 0.0;       ///< all lint stages, including handshake/gates
  double controllers_wall_ms = 0.0;  ///< wall time of the parallel region
  double total_ms = 0.0;             ///< whole synthesize_control call
  int jobs = 1;                      ///< worker threads actually used
  std::uint64_t cache_hits = 0;      ///< this call's hits (not global)
  std::uint64_t cache_misses = 0;
  /// Hits served by the persistent second tier (serve::DiskCache) rather
  /// than the in-memory map; a subset of cache_hits.
  std::uint64_t cache_disk_hits = 0;
  /// Incremental-build reuse (filled by incr::build when this timings
  /// block describes a whole incremental build; always zero for a plain
  /// synthesize_control call).  Units are procedures; "reused" units
  /// were spliced from the project manifest without any synthesis.
  std::uint64_t incr_units_reused = 0;
  std::uint64_t incr_units_rebuilt = 0;
  std::uint64_t incr_controllers_reused = 0;
  std::uint64_t incr_controllers_rebuilt = 0;

  struct Controller {
    std::string name;
    double bm_compile_ms = 0.0;
    double minimalist_ms = 0.0;
    double techmap_ms = 0.0;
    double lint_ms = 0.0;
    bool cache_hit = false;
    bool cache_disk = false;  ///< the hit came from the disk tier
  };
  std::vector<Controller> controllers;

  /// Human-readable block, one line per stage then per controller.
  std::string to_text() const;
  /// Stable machine-readable rendering for bench_flowperf artifacts.
  std::string to_json() const;
};

struct ControllerInfo {
  std::string name;
  std::vector<std::string> members;  ///< original components clustered in
  int states = 0;
  std::size_t products = 0;
  std::size_t literals = 0;
  double area = 0.0;
};

/// Where in the flow a structured failure (FlowError) was raised.
enum class FlowStage {
  kTranslate,  ///< Balsa-to-CH translation
  kCluster,    ///< T1/T2 clustering
  kBmCompile,  ///< CH-to-BMS compilation / BM validation / state cap
  kLint,       ///< a static-analysis stage
  kSynthesis,  ///< Minimalist two-level synthesis (incl. work budget)
  kTechmap,    ///< technology mapping
  kVerify,     ///< trace verification
};

/// "translate" / "cluster" / "bm-compile" / "lint" / "synthesis" /
/// "techmap" / "verify".
std::string_view flow_stage_name(FlowStage stage);

/// A structured flow failure: the stage it happened in plus a
/// lint-style diagnostic (rule ids FL001..FL005, registered in
/// lint::all_rules), so callers can tell a BM-validation failure from a
/// budget blow-out from a fallback failure without parsing what().
class FlowError : public std::runtime_error {
 public:
  FlowError(FlowStage stage, std::string rule, std::string object,
            std::string message);
  FlowStage stage() const { return stage_; }
  const lint::Diagnostic& diagnostic() const { return diag_; }

 private:
  FlowStage stage_;
  lint::Diagnostic diag_;
};

/// One controller the non-strict flow degraded instead of aborting on.
struct ControllerFailure {
  std::string controller;            ///< clustered controller name
  FlowStage stage = FlowStage::kSynthesis;  ///< where it failed
  std::string rule;                  ///< diagnostic rule id (FL00x)
  std::string reason;                ///< original failure text
  std::string fallback;              ///< what replaced it
  std::vector<std::string> members;  ///< components re-implemented
};

struct ControlResult {
  netlist::GateNetlist gates{"control"};
  std::vector<minimalist::SynthesizedController> controllers;
  std::vector<std::string> prefixes;  ///< gate-net prefix per controller
  std::vector<ControllerInfo> info;
  opt::ClusterStats cluster_stats;
  /// Findings from every lint stage that ran, plus one FL005 warning per
  /// degraded controller (empty when options.lint is off and no
  /// controller degraded).  Error-severity findings abort
  /// synthesize_control instead of landing here.
  lint::Report lint_report;
  /// Controllers the non-strict flow degraded (empty in strict mode and
  /// on fully healthy runs).  Each entry names the failing stage, the
  /// reason, and the fallback that replaced the controller.
  std::vector<ControllerFailure> failures;
  /// Per-stage wall times of the call that produced this result.
  StageTimings timings;
  double area = 0.0;
};

/// Thrown when a lint stage reports Error-severity findings.  `report`
/// holds the findings of the failing stage; what() is its text rendering.
class LintError : public std::runtime_error {
 public:
  LintError(std::string stage, lint::Report findings);
  const std::string& stage() const { return stage_; }
  const lint::Report& report() const { return report_; }

 private:
  std::string stage_;
  lint::Report report_;
};

/// Synthesizes the control partition of a handshake netlist.
ControlResult synthesize_control(const hsnet::Netlist& netlist,
                                 const FlowOptions& options);

/// One-line-per-controller report.  The default rendering is a pure
/// function of the synthesis result (no wall-clock numbers), so serial,
/// parallel, cached and uncached flows produce byte-identical text;
/// `with_timings` appends the StageTimings block for human inspection.
std::string report(const ControlResult& result, bool with_timings = false);

/// The worker count a given options.jobs value resolves to.
int effective_jobs(const FlowOptions& options);

/// The per-controller work budget a given options.work_budget value
/// resolves to (0 = unlimited): explicit caps win, otherwise the
/// BB_WORK_BUDGET environment variable is consulted.
std::uint64_t effective_work_budget(const FlowOptions& options);

}  // namespace bb::flow
