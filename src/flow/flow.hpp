// The Balsa system back-end of Fig. 1: control/datapath partitioning,
// Balsa-to-CH translation, clustering optimization, CH-to-BMS, Burst-Mode
// synthesis, and technology mapping into one merged control netlist.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/hsnet/netlist.hpp"
#include "src/lint/lint.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"
#include "src/opt/cluster.hpp"
#include "src/techmap/map.hpp"
#include "src/techmap/templates.hpp"

namespace bb::flow {

struct FlowOptions {
  /// Run the paper's clustering optimizations (T1 + T2).
  bool cluster = true;
  /// Minimalist mode: speed scripts for the optimized flow, area mode for
  /// the per-component baseline templates.
  minimalist::SynthMode mode = minimalist::SynthMode::kSpeed;
  /// Map the two logic levels separately (Section 5), or whole-cone.
  bool level_separated = true;
  /// Reject clustered controllers above this many BM states (0 = no cap).
  int max_states = 40;
  /// Use the hand-optimized gate templates for standard components (the
  /// Balsa library baseline); components without a template are
  /// synthesized per `mode`.  Only meaningful when cluster == false.
  bool templates = false;
  /// Run the static-analysis passes (src/lint) over every intermediate
  /// representation.  Error-severity findings abort the flow with a
  /// LintError; warnings are collected in ControlResult::lint_report.
  bool lint = true;
  /// Suppression list and thresholds forwarded to the lint passes.
  lint::LintOptions lint_options;

  /// The paper's optimized back-end configuration.
  static FlowOptions optimized();
  /// The unoptimized Balsa baseline: per-component controllers compiled
  /// as compact, area-efficient implementations (the hand-optimized
  /// template library stand-in).
  static FlowOptions unoptimized();
};

struct ControllerInfo {
  std::string name;
  std::vector<std::string> members;  ///< original components clustered in
  int states = 0;
  std::size_t products = 0;
  std::size_t literals = 0;
  double area = 0.0;
};

struct ControlResult {
  netlist::GateNetlist gates{"control"};
  std::vector<minimalist::SynthesizedController> controllers;
  std::vector<std::string> prefixes;  ///< gate-net prefix per controller
  std::vector<ControllerInfo> info;
  opt::ClusterStats cluster_stats;
  /// Findings from every lint stage that ran (empty when options.lint is
  /// off).  Error-severity findings abort synthesize_control instead of
  /// landing here.
  lint::Report lint_report;
  double area = 0.0;
};

/// Thrown when a lint stage reports Error-severity findings.  `report`
/// holds the findings of the failing stage; what() is its text rendering.
class LintError : public std::runtime_error {
 public:
  LintError(std::string stage, lint::Report findings);
  const std::string& stage() const { return stage_; }
  const lint::Report& report() const { return report_; }

 private:
  std::string stage_;
  lint::Report report_;
};

/// Synthesizes the control partition of a handshake netlist.
ControlResult synthesize_control(const hsnet::Netlist& netlist,
                                 const FlowOptions& options);

/// One-line-per-controller report.
std::string report(const ControlResult& result);

}  // namespace bb::flow
