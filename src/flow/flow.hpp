// The Balsa system back-end of Fig. 1: control/datapath partitioning,
// Balsa-to-CH translation, clustering optimization, CH-to-BMS, Burst-Mode
// synthesis, and technology mapping into one merged control netlist.
#pragma once

#include <string>
#include <vector>

#include "src/hsnet/netlist.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"
#include "src/opt/cluster.hpp"
#include "src/techmap/map.hpp"
#include "src/techmap/templates.hpp"

namespace bb::flow {

struct FlowOptions {
  /// Run the paper's clustering optimizations (T1 + T2).
  bool cluster = true;
  /// Minimalist mode: speed scripts for the optimized flow, area mode for
  /// the per-component baseline templates.
  minimalist::SynthMode mode = minimalist::SynthMode::kSpeed;
  /// Map the two logic levels separately (Section 5), or whole-cone.
  bool level_separated = true;
  /// Reject clustered controllers above this many BM states (0 = no cap).
  int max_states = 40;
  /// Use the hand-optimized gate templates for standard components (the
  /// Balsa library baseline); components without a template are
  /// synthesized per `mode`.  Only meaningful when cluster == false.
  bool templates = false;

  /// The paper's optimized back-end configuration.
  static FlowOptions optimized();
  /// The unoptimized Balsa baseline: per-component controllers compiled
  /// as compact, area-efficient implementations (the hand-optimized
  /// template library stand-in).
  static FlowOptions unoptimized();
};

struct ControllerInfo {
  std::string name;
  std::vector<std::string> members;  ///< original components clustered in
  int states = 0;
  std::size_t products = 0;
  std::size_t literals = 0;
  double area = 0.0;
};

struct ControlResult {
  netlist::GateNetlist gates{"control"};
  std::vector<minimalist::SynthesizedController> controllers;
  std::vector<std::string> prefixes;  ///< gate-net prefix per controller
  std::vector<ControllerInfo> info;
  opt::ClusterStats cluster_stats;
  double area = 0.0;
};

/// Synthesizes the control partition of a handshake netlist.
ControlResult synthesize_control(const hsnet::Netlist& netlist,
                                 const FlowOptions& options);

/// One-line-per-controller report.
std::string report(const ControlResult& result);

}  // namespace bb::flow
