#include "src/flow/flow.hpp"

#include <stdexcept>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/hsnet/to_ch.hpp"

namespace bb::flow {

FlowOptions FlowOptions::optimized() {
  FlowOptions o;
  o.cluster = true;
  o.mode = minimalist::SynthMode::kSpeed;
  o.level_separated = true;
  return o;
}

FlowOptions FlowOptions::unoptimized() {
  FlowOptions o;
  o.cluster = false;
  o.mode = minimalist::SynthMode::kArea;
  o.level_separated = false;
  o.templates = true;
  return o;
}

LintError::LintError(std::string stage, lint::Report findings)
    : std::runtime_error("flow: lint found " +
                         std::to_string(findings.count(
                             lint::Severity::kError)) +
                         " error(s) in " + stage + "\n" + findings.to_text()),
      stage_(std::move(stage)),
      report_(std::move(findings)) {}

ControlResult synthesize_control(const hsnet::Netlist& netlist,
                                 const FlowOptions& options) {
  ControlResult result;
  const auto& lib = techmap::CellLibrary::ams035();

  // The static-analysis stage: every IR is linted as it is produced;
  // Error-severity findings abort, warnings accumulate in the result.
  const auto absorb = [&](std::string stage, lint::Report findings) {
    if (findings.has_errors()) {
      throw LintError(std::move(stage), std::move(findings));
    }
    result.lint_report.merge(findings);
  };
  if (options.lint) {
    absorb("handshake netlist '" + netlist.name() + "'",
           lint::lint_handshake(netlist, options.lint_options));
  }

  // Balsa-to-CH for every control component; in the template baseline,
  // components with a hand-optimized circuit skip the synthesis path.
  std::vector<ch::Program> programs;
  for (const int id : netlist.control_ids()) {
    const auto& component = netlist.component(id);
    if (!options.cluster && options.templates &&
        techmap::has_template(component.kind)) {
      auto circuit = techmap::template_circuit(component, lib);
      ControllerInfo info;
      info.name = component.display_name() + " (template)";
      info.members = {component.display_name()};
      info.area = circuit->total_area();
      result.info.push_back(std::move(info));
      result.gates.merge(*circuit);
      continue;
    }
    programs.push_back(hsnet::to_ch(component));
  }

  // Clustering (Section 4): T2 (which runs T1) over the CH programs.
  std::vector<opt::ClusteredProgram> clustered;
  if (options.cluster) {
    opt::ClusterOptions copts;
    copts.max_states = options.max_states;
    clustered =
        opt::optimize(std::move(programs), copts, &result.cluster_stats);
  } else {
    clustered = opt::wrap(std::move(programs));
  }

  // CH-to-BMS, Minimalist, tech mapping; merge everything into one
  // control netlist (controllers interconnect through channel wire names).
  techmap::MapOptions mopts;
  mopts.level_separated = options.level_separated;

  for (std::size_t i = 0; i < clustered.size(); ++i) {
    const auto& program = clustered[i].program;
    const bm::Spec spec = bm::compile(*program.body, program.name);
    if (options.lint) {
      absorb("BM spec of controller '" + program.name + "'",
             lint::lint_bm(spec, options.lint_options));
    } else {
      const auto check = bm::validate(spec);
      if (!check.ok) {
        throw std::runtime_error("flow: controller '" + program.name +
                                 "' failed BM validation: " + check.errors[0]);
      }
    }
    auto ctrl = minimalist::synthesize(spec, options.mode);
    if (options.lint) {
      absorb("two-level logic of controller '" + program.name + "'",
             lint::lint_two_level(ctrl, spec, options.lint_options));
    }
    const std::string prefix = "ctl" + std::to_string(i);
    const netlist::GateNetlist gates =
        techmap::map_controller(ctrl, lib, mopts, prefix);

    ControllerInfo info;
    info.name = program.name;
    info.members = clustered[i].members;
    info.states = spec.num_states;
    info.products = ctrl.num_products();
    info.literals = ctrl.num_literals();
    info.area = gates.total_area();
    result.info.push_back(std::move(info));

    result.gates.merge(gates);
    result.controllers.push_back(std::move(ctrl));
    result.prefixes.push_back(prefix);
  }
  if (options.lint) {
    absorb("merged control netlist",
           lint::lint_gates(result.gates, options.lint_options));
  }
  result.area = result.gates.total_area();
  return result;
}

std::string report(const ControlResult& result) {
  std::string s;
  for (const ControllerInfo& info : result.info) {
    s += info.name + ": " + std::to_string(info.states) + " states, " +
         std::to_string(info.products) + " products, " +
         std::to_string(info.literals) + " literals, area " +
         std::to_string(info.area) + "\n";
  }
  s += "total control area: " + std::to_string(result.area) + "\n";
  return s;
}

}  // namespace bb::flow
