#include "src/flow/flow.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <optional>
#include <stdexcept>

#include "src/analyze/analyze.hpp"
#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/lint/diag.hpp"
#include "src/petri/from_ch.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/session.hpp"
#include "src/obs/trace.hpp"
#include "src/util/json.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/workbudget.hpp"

namespace bb::flow {

namespace {

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// One per-component replacement produced by the degradation path: a
/// hand template circuit, or a standalone area-mode synthesis of one
/// member of a failed clustered controller.
struct FallbackPiece {
  ControllerInfo info;
  std::optional<netlist::GateNetlist> gates;
  std::optional<minimalist::SynthesizedController> ctrl;
  std::string prefix;
};

/// Everything one controller's compile -> lint -> synthesize -> map chain
/// produces.  Workers fill their own Unit; nothing is shared until the
/// deterministic in-order merge, which makes lint absorption and netlist
/// merging thread-safe by construction.
struct Unit {
  ControllerInfo info;
  std::optional<netlist::GateNetlist> gates;
  std::optional<minimalist::SynthesizedController> ctrl;
  std::string prefix;
  lint::Report lint_findings;  ///< non-error findings of this controller
  StageTimings::Controller timing;
  std::exception_ptr error;
  /// Set when the non-strict flow degraded this controller; the merge
  /// then takes `fallback` instead of gates/ctrl.
  std::optional<ControllerFailure> failure;
  std::vector<FallbackPiece> fallback;
};

}  // namespace

std::string_view flow_stage_name(FlowStage stage) {
  switch (stage) {
    case FlowStage::kTranslate:
      return "translate";
    case FlowStage::kCluster:
      return "cluster";
    case FlowStage::kBmCompile:
      return "bm-compile";
    case FlowStage::kLint:
      return "lint";
    case FlowStage::kSynthesis:
      return "synthesis";
    case FlowStage::kTechmap:
      return "techmap";
    case FlowStage::kVerify:
      return "verify";
  }
  return "?";
}

FlowError::FlowError(FlowStage stage, std::string rule, std::string object,
                     std::string message)
    : std::runtime_error("flow[" + rule + "] " +
                         std::string(flow_stage_name(stage)) + ": " + object +
                         ": " + message),
      stage_(stage) {
  diag_.rule = std::move(rule);
  diag_.severity = lint::Severity::kError;
  diag_.object = std::move(object);
  diag_.message = std::move(message);
}

FlowOptions FlowOptions::optimized() {
  FlowOptions o;
  o.cluster = true;
  o.mode = minimalist::SynthMode::kSpeed;
  o.level_separated = true;
  return o;
}

FlowOptions FlowOptions::unoptimized() {
  FlowOptions o;
  o.cluster = false;
  o.mode = minimalist::SynthMode::kArea;
  o.level_separated = false;
  o.templates = true;
  return o;
}

LintError::LintError(std::string stage, lint::Report findings)
    : std::runtime_error("flow: lint found " +
                         std::to_string(findings.count(
                             lint::Severity::kError)) +
                         " error(s) in " + stage + "\n" + findings.to_text()),
      stage_(std::move(stage)),
      report_(std::move(findings)) {}

int effective_jobs(const FlowOptions& options) {
  if (options.jobs > 0) return options.jobs;
  return static_cast<int>(util::ThreadPool::recommended_jobs());
}

std::uint64_t effective_work_budget(const FlowOptions& options) {
  if (options.work_budget > 0) {
    return static_cast<std::uint64_t>(options.work_budget);
  }
  if (options.work_budget < 0) return 0;
  if (const char* env = std::getenv("BB_WORK_BUDGET")) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 0;
}

ControlResult synthesize_control(const hsnet::Netlist& netlist,
                                 const FlowOptions& options) {
  // A per-call session (FlowOptions paths) nests inside any session the
  // tool already opened: only the outermost owner writes artifacts.
  std::optional<obs::Session> session;
  if (!options.trace_path.empty() || !options.metrics_path.empty()) {
    session.emplace(options.trace_path, options.metrics_path);
  }
  ControlResult result;
  // All StageTimings fields are accumulated through spans; the span also
  // records a trace event when tracing is on.  The total span is closed
  // explicitly before returning so its write into `result` cannot chase a
  // moved-from object; on the exception paths its destructor fires before
  // `result` unwinds (declaration order), which is equally safe.
  obs::Span total_span("flow.synthesize_control", obs::kCatFlow,
                       &result.timings.total_ms);
  total_span.arg("design", netlist.name());
  obs::Registry::global().counter("flow.runs").add();
  const auto& lib = techmap::CellLibrary::ams035();
  minimalist::SynthCache* cache =
      options.cache ? (options.cache_instance != nullptr
                           ? options.cache_instance
                           : &minimalist::SynthCache::global())
                    : nullptr;
  // Salt every cache key with the technology contract so a persistent
  // tier can never serve a controller mapped under a different library.
  if (cache != nullptr) cache->set_library_version(lib.fingerprint());

  // The static-analysis stage: every IR is linted as it is produced;
  // Error-severity findings abort, warnings accumulate in the result.
  const auto absorb = [&](std::string stage, lint::Report findings) {
    if (findings.has_errors()) {
      throw LintError(std::move(stage), std::move(findings));
    }
    result.lint_report.merge(findings);
  };
  if (options.lint) {
    obs::Span span("flow.lint.handshake", obs::kCatFlow,
                   &result.timings.lint_ms);
    absorb("handshake netlist '" + netlist.name() + "'",
           lint::lint_handshake(netlist, options.lint_options));
  }

  // Balsa-to-CH for every control component; in the template baseline,
  // components with a hand-optimized circuit skip the synthesis path.
  std::vector<ch::Program> programs;
  {
    obs::Span span("flow.to_ch", obs::kCatFlow, &result.timings.to_ch_ms);
    for (const int id : netlist.control_ids()) {
      const auto& component = netlist.component(id);
      if (!options.cluster && options.templates &&
          techmap::has_template(component.kind)) {
        auto circuit = techmap::template_circuit(component, lib);
        ControllerInfo info;
        info.name = component.display_name() + " (template)";
        info.members = {component.display_name()};
        info.area = circuit->total_area();
        result.info.push_back(std::move(info));
        result.gates.merge(*circuit);
        continue;
      }
      programs.push_back(hsnet::to_ch(component));
    }
    span.arg("programs", static_cast<std::uint64_t>(programs.size()));
  }

  // Clustering (Section 4): T2 (which runs T1) over the CH programs.
  std::vector<opt::ClusteredProgram> clustered;
  {
    obs::Span span("flow.cluster", obs::kCatFlow,
                   &result.timings.cluster_ms);
    if (options.cluster) {
      opt::ClusterOptions copts;
      copts.max_states = options.max_states;
      clustered =
          opt::optimize(std::move(programs), copts, &result.cluster_stats);
    } else {
      clustered = opt::wrap(std::move(programs));
    }
    span.arg("controllers", static_cast<std::uint64_t>(clustered.size()));
  }

  // CH-to-BMS, Minimalist, tech mapping, one controller per work unit.
  // Units are independent: each worker compiles, lints, synthesizes and
  // maps into its own Unit, then the main thread merges in index order,
  // so the output is byte-identical to the serial flow (the "ctl<i>"
  // prefixes are assigned from the index, not from completion order).
  techmap::MapOptions mopts;
  mopts.level_separated = options.level_separated;

  std::vector<Unit> units(clustered.size());

  // Members of a degraded controller are re-implemented standalone; the
  // lookup is read-only and shared by all workers.
  std::map<std::string, const hsnet::Component*> component_by_name;
  for (const int id : netlist.control_ids()) {
    const auto& component = netlist.component(id);
    component_by_name.emplace(component.display_name(), &component);
  }
  const std::uint64_t budget_ops = effective_work_budget(options);

  // The unclustered per-component baseline for one failed controller:
  // hand templates where the library has them, standalone area-mode
  // synthesis otherwise.  Fallback synthesis runs without a work budget
  // — per-component machines are small by construction, and a fallback
  // that can itself fail would leave nothing to degrade to.
  const auto run_fallback = [&](Unit& unit, std::size_t i, FlowStage stage,
                                const std::string& rule,
                                const std::string& reason) {
    const auto& program = clustered[i].program;
    obs::Span span("flow.fallback", obs::kCatFlow);
    span.arg("controller", program.name);
    span.arg("rule", rule);
    obs::Registry::global().counter("flow.controllers.degraded").add();
    unit.gates.reset();
    unit.ctrl.reset();
    unit.prefix.clear();
    unit.fallback.clear();

    int templated = 0;
    int synthesized = 0;
    for (std::size_t k = 0; k < clustered[i].members.size(); ++k) {
      const std::string& member = clustered[i].members[k];
      const auto it = component_by_name.find(member);
      if (it == component_by_name.end()) {
        throw FlowError(stage, "FL004", program.name,
                        "fallback member '" + member +
                            "' is not a control component; original "
                            "failure: " + reason);
      }
      const hsnet::Component& component = *it->second;
      FallbackPiece piece;
      if (techmap::has_template(component.kind)) {
        auto circuit = techmap::template_circuit(component, lib);
        piece.info.name = member + " (fallback template)";
        piece.info.members = {member};
        piece.info.area = circuit->total_area();
        piece.gates = std::move(*circuit);
        ++templated;
      } else {
        ch::Program fallback_program = hsnet::to_ch(component);
        const bm::Spec spec =
            bm::compile(*fallback_program.body, fallback_program.name);
        const auto check = bm::validate(spec);
        if (!check.ok) {
          throw FlowError(stage, "FL004", fallback_program.name,
                          "fallback member failed BM validation: " +
                              check.errors[0] + "; original failure: " +
                              reason);
        }
        minimalist::SynthesizedController ctrl =
            cache != nullptr
                ? minimalist::synthesize_cached(
                      spec, minimalist::SynthMode::kArea, *cache)
                : minimalist::synthesize(spec, minimalist::SynthMode::kArea);
        techmap::MapOptions fallback_mopts;
        fallback_mopts.level_separated = false;
        piece.prefix = "ctl" + std::to_string(i) + "f" + std::to_string(k);
        piece.gates =
            techmap::map_controller(ctrl, lib, fallback_mopts, piece.prefix);
        piece.info.name = fallback_program.name + " (fallback)";
        piece.info.members = {member};
        piece.info.states = spec.num_states;
        piece.info.products = ctrl.num_products();
        piece.info.literals = ctrl.num_literals();
        piece.info.area = piece.gates->total_area();
        piece.ctrl = std::move(ctrl);
        ++synthesized;
      }
      unit.fallback.push_back(std::move(piece));
    }

    ControllerFailure failure;
    failure.controller = program.name;
    failure.stage = stage;
    failure.rule = rule;
    failure.reason = reason;
    failure.members = clustered[i].members;
    failure.fallback = "per-component baseline (" +
                       std::to_string(templated) + " template(s), " +
                       std::to_string(synthesized) + " synthesized)";
    unit.failure = std::move(failure);
  };

  const auto run_unit = [&](std::size_t i) {
    Unit& unit = units[i];
    const auto& program = clustered[i].program;
    unit.timing.name = program.name;
    obs::Span unit_span("flow.controller", obs::kCatFlow);
    unit_span.arg("name", program.name);
    unit_span.arg("index", static_cast<std::uint64_t>(i));
    // Tracks how far the chain got, for FlowError/ControllerFailure
    // attribution when an unstructured exception escapes a stage.
    FlowStage stage = FlowStage::kBmCompile;
    try {
      const auto local_absorb = [&](std::string lint_stage,
                                    lint::Report findings) {
        if (findings.has_errors()) {
          throw LintError(std::move(lint_stage), std::move(findings));
        }
        unit.lint_findings.merge(findings);
      };

      std::optional<util::WorkBudget> budget_storage;
      util::WorkBudget* budget = nullptr;
      if (budget_ops > 0) {
        budget_storage.emplace(budget_ops);
        budget = &*budget_storage;
      }

      std::optional<bm::Spec> spec_storage;
      {
        obs::Span span("flow.bm_compile", obs::kCatFlow,
                       &unit.timing.bm_compile_ms);
        span.arg("controller", program.name);
        spec_storage = bm::compile(*program.body, program.name);
        if (!options.lint) {
          const auto check = bm::validate(*spec_storage);
          if (!check.ok) {
            throw FlowError(FlowStage::kBmCompile, "FL001", program.name,
                            "failed BM validation: " + check.errors[0]);
          }
        }
        // Clustering never merges past the cap, but a degraded flow also
        // guards single components that arrive oversized on their own.
        if (!options.strict && options.max_states > 0 &&
            spec_storage->num_states > options.max_states) {
          throw FlowError(FlowStage::kBmCompile, "FL003", program.name,
                          std::to_string(spec_storage->num_states) +
                              " states exceed the max_states cap of " +
                              std::to_string(options.max_states));
        }
        span.arg("states",
                 static_cast<std::uint64_t>(spec_storage->num_states));
      }
      const bm::Spec& spec = *spec_storage;
      if (options.lint) {
        stage = FlowStage::kLint;
        obs::Span span("flow.lint.bm", obs::kCatFlow, &unit.timing.lint_ms);
        span.arg("controller", program.name);
        local_absorb("BM spec of controller '" + program.name + "'",
                     lint::lint_bm(spec, options.lint_options));
      }
      if (options.lint && options.analyze) {
        stage = FlowStage::kLint;
        obs::Span span("flow.analyze.bm", obs::kCatFlow,
                       &unit.timing.lint_ms);
        span.arg("controller", program.name);
        local_absorb("BM semantics of controller '" + program.name + "'",
                     analyze::analyze_bm(spec, options.lint_options));
        local_absorb("Petri net of controller '" + program.name + "'",
                     analyze::analyze_petri(petri::from_ch(*program.body),
                                            program.name,
                                            options.lint_options));
      }

      stage = FlowStage::kSynthesis;
      minimalist::SynthesizedController ctrl = [&] {
        obs::Span span("flow.synthesis", obs::kCatSynth,
                       &unit.timing.minimalist_ms);
        span.arg("controller", program.name);
        try {
          minimalist::CacheTier tier = minimalist::CacheTier::kMiss;
          auto synthesized =
              cache != nullptr
                  ? minimalist::synthesize_cached(spec, options.mode, *cache,
                                                  &unit.timing.cache_hit,
                                                  budget, &tier)
                  : minimalist::synthesize(spec, options.mode, budget);
          unit.timing.cache_disk = tier == minimalist::CacheTier::kDisk;
          span.arg("cache",
                   !unit.timing.cache_hit ? (cache != nullptr ? "miss" : "off")
                   : unit.timing.cache_disk ? "disk-hit"
                                            : "hit");
          return synthesized;
        } catch (const util::WorkBudgetExceeded& e) {
          throw FlowError(FlowStage::kSynthesis, "FL002", program.name,
                          e.what());
        }
      }();

      if (options.lint) {
        stage = FlowStage::kLint;
        obs::Span span("flow.lint.two_level", obs::kCatFlow,
                       &unit.timing.lint_ms);
        span.arg("controller", program.name);
        local_absorb("two-level logic of controller '" + program.name + "'",
                     lint::lint_two_level(ctrl, spec, options.lint_options));
      }

      stage = FlowStage::kTechmap;
      unit.prefix = "ctl" + std::to_string(i);
      {
        obs::Span span("flow.techmap", obs::kCatFlow,
                       &unit.timing.techmap_ms);
        span.arg("controller", program.name);
        unit.gates = techmap::map_controller(ctrl, lib, mopts, unit.prefix);
      }
      if (options.lint && options.analyze) {
        stage = FlowStage::kLint;
        obs::Span span("flow.analyze.netlist", obs::kCatFlow,
                       &unit.timing.lint_ms);
        span.arg("controller", program.name);
        local_absorb(
            "mapped netlist of controller '" + program.name + "'",
            analyze::analyze_mapped(*unit.gates, ctrl, unit.prefix,
                                    options.lint_options));
      }

      unit.info.name = program.name;
      unit.info.members = clustered[i].members;
      unit.info.states = spec.num_states;
      unit.info.products = ctrl.num_products();
      unit.info.literals = ctrl.num_literals();
      unit.info.area = unit.gates->total_area();
      unit.ctrl = std::move(ctrl);
    } catch (...) {
      if (options.strict) {
        unit.error = std::current_exception();
        return;
      }
      // Degrade: replace this controller with its per-component
      // baseline.  Only the fallback's own failure aborts the flow.
      try {
        try {
          throw;
        } catch (const FlowError& e) {
          run_fallback(unit, i, e.stage(), e.diagnostic().rule, e.what());
        } catch (const std::exception& e) {
          run_fallback(unit, i, stage, "FL005", e.what());
        }
      } catch (...) {
        unit.error = std::current_exception();
      }
    }
  };

  const int max_useful = units.empty() ? 1 : static_cast<int>(units.size());
  const int jobs = std::max(1, std::min(effective_jobs(options), max_useful));
  result.timings.jobs = jobs;
  obs::Registry::global().counter("flow.controllers").add(units.size());
  {
    obs::Span span("flow.controllers", obs::kCatFlow,
                   &result.timings.controllers_wall_ms);
    span.arg("count", static_cast<std::uint64_t>(units.size()));
    span.arg("jobs", static_cast<std::uint64_t>(jobs));
    if (jobs <= 1 || units.size() <= 1) {
      for (std::size_t i = 0; i < units.size(); ++i) run_unit(i);
    } else {
      // Propagate the ambient trace context onto the pool workers: a
      // controller synthesized for one service request must tag its
      // spans with that request's trace id even though it runs on a
      // different thread.  Captured by value here, reinstalled per task.
      const std::string trace_id = obs::current_trace_id();
      util::ThreadPool pool(jobs);
      util::parallel_for_index(pool, units.size(),
                               [&run_unit, &trace_id](std::size_t i) {
                                 obs::TraceContextScope scope(trace_id);
                                 run_unit(i);
                               });
    }
  }

  // Deterministic in-order merge.  Errors surface exactly as in the
  // serial flow: the lowest-index failing controller wins.
  for (std::size_t i = 0; i < units.size(); ++i) {
    Unit& unit = units[i];
    if (unit.error) std::rethrow_exception(unit.error);
    result.lint_report.merge(unit.lint_findings);
    result.timings.bm_compile_ms += unit.timing.bm_compile_ms;
    result.timings.minimalist_ms += unit.timing.minimalist_ms;
    result.timings.techmap_ms += unit.timing.techmap_ms;
    result.timings.lint_ms += unit.timing.lint_ms;
    if (cache != nullptr) {
      if (unit.timing.cache_hit) {
        ++result.timings.cache_hits;
        if (unit.timing.cache_disk) ++result.timings.cache_disk_hits;
      } else {
        ++result.timings.cache_misses;
      }
    }
    result.timings.controllers.push_back(std::move(unit.timing));
    if (unit.failure) {
      // Degraded controller: merge its per-component fallback pieces and
      // surface the failure as a warning diagnostic plus a structured
      // ControllerFailure record.
      result.lint_report.add("FL005", unit.failure->controller,
                             "[" +
                                 std::string(flow_stage_name(
                                     unit.failure->stage)) +
                                 "/" + unit.failure->rule + "] " +
                                 unit.failure->reason + "; replaced by " +
                                 unit.failure->fallback);
      for (FallbackPiece& piece : unit.fallback) {
        result.info.push_back(std::move(piece.info));
        if (piece.gates) result.gates.merge(*piece.gates);
        if (piece.ctrl) {
          result.controllers.push_back(std::move(*piece.ctrl));
          result.prefixes.push_back(std::move(piece.prefix));
        }
      }
      result.failures.push_back(std::move(*unit.failure));
      continue;
    }
    result.info.push_back(std::move(unit.info));
    result.gates.merge(*unit.gates);
    result.controllers.push_back(std::move(*unit.ctrl));
    result.prefixes.push_back(std::move(unit.prefix));
  }

  if (options.lint) {
    obs::Span span("flow.lint.gates", obs::kCatFlow,
                   &result.timings.lint_ms);
    absorb("merged control netlist",
           lint::lint_gates(result.gates, options.lint_options));
  }
  result.area = result.gates.total_area();
  total_span.finish();
  return result;
}

std::string StageTimings::to_text() const {
  std::string s = "stage timings (ms): to_ch " + fmt_ms(to_ch_ms) +
                  ", cluster " + fmt_ms(cluster_ms) + ", bm_compile " +
                  fmt_ms(bm_compile_ms) + ", minimalist " +
                  fmt_ms(minimalist_ms) + ", techmap " + fmt_ms(techmap_ms) +
                  ", lint " + fmt_ms(lint_ms) + "\n";
  s += "controllers wall " + fmt_ms(controllers_wall_ms) + " ms on " +
       std::to_string(jobs) + " job(s), total " + fmt_ms(total_ms) +
       " ms; cache " + std::to_string(cache_hits) + " hit(s) (" +
       std::to_string(cache_disk_hits) + " from disk), " +
       std::to_string(cache_misses) + " miss(es)\n";
  if (incr_units_reused + incr_units_rebuilt > 0) {
    s += "incremental: " + std::to_string(incr_units_rebuilt) +
         " unit(s) rebuilt, " + std::to_string(incr_units_reused) +
         " reused; controllers " +
         std::to_string(incr_controllers_rebuilt) + " rebuilt, " +
         std::to_string(incr_controllers_reused) + " reused\n";
  }
  for (const Controller& c : controllers) {
    s += "  " + c.name + ": bm " + fmt_ms(c.bm_compile_ms) + ", synth " +
         fmt_ms(c.minimalist_ms) + ", map " + fmt_ms(c.techmap_ms) +
         ", lint " + fmt_ms(c.lint_ms) +
         (c.cache_hit ? (c.cache_disk ? " (disk cache hit)" : " (cache hit)")
                      : "") +
         "\n";
  }
  return s;
}

std::string StageTimings::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", obs::kSchemaVersion);
  w.member("to_ch_ms", to_ch_ms);
  w.member("cluster_ms", cluster_ms);
  w.member("bm_compile_ms", bm_compile_ms);
  w.member("minimalist_ms", minimalist_ms);
  w.member("techmap_ms", techmap_ms);
  w.member("lint_ms", lint_ms);
  w.member("controllers_wall_ms", controllers_wall_ms);
  w.member("total_ms", total_ms);
  w.member("jobs", jobs);
  w.member("cache_hits", cache_hits);
  w.member("cache_misses", cache_misses);
  w.member("cache_disk_hits", cache_disk_hits);
  w.member("incr_units_reused", incr_units_reused);
  w.member("incr_units_rebuilt", incr_units_rebuilt);
  w.member("incr_controllers_reused", incr_controllers_reused);
  w.member("incr_controllers_rebuilt", incr_controllers_rebuilt);
  w.key("controllers").begin_array();
  for (const Controller& c : controllers) {
    w.begin_object()
        .member("name", c.name)
        .member("bm_compile_ms", c.bm_compile_ms)
        .member("minimalist_ms", c.minimalist_ms)
        .member("techmap_ms", c.techmap_ms)
        .member("lint_ms", c.lint_ms)
        .member("cache_hit", c.cache_hit)
        .member("cache_disk", c.cache_disk)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string report(const ControlResult& result, bool with_timings) {
  std::string s;
  for (const ControllerInfo& info : result.info) {
    s += info.name + ": " + std::to_string(info.states) + " states, " +
         std::to_string(info.products) + " products, " +
         std::to_string(info.literals) + " literals, area " +
         std::to_string(info.area) + "\n";
  }
  s += "total control area: " + std::to_string(result.area) + "\n";
  for (const ControllerFailure& f : result.failures) {
    s += "degraded " + f.controller + " [" +
         std::string(flow_stage_name(f.stage)) + "/" + f.rule +
         "]: " + f.reason + " -> " + f.fallback + "\n";
  }
  if (with_timings) s += result.timings.to_text();
  return s;
}

}  // namespace bb::flow
