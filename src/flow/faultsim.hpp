// Gate-level fault-injection campaign over the Section 6 evaluation
// designs (the robustness harness around the flow).
//
// For each design the campaign
//   1. synthesizes and simulates a healthy baseline run with trace
//      monitors attached: one monitor per clustered controller, watching
//      the controller's interface wires and recording every signal edge
//      as a "<wire>+/-" label;
//   2. derives each controller's specified trace language from its
//      compiled Burst-Mode machine (trace::bm_spec_lts -> DFA) and
//      calibrates each monitor against the healthy trace: full
//      conformance earns an unlimited check horizon, a late divergence
//      (hazard pulses under the fast testbench environment) bounds the
//      horizon to the conforming prefix, and an immediate mismatch drops
//      the monitor;
//   3. injects a deterministic fault list (targeted + PRNG-sampled
//      stuck-ats, SEU bit flips on state-holding outputs, one whole-
//      netlist delay perturbation), one fault plan per fresh simulation;
//   4. classifies every run: a fault is *detected* when the run
//      deadlocks, hangs, produces wrong outputs, or a trace monitor
//      rejects the observed behaviour (trace::reject_prefix yields a
//      minimal counterexample); otherwise it was *silently tolerated*.
//
// Everything is deterministic for a given seed: the fault list, the
// simulations, and the JSON artifact (which carries no wall-clock data),
// so two same-seed campaign runs are byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/flow/benchmarks.hpp"

namespace bb::flow {

/// Schema of CampaignResult::to_json.  Version 2: util::SplitMix64::below
/// switched from modulo reduction to unbiased rejection sampling, so the
/// PRNG-sampled fault list for a given seed differs from version 1.
inline constexpr int kFaultCampaignSchemaVersion = 2;

/// Verdict for one injected fault.
enum class FaultOutcome {
  kTolerated,            ///< run completed correctly; no monitor objected
  kTraceCounterexample,  ///< a trace monitor rejected the observed trace
  kWrongOutput,          ///< protocol completed but values were wrong (SDC)
  kDeadlock,             ///< simulation went quiescent before completion
  kHang,                 ///< timeout or event budget (livelock/oscillation)
  kCrash,                ///< the flow or a behavioural model threw
};

/// "tolerated" / "trace-counterexample" / "wrong-output" / "deadlock" /
/// "hang" / "crash".
std::string_view fault_outcome_name(FaultOutcome outcome);

/// Every outcome except kTolerated counts as detected.
bool fault_detected(FaultOutcome outcome);

/// One injected fault and its verdict.
struct FaultRun {
  std::string fault;  ///< stable description (sim::Fault::describe)
  std::string kind;   ///< "stuck-at-0/1", "bit-flip", "delay-perturbation"
  FaultOutcome outcome = FaultOutcome::kTolerated;
  bool detected = false;
  std::string detail;   ///< benchmark detail line or crash message
  std::string monitor;  ///< controller whose monitor rejected, if any
  /// Minimal rejected trace prefix (trace::reject_prefix), the
  /// counterexample against the controller's specification language.
  std::vector<std::string> counterexample;
};

struct DesignCampaign {
  std::string design;
  bool baseline_ok = false;  ///< the fault-free run passed its benchmark
  int monitors = 0;  ///< trace monitors attached and baseline-validated
  int injected = 0;
  int detected = 0;
  int tolerated = 0;
  int silent_corruption = 0;  ///< kWrongOutput runs: completed-but-wrong
  int trace_detected = 0;     ///< runs the trace verifier caught
  std::vector<FaultRun> runs;
};

struct CampaignOptions {
  /// PRNG seed for fault sampling and delay jitter.  0 = auto: the
  /// BB_SEED environment variable when set and positive, otherwise 1.
  std::uint64_t seed = 0;
  /// PRNG-sampled stuck-at faults per design (polarity alternates), on
  /// top of one targeted stuck-at-1 per validated trace monitor.
  int random_stuck_at = 4;
  /// SEU bit flips per design, on state-holding (C-element) outputs when
  /// the design has any, otherwise on sampled gate outputs.
  int bit_flips = 3;
  /// Whole-netlist delay-perturbation runs per design.
  int delay_runs = 1;
  double delay_scale = 1.5;
  double delay_jitter_ns = 0.3;
  /// Simulation limits for faulted runs; 0 = the benchmark defaults.
  double max_sim_ns = 0.0;
  std::uint64_t max_events = 0;
};

/// The seed a given options.seed resolves to (explicit wins, then the
/// BB_SEED environment variable, then 1).
std::uint64_t effective_seed(const CampaignOptions& options);

struct CampaignResult {
  std::uint64_t seed = 0;
  std::vector<DesignCampaign> designs;

  int total_injected() const;
  int total_detected() const;
  int total_tolerated() const;
  int total_silent_corruption() const;

  /// Human-readable per-design summary.
  std::string to_text() const;
  /// Deterministic machine-readable artifact: same seed, same bytes (no
  /// wall-clock content).
  std::string to_json() const;
};

/// Runs the campaign for one design.
DesignCampaign run_design_campaign(const std::string& design,
                                   const FlowOptions& options,
                                   const CampaignOptions& campaign);

/// Runs the campaign for several designs (e.g. {"systolic", "wagging",
/// "stack", "ssem"}).
CampaignResult run_fault_campaign(const std::vector<std::string>& designs,
                                  const FlowOptions& options,
                                  const CampaignOptions& campaign);

}  // namespace bb::flow
