#include "src/flow/analyze.hpp"

#include <exception>

#include "src/analyze/analyze.hpp"
#include "src/bm/compile.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/petri/from_ch.hpp"
#include "src/techmap/cells.hpp"
#include "src/techmap/templates.hpp"

namespace bb::flow {

AnalyzeResult analyze_control(const hsnet::Netlist& netlist,
                              const FlowOptions& options) {
  AnalyzeResult result;
  const lint::LintOptions& lopts = options.lint_options;
  result.report = lint::make_report(lopts);
  result.report.merge(lint::lint_handshake(netlist, lopts));

  const auto& lib = techmap::CellLibrary::ams035();
  netlist::GateNetlist gates("control");

  std::vector<ch::Program> programs;
  for (const int id : netlist.control_ids()) {
    const auto& component = netlist.component(id);
    if (!options.cluster && options.templates &&
        techmap::has_template(component.kind)) {
      gates.merge(*techmap::template_circuit(component, lib));
      continue;
    }
    programs.push_back(hsnet::to_ch(component));
  }
  opt::ClusterOptions copts;
  copts.max_states = options.max_states;
  const auto clustered = options.cluster
                             ? opt::optimize(std::move(programs), copts,
                                             nullptr)
                             : opt::wrap(std::move(programs));

  techmap::MapOptions mopts;
  mopts.level_separated = options.level_separated;
  for (std::size_t i = 0; i < clustered.size(); ++i) {
    const auto& program = clustered[i].program;
    const bm::Spec spec = bm::compile(*program.body, program.name);
    result.report.merge(lint::lint_bm(spec, lopts));
    if (options.analyze) {
      result.report.merge(analyze::analyze_bm(spec, lopts));
      result.report.merge(analyze::analyze_petri(
          petri::from_ch(*program.body), program.name, lopts));
    }
    try {
      const auto ctrl = minimalist::synthesize(spec, options.mode);
      result.report.merge(lint::lint_two_level(ctrl, spec, lopts));
      const std::string prefix = "ctl" + std::to_string(i);
      auto mapped = techmap::map_controller(ctrl, lib, mopts, prefix);
      if (options.analyze) {
        result.report.merge(
            analyze::analyze_mapped(mapped, ctrl, prefix, lopts));
      }
      gates.merge(mapped);
    } catch (const std::exception& e) {
      // An invalid machine was already reported by the BM passes; note
      // the downstream consequence and keep analyzing the others.
      result.report.add("FL005", program.name,
                        std::string("not synthesizable, so its two-level "
                                    "and gate-level logic was not "
                                    "analyzed: ") + e.what());
      result.skipped.push_back(program.name);
    }
  }
  result.report.merge(lint::lint_gates(gates, lopts));
  return result;
}

}  // namespace bb::flow
