#include "src/flow/benchmarks.hpp"

#include <stdexcept>
#include <string>

#include "src/balsa/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/system.hpp"
#include "src/flow/testbench.hpp"
#include "src/obs/trace.hpp"

namespace bb::flow {

namespace {

constexpr double kMaxSimNs = 1e7;
constexpr std::uint64_t kMaxEvents = 20'000'000;

/// Failure-detail suffix naming why the simulation stopped, e.g.
/// " [run: event budget exhausted]"; empty on quiescence.
std::string why(sim::RunStatus status) {
  if (status == sim::RunStatus::kQuiescent) return "";
  return " [run: " + std::string(sim::run_status_name(status)) + "]";
}

/// Applies the hooks and runs the simulation with the hook-overridden (or
/// default) limits.
sim::RunStatus launch(System& system, const BenchmarkHooks* hooks) {
  if (hooks != nullptr && hooks->before_start) hooks->before_start(system);
  const double max_ns =
      hooks != nullptr && hooks->max_sim_ns > 0 ? hooks->max_sim_ns
                                                : kMaxSimNs;
  const std::uint64_t max_events =
      hooks != nullptr && hooks->max_events > 0 ? hooks->max_events
                                                : kMaxEvents;
  return system.start().run_status(max_ns, max_events);
}

void fill_common(BenchmarkResult& r, const System& system,
                 const hsnet::Netlist& net) {
  r.control_area = system.control_area();
  r.datapath_area = system.datapath_area();
  r.total_area = system.total_area();
  r.controllers = static_cast<int>(system.control().controllers.size());
  r.components = static_cast<int>(net.components().size());
}

BenchmarkResult bench_systolic(const FlowOptions& options,
                               const BenchmarkHooks* hooks) {
  BenchmarkResult r;
  r.design = "systolic";
  const auto net =
      balsa::compile_source(designs::systolic_counter().source);
  System system(net, options);

  ActivateDriver activate(system, "activate");
  SyncServer count(system, "count");
  SyncServer carry(system, "carry");
  // Steady state: measure the second full 8-handshake cycle (carry 2->3).
  count.enabled = [&] { return carry.completed() < 3; };
  double t2 = 0.0, t3 = 0.0;
  carry.on_cycle = [&](int k, double t) {
    if (k == 2) t2 = t;
    if (k == 3) t3 = t;
  };

  const auto status = launch(system, hooks);
  r.status = status;
  fill_common(r, system, net);
  r.completed = carry.completed() >= 3 && count.completed() >= 24;
  if (!r.completed) {
    r.detail = "cycle did not complete (carry=" +
               std::to_string(carry.completed()) + ")" + why(status);
    return r;
  }
  r.ok = true;
  r.time_ns = t3 - t2;
  r.detail = "8-handshake cycle, steady state";
  return r;
}

BenchmarkResult bench_wagging(const FlowOptions& options,
                              const BenchmarkHooks* hooks) {
  BenchmarkResult r;
  r.design = "wagging";
  const auto net =
      balsa::compile_source(designs::wagging_register().source);
  System system(net, options);

  ActivateDriver activate(system, "activate");
  std::uint64_t next = 0x10;
  PushServer out(system, "out");
  PullServer in(system, "in", [&] { return ++next; });
  in.enabled = [&] { return out.consumed() < 2; };
  bool seen_first = false;
  double first_out = 0.0;
  out.on_data = [&](std::uint64_t, double t) {
    if (!seen_first) {
      seen_first = true;
      first_out = t;
    }
  };

  const auto status = launch(system, hooks);
  r.status = status;
  fill_common(r, system, net);
  r.completed = out.consumed() >= 1 && seen_first;
  if (!r.completed) {
    r.detail = "no output word produced" + why(status);
    return r;
  }
  if (out.values()[0] != 0x11) {
    r.detail = "wrong first word: " + std::to_string(out.values()[0]);
    return r;
  }
  r.ok = true;
  // Forward latency: activation to the first word emerging.
  r.time_ns = first_out - kActivateStartNs;
  r.detail = "forward latency of the first word";
  return r;
}

BenchmarkResult bench_stack(const FlowOptions& options,
                            const BenchmarkHooks* hooks) {
  BenchmarkResult r;
  r.design = "stack";
  const auto net = balsa::compile_source(designs::stack().source);
  System system(net, options);

  ActivateDriver activate(system, "activate");
  const std::vector<std::uint64_t> cmds{1, 1, 1, 0, 0, 0};
  std::size_t cmd_index = 0;
  PullServer cmd(system, "cmd", [&] {
    return cmds[std::min(cmd_index++, cmds.size() - 1)];
  });
  cmd.enabled = [&] { return cmd_index < cmds.size(); };
  const std::vector<std::uint64_t> words{0x11, 0x22, 0x33};
  std::size_t word_index = 0;
  PullServer push(system, "push", [&] {
    return words[std::min(word_index++, words.size() - 1)];
  });
  PushServer pop(system, "pop");

  const auto status = launch(system, hooks);
  r.status = status;
  fill_common(r, system, net);
  r.completed = pop.consumed() >= 3;
  if (!r.completed) {
    r.detail = "pops incomplete: " + std::to_string(pop.consumed()) +
               why(status);
    return r;
  }
  if (pop.values() != std::vector<std::uint64_t>({0x33, 0x22, 0x11})) {
    r.detail = "LIFO order violated";
    return r;
  }
  r.ok = true;
  r.time_ns = pop.last_time() - kActivateStartNs;
  r.detail = "3 pushes + 3 pops, LIFO order checked";
  return r;
}

BenchmarkResult bench_ssem(const FlowOptions& options,
                           const BenchmarkHooks* hooks) {
  BenchmarkResult r;
  r.design = "ssem";
  const auto net = balsa::compile_source(designs::ssem().source);
  System system(net, options);

  ActivateDriver activate(system, "activate");
  SsemMemory memory(system, designs::ssem_benchmark_program());

  const auto status = launch(system, hooks);
  r.status = status;
  fill_common(r, system, net);
  r.completed = activate.done();
  if (!r.completed) {
    r.detail = "program did not reach STP" + why(status);
    return r;
  }
  for (const auto& expect : designs::ssem_expected_results()) {
    if (memory.contents().at(expect.address) != expect.value) {
      r.detail = "mem[" + std::to_string(expect.address) + "] = " +
                 std::to_string(memory.contents().at(expect.address)) +
                 ", expected " + std::to_string(expect.value);
      return r;
    }
  }
  r.ok = true;
  r.time_ns = activate.done_time() - kActivateStartNs;
  r.detail = "stores 0..4 at 20..24; " + std::to_string(memory.reads()) +
             " reads, " + std::to_string(memory.writes()) + " writes";
  return r;
}

}  // namespace

BenchmarkResult run_benchmark(const std::string& design,
                              const FlowOptions& options,
                              const BenchmarkHooks* hooks) {
  obs::Span span("flow.benchmark", obs::kCatFlow);
  span.arg("design", design);
  if (design == "systolic") return bench_systolic(options, hooks);
  if (design == "wagging") return bench_wagging(options, hooks);
  if (design == "stack") return bench_stack(options, hooks);
  if (design == "ssem") return bench_ssem(options, hooks);
  throw std::invalid_argument("unknown design '" + design + "'");
}

Table3Row run_table3_row(const std::string& design) {
  Table3Row row;
  row.title = designs::design(design).title;
  row.unoptimized = run_benchmark(design, FlowOptions::unoptimized());
  row.optimized = run_benchmark(design, FlowOptions::optimized());
  if (row.unoptimized.ok && row.optimized.ok &&
      row.unoptimized.time_ns > 0) {
    row.speed_improvement_pct = 100.0 *
        (row.unoptimized.time_ns - row.optimized.time_ns) /
        row.unoptimized.time_ns;
    row.area_overhead_pct = 100.0 *
        (row.optimized.total_area - row.unoptimized.total_area) /
        row.unoptimized.total_area;
  }
  return row;
}

}  // namespace bb::flow
