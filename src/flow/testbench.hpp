// Testbench building blocks: four-phase drivers and servers for the
// external channels of a simulated system, plus the SSEM memory model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/flow/system.hpp"

namespace bb::flow {

/// When the activation request rises in every benchmark testbench;
/// latency measurements are taken relative to this instant.
inline constexpr double kActivateStartNs = 0.1;

/// Raises the request of a sync channel and keeps it high (procedure
/// activation; loop-based procedures never acknowledge).
class ActivateDriver : public sim::Process {
 public:
  ActivateDriver(System& system, const std::string& channel,
                 double at_ns = kActivateStartNs);
  void start(sim::Simulator& sim) override;
  void on_change(sim::Simulator& sim, int net) override;

  /// True once the activation handshake completed (procedure finished).
  bool done() const { return done_; }
  double done_time() const { return done_time_; }

 private:
  sim::ChannelNets nets_;
  double at_ns_;
  bool done_ = false;
  double done_time_ = 0.0;
};

/// Passive sync server: acknowledges every handshake the circuit starts.
class SyncServer : public sim::Process {
 public:
  SyncServer(System& system, const std::string& channel,
             double delay_ns = 0.8);
  void on_change(sim::Simulator& sim, int net) override;

  int completed() const { return completed_; }
  /// Called with (cycle index, time) after each completed handshake.
  std::function<void(int, double)> on_cycle;
  /// When false, requests stall (ends open-loop benchmarks cleanly).
  std::function<bool()> enabled;

 private:
  sim::ChannelNets nets_;
  double delay_ns_;
  int completed_ = 0;
};

/// Pull server on an input port: the circuit raises <ch>_r; the server
/// publishes provider() into the channel and acknowledges.
class PullServer : public sim::Process {
 public:
  PullServer(System& system, const std::string& channel,
             std::function<std::uint64_t()> provider, double delay_ns = 0.8);
  void on_change(sim::Simulator& sim, int net) override;

  int served() const { return served_; }
  /// When false, requests stall (used to end open-loop benchmarks).
  std::function<bool()> enabled;

 private:
  std::string channel_;
  sim::ChannelNets nets_;
  std::function<std::uint64_t()> provider_;
  double delay_ns_;
  int served_ = 0;
  sim::DatapathContext* data_ = nullptr;
};

/// Push server on an output port: accepts values the circuit pushes.
class PushServer : public sim::Process {
 public:
  PushServer(System& system, const std::string& channel,
             double delay_ns = 0.8);
  void on_change(sim::Simulator& sim, int net) override;

  int consumed() const { return consumed_; }
  const std::vector<std::uint64_t>& values() const { return values_; }
  double last_time() const { return last_time_; }
  std::function<void(std::uint64_t, double)> on_data;

 private:
  std::string channel_;
  sim::ChannelNets nets_;
  double delay_ns_;
  int consumed_ = 0;
  std::vector<std::uint64_t> values_;
  double last_time_ = 0.0;
  sim::DatapathContext* data_ = nullptr;
};

/// The SSEM memory: 32 words behind three ports.
///   maddr  (push): latches the address;
///   mdata  (pull): returns mem[addr];
///   mwdata (push): writes mem[addr].
class SsemMemory : public sim::Process {
 public:
  SsemMemory(System& system, std::vector<std::uint32_t> image,
             double read_ns = 2.0, double write_ns = 2.0);
  void on_change(sim::Simulator& sim, int net) override;

  const std::vector<std::uint32_t>& contents() const { return mem_; }
  int reads() const { return reads_; }
  int writes() const { return writes_; }

 private:
  sim::ChannelNets maddr_, mdata_, mwdata_;
  std::vector<std::uint32_t> mem_;
  std::uint32_t addr_ = 0;
  double read_ns_, write_ns_;
  int reads_ = 0, writes_ = 0;
  System* system_;
};

}  // namespace bb::flow
