// The clustering optimizations of Section 4:
//   T1 - Activation Channel Removal (Section 4.1, procedure T1_clustering)
//   T2 - Call Distribution          (Section 4.2, procedure T2_clustering)
//
// Both receive a collection of CH programs (one per control handshake
// component) and return the clustered collection.  A merge is committed
// only when the composed behaviour is still Burst-Mode synthesizable:
// Table 1 legality, a valid compiled BM machine, and (optionally) a state
// budget.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/ch/ast.hpp"

namespace bb::opt {

/// A (possibly clustered) controller.
struct ClusteredProgram {
  ch::Program program;
  /// Display names of the original components merged into this program.
  std::vector<std::string> members;
};

struct ClusterOptions {
  /// Reject merges whose BM machine exceeds this many states (0 = no cap).
  int max_states = 0;
};

struct ClusterStats {
  int t1_applied = 0;
  int t1_rejected = 0;
  int calls_split = 0;
  int calls_distributed = 0;
  int calls_restored = 0;
  std::vector<std::string> log;
};

/// Wraps plain CH programs for the clustering pipeline.
std::vector<ClusteredProgram> wrap(std::vector<ch::Program> programs);

/// True if the expression compiles to a valid Burst-Mode machine within
/// the state budget.
bool bm_synthesizable(const ch::Expr& expr, int max_states = 0);

/// Applies Activation Channel Removal to one channel: `x` is the
/// activating program (uses `channel` as an active p-to-p leaf exactly
/// once), `y` the activated one (its top-level matches the activation
/// pattern).  Returns the merged program, or nullopt when the pattern or
/// the Burst-Mode-aware restrictions reject the merge.
std::optional<ch::Program> activation_channel_removal(
    const ch::Program& x, const ch::Program& y, const std::string& channel,
    const ClusterOptions& options = {});

/// Procedure T1_clustering: repeatedly merges across internal
/// point-to-point channels while the result stays synthesizable.
std::vector<ClusteredProgram> t1_clustering(std::vector<ClusteredProgram> n,
                                            const ClusterOptions& options = {},
                                            ClusterStats* stats = nullptr);

/// Procedure T2_clustering: splits call components into per-client
/// fragments, re-runs T1, and restores any call whose fragments did not
/// all land in the same final controller.
std::vector<ClusteredProgram> t2_clustering(std::vector<ClusteredProgram> n,
                                            const ClusterOptions& options = {},
                                            ClusterStats* stats = nullptr);

/// Full optimization pipeline (T1 then call distribution), from plain
/// programs.
std::vector<ClusteredProgram> optimize(std::vector<ch::Program> programs,
                                       const ClusterOptions& options = {},
                                       ClusterStats* stats = nullptr);

}  // namespace bb::opt
