#include "src/opt/cluster.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "src/bm/compile.hpp"
#include "src/bm/validate.hpp"
#include "src/opt/ch_util.hpp"

namespace bb::opt {

namespace {

using ch::Activity;
using ch::ExprKind;

/// Where a channel is used across the program collection.
struct ChannelEndpoints {
  int active_program = -1;
  int passive_program = -1;
  int active_uses = 0;
  int passive_uses = 0;
};

std::map<std::string, ChannelEndpoints> channel_map(
    const std::vector<ClusteredProgram>& programs) {
  std::map<std::string, ChannelEndpoints> out;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    for (const std::string& name : channel_names(*programs[i].program.body)) {
      for (const ChannelUse& use : uses_of(*programs[i].program.body, name)) {
        ChannelEndpoints& ep = out[name];
        if (use.activity == Activity::kActive) {
          ep.active_program = static_cast<int>(i);
          ++ep.active_uses;
        } else if (use.activity == Activity::kPassive) {
          ep.passive_program = static_cast<int>(i);
          ++ep.passive_uses;
        }
      }
    }
  }
  return out;
}

void log_line(ClusterStats* stats, std::string line) {
  if (stats != nullptr) stats->log.push_back(std::move(line));
}

/// The call-component pattern: (rep (mutex-nest of
/// (enc-early (p-to-p passive b_i) (p-to-p active out)))), all branches
/// sharing the same active output channel.
struct CallPattern {
  std::vector<std::string> clients;  // b_1 .. b_n
  std::string server;                // out
};

std::optional<CallPattern> match_call(const ch::Expr& e) {
  const ch::Expr* node = &e;
  if (node->kind != ExprKind::kRep) return std::nullopt;
  node = node->args.at(0).get();

  // Collect mutex leaves.
  std::vector<const ch::Expr*> leaves;
  std::vector<const ch::Expr*> work{node};
  while (!work.empty()) {
    const ch::Expr* n = work.back();
    work.pop_back();
    if (n->kind == ExprKind::kMutex) {
      work.push_back(n->args.at(1).get());
      work.push_back(n->args.at(0).get());
    } else {
      leaves.push_back(n);
    }
  }
  if (leaves.size() < 2) return std::nullopt;

  CallPattern p;
  for (const ch::Expr* leaf : leaves) {
    if (leaf->kind != ExprKind::kEncEarly) return std::nullopt;
    const ch::Expr& client = *leaf->args.at(0);
    const ch::Expr& server = *leaf->args.at(1);
    if (client.kind != ExprKind::kPToP ||
        client.declared_activity != Activity::kPassive ||
        server.kind != ExprKind::kPToP ||
        server.declared_activity != Activity::kActive) {
      return std::nullopt;
    }
    if (p.server.empty()) {
      p.server = server.channel;
    } else if (p.server != server.channel) {
      return std::nullopt;
    }
    p.clients.push_back(client.channel);
  }
  return p;
}

/// Display names of the fragments a call was split into.
std::vector<std::string> fragment_tags(const std::string& call_name,
                                       std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(call_name + ".frag" + std::to_string(i + 1));
  }
  return out;
}

}  // namespace

std::vector<ClusteredProgram> wrap(std::vector<ch::Program> programs) {
  std::vector<ClusteredProgram> out;
  out.reserve(programs.size());
  for (ch::Program& p : programs) {
    ClusteredProgram cp;
    cp.members = {p.name};
    cp.program = std::move(p);
    out.push_back(std::move(cp));
  }
  return out;
}

bool bm_synthesizable(const ch::Expr& expr, int max_states) {
  try {
    const bm::Spec spec = bm::compile(expr);
    if (!bm::validate(spec).ok) return false;
    if (max_states > 0 && spec.num_states > max_states) return false;
    // Enclosure substitution can push an acknowledgment arbitrarily far
    // from its request; a machine that lets an input edge dangle
    // unconsumed breaks fundamental mode under a speed-independent
    // environment (the fuzzer catches this as a doubled handshake at
    // gate level).  Such merges are rejected, not repaired.
    if (!bm::adjacency_violations(spec).empty()) return false;
    return true;
  } catch (const ch::BmAwareError&) {
    return false;
  } catch (const std::logic_error&) {
    return false;
  }
}

std::optional<ch::Program> activation_channel_removal(
    const ch::Program& x, const ch::Program& y, const std::string& channel,
    const ClusterOptions& options) {
  // Step 1 (Section 4.1): hide the activation channel in the activated
  // component by replacing it with a void channel, keeping the operator
  // node so the body's phase structure survives inlining.
  const auto pattern = match_activation(*y.body, channel);
  if (!pattern) return std::nullopt;

  // The activated component must not use the channel anywhere else.
  if (uses_of(*y.body, channel).size() != 1) return std::nullopt;

  ch::ExprPtr fragment = pattern->enc->clone();
  fragment->args[0] = ch::void_channel();

  // Step 2: inline the body into the activating component in place of the
  // (p-to-p active <channel>) leaf, which must appear exactly once.
  ch::Program merged(x.name + "+" + y.name, x.body->clone());
  const int replaced = replace_channel(*merged.body, channel, *fragment);
  if (replaced != 1) return std::nullopt;

  // The merge survives only if the clustered component is still
  // Burst-Mode synthesizable (Table 1 re-check plus machine validation).
  if (!bm_synthesizable(*merged.body, options.max_states)) {
    return std::nullopt;
  }
  return merged;
}

std::vector<ClusteredProgram> t1_clustering(std::vector<ClusteredProgram> n,
                                            const ClusterOptions& options,
                                            ClusterStats* stats) {
  bool changed = true;
  std::set<std::string> rejected;  // channels that failed; retry only after
                                   // the netlist changes
  while (changed) {
    changed = false;
    const auto channels = channel_map(n);
    for (const auto& [channel, ep] : channels) {
      if (ep.active_program < 0 || ep.passive_program < 0) continue;
      if (ep.active_program == ep.passive_program) continue;
      if (ep.active_uses != 1 || ep.passive_uses != 1) continue;
      if (rejected.count(channel)) continue;

      const ClusteredProgram& x = n[ep.active_program];
      const ClusteredProgram& y = n[ep.passive_program];
      auto merged =
          activation_channel_removal(x.program, y.program, channel, options);
      if (!merged) {
        if (stats != nullptr) ++stats->t1_rejected;
        log_line(stats, "T1 reject  " + channel + " (" + x.program.name +
                            " / " + y.program.name + ")");
        rejected.insert(channel);
        continue;
      }
      if (stats != nullptr) ++stats->t1_applied;
      log_line(stats, "T1 merge   " + channel + ": " + x.program.name +
                          " <- " + y.program.name);

      ClusteredProgram result;
      result.program = std::move(*merged);
      result.members = x.members;
      result.members.insert(result.members.end(), y.members.begin(),
                            y.members.end());

      // Replace x, erase y.
      const int xi = ep.active_program;
      const int yi = ep.passive_program;
      n[xi] = std::move(result);
      n.erase(n.begin() + yi);
      rejected.clear();  // netlist changed; failed channels may now succeed
      changed = true;
      break;  // channel indices stale; recompute
    }
  }
  return n;
}

std::vector<ClusteredProgram> t2_clustering(std::vector<ClusteredProgram> n,
                                            const ClusterOptions& options,
                                            ClusterStats* stats) {
  // First take every merge that needs no splitting.
  n = t1_clustering(std::move(n), options, stats);

  // Then distribute call components one at a time, transactionally: split
  // the call into per-client fragments, re-run T1, and commit only if all
  // fragments were inlined into the same final controller (Section 4.2's
  // restore step, implemented as rollback).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < n.size(); ++i) {
      const auto call = match_call(*n[i].program.body);
      if (!call) continue;

      const std::string call_name = n[i].program.name;
      const auto tags = fragment_tags(call_name, call->clients.size());
      if (stats != nullptr) ++stats->calls_split;
      log_line(stats, "T2 split   " + call_name + " into " +
                          std::to_string(tags.size()) + " fragments");

      // Build the trial netlist: copy everything, replace the call by its
      // fragments.
      std::vector<ClusteredProgram> trial;
      for (std::size_t j = 0; j < n.size(); ++j) {
        if (j == i) continue;
        ClusteredProgram copy;
        copy.program = n[j].program.clone();
        copy.members = n[j].members;
        trial.push_back(std::move(copy));
      }
      for (std::size_t k = 0; k < call->clients.size(); ++k) {
        ClusteredProgram frag;
        frag.program = ch::Program(
            tags[k],
            ch::rep(ch::enc_early(
                ch::ptop(Activity::kPassive, call->clients[k]),
                ch::ptop(Activity::kActive, call->server))));
        frag.members = {tags[k]};
        trial.push_back(std::move(frag));
      }

      trial = t1_clustering(std::move(trial), options, stats);

      // All fragments must have landed in one (clustered) controller.
      int host = -1;
      bool ok = true;
      for (const std::string& tag : tags) {
        int where = -1;
        for (std::size_t j = 0; j < trial.size(); ++j) {
          if (std::find(trial[j].members.begin(), trial[j].members.end(),
                        tag) != trial[j].members.end()) {
            where = static_cast<int>(j);
            break;
          }
        }
        if (where < 0 || trial[where].members.size() == 1 ||
            (host >= 0 && where != host)) {
          ok = false;
          break;
        }
        host = where;
      }

      if (ok) {
        if (stats != nullptr) ++stats->calls_distributed;
        log_line(stats, "T2 commit  " + call_name);
        n = std::move(trial);
        progress = true;
        break;  // indices stale
      }
      if (stats != nullptr) ++stats->calls_restored;
      log_line(stats, "T2 restore " + call_name +
                          " (fragments not clustered together)");
    }
  }
  return n;
}

std::vector<ClusteredProgram> optimize(std::vector<ch::Program> programs,
                                       const ClusterOptions& options,
                                       ClusterStats* stats) {
  return t2_clustering(wrap(std::move(programs)), options, stats);
}

}  // namespace bb::opt
