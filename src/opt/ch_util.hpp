// CH manipulation utilities used by the clustering optimizations:
// channel-use queries, hide, and subexpression replacement (Section 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/ch/ast.hpp"

namespace bb::opt {

/// One use of a channel inside an expression.
struct ChannelUse {
  ch::ExprKind kind = ch::ExprKind::kPToP;
  ch::Activity activity = ch::Activity::kNeither;
};

/// All uses of channel `name` in `e` (normally zero or one).
std::vector<ChannelUse> uses_of(const ch::Expr& e, const std::string& name);

/// Every channel name mentioned in `e`.
std::vector<std::string> channel_names(const ch::Expr& e);

/// The activation-channel pattern of Section 4.1: the expression (with an
/// optional outer rep) is (<op> (p-to-p passive <channel>) <body>) where
/// <op> is an enclosure or sequencing operator.  Hiding replaces the
/// channel with void in place, so the operator's phase structure (e.g.
/// enc-middle's pairwise interleaving) is preserved when inlining.
struct ActivationPattern {
  const ch::Expr* enc = nullptr;   ///< the operator node carrying the channel
  const ch::Expr* body = nullptr;  ///< the useful body
};

/// Matches the activation pattern for `channel` in `e`, if present.
std::optional<ActivationPattern> match_activation(const ch::Expr& e,
                                                  const std::string& channel);

/// Replaces every leaf (p-to-p <any activity> <channel>) in `e` with a
/// clone of `replacement`.  Returns the number of replacements.
int replace_channel(ch::Expr& e, const std::string& channel,
                    const ch::Expr& replacement);

}  // namespace bb::opt
