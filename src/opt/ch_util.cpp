#include "src/opt/ch_util.hpp"

#include <set>

namespace bb::opt {

namespace {

void visit_channels(const ch::Expr& e, const std::string* filter,
                    std::vector<ChannelUse>* uses,
                    std::set<std::string>* names) {
  if (ch::is_channel(e.kind)) {
    if (e.kind != ch::ExprKind::kVoid && e.kind != ch::ExprKind::kVerb) {
      if (names) names->insert(e.channel);
      if (uses && filter && e.channel == *filter) {
        uses->push_back(ChannelUse{e.kind, ch::activity_of(e)});
      }
    }
    for (const ch::MuxBranch& b : e.branches) {
      visit_channels(*b.body, filter, uses, names);
    }
    return;
  }
  for (const ch::ExprPtr& a : e.args) {
    visit_channels(*a, filter, uses, names);
  }
}

}  // namespace

std::vector<ChannelUse> uses_of(const ch::Expr& e, const std::string& name) {
  std::vector<ChannelUse> uses;
  visit_channels(e, &name, &uses, nullptr);
  return uses;
}

std::vector<std::string> channel_names(const ch::Expr& e) {
  std::set<std::string> names;
  visit_channels(e, nullptr, nullptr, &names);
  return {names.begin(), names.end()};
}

std::optional<ActivationPattern> match_activation(const ch::Expr& e,
                                                  const std::string& channel) {
  const ch::Expr* node = &e;
  if (node->kind == ch::ExprKind::kRep) node = node->args.at(0).get();
  // Only enclosure operators qualify: the activation channel must enclose
  // the useful body within its handshake (Section 4.1).  A seq-carried
  // channel does not enclose its continuation, and removing it would
  // serialize behaviour that the composition leaves concurrent.
  switch (node->kind) {
    case ch::ExprKind::kEncEarly:
    case ch::ExprKind::kEncMiddle:
    case ch::ExprKind::kEncLate:
      break;
    default:
      return std::nullopt;
  }
  const ch::Expr& first = *node->args.at(0);
  if (first.kind != ch::ExprKind::kPToP || first.channel != channel ||
      first.declared_activity != ch::Activity::kPassive) {
    return std::nullopt;
  }
  ActivationPattern p;
  p.enc = node;
  p.body = node->args.at(1).get();
  return p;
}

int replace_channel(ch::Expr& e, const std::string& channel,
                    const ch::Expr& replacement) {
  int count = 0;
  if (ch::is_channel(e.kind)) {
    for (ch::MuxBranch& b : e.branches) {
      count += replace_channel(*b.body, channel, replacement);
    }
    return count;
  }
  for (ch::ExprPtr& a : e.args) {
    if (a->kind == ch::ExprKind::kPToP && a->channel == channel) {
      a = replacement.clone();
      ++count;
    } else {
      count += replace_channel(*a, channel, replacement);
    }
  }
  return count;
}

}  // namespace bb::opt
