#include "src/netlist/verilog.hpp"

#include "src/util/strings.hpp"

namespace bb::netlist {

namespace {

std::string net_ref(const GateNetlist& n, int id) {
  const std::string& name = n.net_name(id);
  if (!name.empty()) return util::replace_all(name, ".", "_");
  return "n" + std::to_string(id);
}

std::string primitive(CellFn fn) {
  switch (fn) {
    case CellFn::kInv: return "not";
    case CellFn::kBuf: return "buf";
    case CellFn::kAnd: return "and";
    case CellFn::kOr: return "or";
    case CellFn::kNand: return "nand";
    case CellFn::kNor: return "nor";
    case CellFn::kXor: return "xor";
    default: return "";
  }
}

}  // namespace

std::string to_verilog(const GateNetlist& n) {
  const auto driver = n.driver_table();

  std::string ports;
  std::string decls;
  for (const auto& [name, id] : n.named_nets()) {
    const std::string ref = util::replace_all(name, ".", "_");
    if (n.is_input(id) && driver[id] < 0) {
      ports += ports.empty() ? ref : ", " + ref;
      decls += "  input " + ref + ";\n";
    } else {
      ports += ports.empty() ? ref : ", " + ref;
      decls += "  output " + ref + ";\n";
    }
  }

  std::string body;
  int instance = 0;
  for (const Gate& g : n.gates()) {
    const std::string prim = primitive(g.fn);
    std::string args = net_ref(n, g.output);
    for (const int f : g.fanins) args += ", " + net_ref(n, f);
    if (!prim.empty()) {
      body += "  " + prim + " #(" + std::to_string(g.delay_ns) + ") g" +
              std::to_string(instance++) + " (" + args + ");\n";
    } else if (g.fn == CellFn::kCelem) {
      body += "  // C-element (behavioural)\n  CELEM #(" +
              std::to_string(g.delay_ns) + ") g" +
              std::to_string(instance++) + " (" + args + ");\n";
    } else {
      body += "  assign " + net_ref(n, g.output) +
              (g.fn == CellFn::kConst1 ? " = 1'b1;\n" : " = 1'b0;\n");
    }
  }

  std::string wires;
  for (int id = 0; id < n.num_nets(); ++id) {
    if (n.net_name(id).empty()) {
      wires += "  wire n" + std::to_string(id) + ";\n";
    }
  }

  return "module " + util::replace_all(n.name(), ".", "_") + " (" + ports +
         ");\n" + decls + wires + body + "endmodule\n";
}

}  // namespace bb::netlist
