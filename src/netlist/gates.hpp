// Gate-level netlists.  Every gate instance is a library cell with a
// single output net; primary inputs are port nets driven by the
// environment (testbench or a behavioural datapath model).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace bb::netlist {

/// Cell function classes understood by the simulator.
enum class CellFn {
  kInv,
  kBuf,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kCelem,   ///< Muller C-element (state-holding: output follows when all
            ///< inputs agree)
  kConst0,
  kConst1,
};

std::string_view fn_name(CellFn fn);

/// One gate instance.
struct Gate {
  std::string cell;  ///< library cell name, e.g. "NAND2"
  CellFn fn = CellFn::kBuf;
  std::vector<int> fanins;  ///< input net ids
  int output = -1;          ///< output net id
  double delay_ns = 0.0;
  double area = 0.0;
};

/// A flat gate netlist with named nets.
class GateNetlist {
 public:
  explicit GateNetlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Renames the netlist (the Verilog module name).  The incremental
  /// driver names each unit's netlist after its procedure so spliced
  /// multi-unit output has no module-name collisions.
  void set_name(std::string name) { name_ = std::move(name); }

  /// Creates a net; names are optional but must be unique when given.
  int add_net(const std::string& net_name = "");

  /// Finds a named net (-1 if absent).
  int net(const std::string& net_name) const;

  /// Names an existing net (aliasing an extra name onto it).
  void name_net(int id, const std::string& net_name);

  /// Adds a gate driving a fresh (or given) output net; returns the
  /// output net id.
  int add_gate(const std::string& cell, CellFn fn, std::vector<int> fanins,
               double delay_ns, double area, int output_net = -1);

  /// Marks a net as a primary input (driven externally).
  void mark_input(int net_id);
  bool is_input(int net_id) const;

  int num_nets() const { return static_cast<int>(net_names_.size()); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::map<std::string, int>& named_nets() const { return by_name_; }
  const std::string& net_name(int id) const { return net_names_[id]; }

  /// Gate driving each net (-1 if externally driven / floating).
  std::vector<int> driver_table() const;

  double total_area() const;

  /// Merges another netlist into this one, connecting nets by name.
  /// Returns the mapping from other-net-id to this-net-id.
  std::vector<int> merge(const GateNetlist& other);

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::map<std::string, int> by_name_;
  std::vector<Gate> gates_;
  std::vector<bool> inputs_;
};

}  // namespace bb::netlist
