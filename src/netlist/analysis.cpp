#include "src/netlist/analysis.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace bb::netlist {

NetlistStats analyze(const GateNetlist& netlist) {
  NetlistStats stats;
  stats.num_gates = static_cast<int>(netlist.gates().size());
  stats.area = netlist.total_area();
  for (const Gate& g : netlist.gates()) {
    ++stats.cell_histogram[g.cell];
  }

  // Longest path by memoized DFS over drivers; cycles (state feedback)
  // are cut at the first revisit.
  const auto drivers = netlist.driver_table();
  std::vector<double> arrival(netlist.num_nets(), -1.0);
  std::vector<char> on_stack(netlist.num_nets(), 0);

  const std::function<double(int)> arrival_of = [&](int net) -> double {
    if (arrival[net] >= 0.0) return arrival[net];
    if (on_stack[net]) return 0.0;  // feedback cut
    const int g = drivers[net];
    if (g < 0) {
      arrival[net] = 0.0;  // primary input / external net
      return 0.0;
    }
    on_stack[net] = 1;
    double worst = 0.0;
    for (const int f : netlist.gates()[g].fanins) {
      worst = std::max(worst, arrival_of(f));
    }
    on_stack[net] = 0;
    arrival[net] = worst + netlist.gates()[g].delay_ns;
    return arrival[net];
  };

  for (int net = 0; net < netlist.num_nets(); ++net) {
    stats.critical_path_ns = std::max(stats.critical_path_ns, arrival_of(net));
  }
  return stats;
}

std::string histogram_string(const NetlistStats& stats) {
  std::vector<std::pair<std::string, int>> entries(
      stats.cell_histogram.begin(), stats.cell_histogram.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string s;
  for (const auto& [cell, count] : entries) {
    if (!s.empty()) s += ", ";
    s += cell + " x" + std::to_string(count);
  }
  return s;
}

}  // namespace bb::netlist
