#include "src/netlist/analysis.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace bb::netlist {

NetlistStats analyze(const GateNetlist& netlist) {
  NetlistStats stats;
  stats.num_gates = static_cast<int>(netlist.gates().size());
  stats.area = netlist.total_area();
  for (const Gate& g : netlist.gates()) {
    ++stats.cell_histogram[g.cell];
  }

  // Longest path by memoized DFS over drivers; cycles (state feedback)
  // are cut at the first revisit.
  const auto drivers = netlist.driver_table();
  std::vector<double> arrival(netlist.num_nets(), -1.0);
  std::vector<char> on_stack(netlist.num_nets(), 0);

  const std::function<double(int)> arrival_of = [&](int net) -> double {
    if (arrival[net] >= 0.0) return arrival[net];
    if (on_stack[net]) return 0.0;  // feedback cut
    const int g = drivers[net];
    if (g < 0) {
      arrival[net] = 0.0;  // primary input / external net
      return 0.0;
    }
    on_stack[net] = 1;
    double worst = 0.0;
    for (const int f : netlist.gates()[g].fanins) {
      worst = std::max(worst, arrival_of(f));
    }
    on_stack[net] = 0;
    arrival[net] = worst + netlist.gates()[g].delay_ns;
    return arrival[net];
  };

  for (int net = 0; net < netlist.num_nets(); ++net) {
    stats.critical_path_ns = std::max(stats.critical_path_ns, arrival_of(net));
  }
  return stats;
}

bool is_cycle_breaker(const Gate& gate) {
  return gate.cell == "DEL" || gate.cell == "DOUT" ||
         gate.fn == CellFn::kCelem;
}

std::vector<std::vector<int>> combinational_cycles(const GateNetlist& net) {
  const std::vector<Gate>& gates = net.gates();
  const int num_gates = static_cast<int>(gates.size());
  // Per-net driver lists (a malformed netlist can have several drivers on
  // one net; NL001 reports that separately but the cycle finder should
  // still terminate on it).
  std::vector<std::vector<int>> drivers(net.num_nets());
  for (int g = 0; g < num_gates; ++g) {
    if (gates[g].output >= 0) drivers[gates[g].output].push_back(g);
  }
  // consumers[g]: combinational gates fed by g's output.
  std::vector<std::vector<int>> consumers(num_gates);
  for (int g = 0; g < num_gates; ++g) {
    if (is_cycle_breaker(gates[g])) continue;
    for (const int f : gates[g].fanins) {
      for (const int d : drivers[f]) {
        if (!is_cycle_breaker(gates[d])) consumers[d].push_back(g);
      }
    }
  }

  // Iterative Tarjan over the combinational subgraph.
  std::vector<std::vector<int>> cycles;
  std::vector<int> index(num_gates, -1), lowlink(num_gates, 0);
  std::vector<char> on_stack(num_gates, 0);
  std::vector<int> stack;
  int next_index = 0;
  struct Frame {
    int gate;
    std::size_t child;
  };
  for (int root = 0; root < num_gates; ++root) {
    if (index[root] >= 0 || is_cycle_breaker(gates[root])) continue;
    std::vector<Frame> call_stack{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.gate;
      if (frame.child < consumers[v].size()) {
        const int w = consumers[v][frame.child++];
        if (index[w] < 0) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const int parent = call_stack.back().gate;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        std::vector<int> scc;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
        } while (w != v);
        const bool self_loop =
            scc.size() == 1 &&
            std::find(consumers[v].begin(), consumers[v].end(), v) !=
                consumers[v].end();
        if (scc.size() > 1 || self_loop) cycles.push_back(std::move(scc));
      }
    }
  }
  return cycles;
}

Cone extract_cone(const GateNetlist& net, int root, std::size_t max_gates) {
  Cone cone;
  cone.root = root;
  const std::vector<Gate>& gates = net.gates();
  const std::vector<int> driver = net.driver_table();

  // Iterative post-order DFS over nets so fanins land in cone.gates
  // before their consumers.  state: 0 unvisited, 1 in progress, 2 done.
  std::vector<char> state(net.num_nets(), 0);
  std::vector<char> is_leaf(net.num_nets(), 0);
  struct Frame {
    int net;
    std::size_t child;
  };
  std::vector<Frame> stack{{root, 0}};
  state[root] = 1;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const int n = frame.net;
    const int g = driver[n];
    const bool leaf = g < 0 || net.is_input(n) || is_cycle_breaker(gates[g]) ||
                      (cone.truncated && state[n] != 2);
    if (leaf) {
      if (!is_leaf[n]) {
        is_leaf[n] = 1;
        cone.leaves.push_back(n);
      }
      state[n] = 2;
      stack.pop_back();
      continue;
    }
    if (frame.child < gates[g].fanins.size()) {
      const int f = gates[g].fanins[frame.child++];
      if (state[f] == 0) {
        state[f] = 1;
        stack.push_back(Frame{f, 0});
      } else if (state[f] == 1 && !is_leaf[f]) {
        // Combinational cycle inside the cone (an NL003 condition of its
        // own); cut it here so extraction terminates.
        is_leaf[f] = 1;
        cone.leaves.push_back(f);
      }
      continue;
    }
    state[n] = 2;
    stack.pop_back();
    if (cone.gates.size() >= max_gates) {
      cone.truncated = true;
    } else {
      cone.gates.push_back(g);
    }
  }
  return cone;
}

bool eval_gate(const Gate& gate, const std::vector<char>& value) {
  const auto in = [&](std::size_t i) {
    return value[gate.fanins[i]] != 0;
  };
  switch (gate.fn) {
    case CellFn::kInv:
      return !in(0);
    case CellFn::kBuf:
      return gate.fanins.empty() ? false : in(0);
    case CellFn::kAnd:
    case CellFn::kNand: {
      bool all = true;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) all = all && in(i);
      return gate.fn == CellFn::kAnd ? all : !all;
    }
    case CellFn::kOr:
    case CellFn::kNor: {
      bool any = false;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) any = any || in(i);
      return gate.fn == CellFn::kOr ? any : !any;
    }
    case CellFn::kXor: {
      bool parity = false;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) parity ^= in(i);
      return parity;
    }
    case CellFn::kCelem: {
      // State-holding cells never sit inside an extracted cone (they cut
      // it); evaluate combinationally as all-inputs-high for robustness.
      bool all = true;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) all = all && in(i);
      return all;
    }
    case CellFn::kConst0:
      return false;
    case CellFn::kConst1:
      return true;
  }
  return false;
}

namespace {

/// Fills `value` (indexed by net id) for one leaf assignment.
void eval_cone_nets(const GateNetlist& net, const Cone& cone,
                    const std::vector<bool>& leaf_values,
                    std::vector<char>& value) {
  for (std::size_t i = 0; i < cone.leaves.size(); ++i) {
    value[cone.leaves[i]] = leaf_values[i] ? 1 : 0;
  }
  for (const int g : cone.gates) {
    const Gate& gate = net.gates()[g];
    value[gate.output] = eval_gate(gate, value) ? 1 : 0;
  }
}

}  // namespace

bool eval_cone(const GateNetlist& net, const Cone& cone,
               const std::vector<bool>& leaf_values) {
  std::vector<char> value(net.num_nets(), 0);
  eval_cone_nets(net, cone, leaf_values, value);
  return value[cone.root] != 0;
}

std::vector<bool> cone_truth_table(const GateNetlist& net, const Cone& cone,
                                   int target, std::size_t limit) {
  const std::size_t vars = cone.leaves.size();
  if (vars >= 8 * sizeof(std::size_t) - 1) return {};
  const std::size_t rows = std::size_t{1} << vars;
  if (rows > limit) return {};
  std::vector<bool> table(rows, false);
  std::vector<bool> leaf_values(vars, false);
  std::vector<char> value(net.num_nets(), 0);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t i = 0; i < vars; ++i) {
      leaf_values[i] = (row >> i) & 1u;
    }
    eval_cone_nets(net, cone, leaf_values, value);
    table[row] = value[target] != 0;
  }
  return table;
}

std::string histogram_string(const NetlistStats& stats) {
  std::vector<std::pair<std::string, int>> entries(
      stats.cell_histogram.begin(), stats.cell_histogram.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string s;
  for (const auto& [cell, count] : entries) {
    if (!s.empty()) s += ", ";
    s += cell + " x" + std::to_string(count);
  }
  return s;
}

}  // namespace bb::netlist
