// Structural Verilog writer (the ".v files" of Fig. 1).
#pragma once

#include <string>

#include "src/netlist/gates.hpp"

namespace bb::netlist {

/// Renders the netlist as a structural Verilog module.  Primary inputs
/// become module inputs; named driven nets become outputs.
std::string to_verilog(const GateNetlist& netlist);

}  // namespace bb::netlist
