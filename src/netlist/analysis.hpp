// Static analysis of gate netlists: cell histograms, worst-case
// combinational depth, combinational-cycle detection, and logic-cone
// extraction/evaluation (the machinery behind the NL003/NL005/NL006
// semantic passes).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/netlist/gates.hpp"

namespace bb::netlist {

struct NetlistStats {
  std::map<std::string, int> cell_histogram;
  int num_gates = 0;
  double area = 0.0;
  /// Longest acyclic input-to-net delay path in ns (feedback nets driven
  /// by DEL cells break cycles, mirroring the Huffman structure).
  double critical_path_ns = 0.0;
};

NetlistStats analyze(const GateNetlist& netlist);

/// Formats the histogram as "NAND2 x12, INV x9, ...".
std::string histogram_string(const NetlistStats& stats);

/// True for cells that legally break combinational feedback: DEL/DOUT
/// delay elements and state-holding cells (the Huffman discipline).
bool is_cycle_breaker(const Gate& gate);

/// Strongly connected components of the combinational-gate graph
/// (cycle-breaker cells excluded) that form feedback loops: every
/// returned component either has more than one gate or is a true
/// self-loop.  Gate indices within a component and the components
/// themselves are in deterministic (Tarjan discovery) order.
std::vector<std::vector<int>> combinational_cycles(const GateNetlist& net);

/// The combinational cone that computes net `root`: every gate reachable
/// backwards from `root` without crossing a cycle-breaker cell.  Leaves
/// are the nets the cone reads from outside itself (primary inputs,
/// breaker-cell outputs, undriven nets).
struct Cone {
  int root = -1;               ///< the net the cone drives
  std::vector<int> leaves;     ///< leaf net ids, in first-visit order
  std::vector<int> gates;      ///< topologically ordered gate indices
  bool truncated = false;      ///< hit max_gates; contents incomplete
};

Cone extract_cone(const GateNetlist& net, int root,
                  std::size_t max_gates = 4096);

/// Combinationally evaluates one gate from net values indexed by net id
/// (non-zero = high).  C-elements evaluate as all-inputs-high.
bool eval_gate(const Gate& gate, const std::vector<char>& net_values);

/// Evaluates every gate of the cone for one assignment of its leaves
/// (leaf_values aligned with cone.leaves) and returns the root value.
bool eval_cone(const GateNetlist& net, const Cone& cone,
               const std::vector<bool>& leaf_values);

/// Truth table of one cone net over all 2^leaves assignments (leaf 0 is
/// the least significant index bit).  `target` is the net to sample —
/// the root or any intermediate gate output inside the cone.  Returns an
/// empty vector when 2^leaves would exceed `limit`.
std::vector<bool> cone_truth_table(const GateNetlist& net, const Cone& cone,
                                   int target, std::size_t limit);

}  // namespace bb::netlist
