// Static analysis of gate netlists: cell histograms and worst-case
// combinational depth (for reports and for checking the timing-discipline
// assumptions of the mapped controllers).
#pragma once

#include <map>
#include <string>

#include "src/netlist/gates.hpp"

namespace bb::netlist {

struct NetlistStats {
  std::map<std::string, int> cell_histogram;
  int num_gates = 0;
  double area = 0.0;
  /// Longest acyclic input-to-net delay path in ns (feedback nets driven
  /// by DEL cells break cycles, mirroring the Huffman structure).
  double critical_path_ns = 0.0;
};

NetlistStats analyze(const GateNetlist& netlist);

/// Formats the histogram as "NAND2 x12, INV x9, ...".
std::string histogram_string(const NetlistStats& stats);

}  // namespace bb::netlist
