#include "src/netlist/gates.hpp"

#include <stdexcept>

namespace bb::netlist {

std::string_view fn_name(CellFn fn) {
  switch (fn) {
    case CellFn::kInv: return "inv";
    case CellFn::kBuf: return "buf";
    case CellFn::kAnd: return "and";
    case CellFn::kOr: return "or";
    case CellFn::kNand: return "nand";
    case CellFn::kNor: return "nor";
    case CellFn::kXor: return "xor";
    case CellFn::kCelem: return "celem";
    case CellFn::kConst0: return "const0";
    case CellFn::kConst1: return "const1";
  }
  return "?";
}

int GateNetlist::add_net(const std::string& net_name) {
  const int id = static_cast<int>(net_names_.size());
  net_names_.push_back(net_name);
  inputs_.push_back(false);
  if (!net_name.empty()) {
    if (!by_name_.emplace(net_name, id).second) {
      throw std::invalid_argument("GateNetlist: duplicate net name '" +
                                  net_name + "'");
    }
  }
  return id;
}

int GateNetlist::net(const std::string& net_name) const {
  const auto it = by_name_.find(net_name);
  return it == by_name_.end() ? -1 : it->second;
}

void GateNetlist::name_net(int id, const std::string& net_name) {
  if (!by_name_.emplace(net_name, id).second) {
    throw std::invalid_argument("GateNetlist: duplicate net name '" +
                                net_name + "'");
  }
  if (net_names_[id].empty()) net_names_[id] = net_name;
}

int GateNetlist::add_gate(const std::string& cell, CellFn fn,
                          std::vector<int> fanins, double delay_ns,
                          double area, int output_net) {
  Gate g;
  g.cell = cell;
  g.fn = fn;
  g.fanins = std::move(fanins);
  g.output = output_net >= 0 ? output_net : add_net();
  g.delay_ns = delay_ns;
  g.area = area;
  gates_.push_back(std::move(g));
  return gates_.back().output;
}

void GateNetlist::mark_input(int net_id) { inputs_.at(net_id) = true; }

bool GateNetlist::is_input(int net_id) const { return inputs_.at(net_id); }

std::vector<int> GateNetlist::driver_table() const {
  std::vector<int> driver(net_names_.size(), -1);
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    if (driver[gates_[g].output] != -1) {
      throw std::logic_error("GateNetlist: net '" +
                             net_names_[gates_[g].output] +
                             "' has multiple drivers");
    }
    driver[gates_[g].output] = static_cast<int>(g);
  }
  return driver;
}

double GateNetlist::total_area() const {
  double a = 0.0;
  for (const Gate& g : gates_) a += g.area;
  return a;
}

std::vector<int> GateNetlist::merge(const GateNetlist& other) {
  std::vector<int> remap(other.net_names_.size(), -1);
  for (int id = 0; id < other.num_nets(); ++id) {
    const std::string& name = other.net_names_[id];
    if (!name.empty()) {
      const int existing = net(name);
      remap[id] = existing >= 0 ? existing : add_net(name);
    } else {
      remap[id] = add_net();
    }
    if (other.inputs_[id] && remap[id] >= 0) {
      // Input markings merge; a net driven here stops being an input when
      // the caller wires a driver to it (the simulator checks drivers).
      inputs_[remap[id]] = inputs_[remap[id]] || other.inputs_[id];
    }
  }
  for (const Gate& g : other.gates_) {
    Gate copy = g;
    for (int& f : copy.fanins) f = remap[f];
    copy.output = remap[g.output];
    gates_.push_back(std::move(copy));
  }
  return remap;
}

}  // namespace bb::netlist
