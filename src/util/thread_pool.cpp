#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "src/util/strings.hpp"

namespace bb::util {

namespace {
std::atomic<void (*)(const ThreadPool::TaskStats&)> g_task_observer{nullptr};
}  // namespace

void ThreadPool::set_task_observer(void (*observer)(const TaskStats&)) {
  g_task_observer.store(observer, std::memory_order_release);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(
        Queued{std::move(task), std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Queued task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    auto* observer = g_task_observer.load(std::memory_order_acquire);
    if (observer == nullptr) {
      task.fn();
      continue;
    }
    TaskStats stats;
    stats.enqueued = task.enqueued;
    stats.run_start = std::chrono::steady_clock::now();
    task.fn();
    stats.run_end = std::chrono::steady_clock::now();
    observer(stats);
  }
}

std::size_t ThreadPool::recommended_jobs() {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::size_t hw = hw_raw > 0 ? hw_raw : 1;
  if (const char* env = std::getenv("BB_JOBS")) {
    // Structured parse (no bare strtol): garbage or trailing text falls
    // through to the hardware default, values are clamped to
    // [1, hardware_concurrency] — a BB_JOBS beyond the machine only adds
    // contention to the synthesis loop.
    if (const auto n = parse_ll(env); n.has_value() && *n > 0) {
      return std::min(static_cast<std::size_t>(*n), hw);
    }
  }
  return hw;
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::exception_ptr> errors(count);

  if (pool.size() <= 1 || count == 1) {
    // Inline path, same semantics: attempt every index, then rethrow the
    // lowest failure.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    struct Shared {
      std::atomic<std::size_t> next{0};
      std::size_t exited = 0;  // guarded by mu
      std::mutex mu;
      std::condition_variable cv;
    } shared;

    const std::size_t workers = std::min(pool.size(), count);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&shared, &errors, &fn, count] {
        for (;;) {
          const std::size_t i =
              shared.next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) break;
          try {
            fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
        // Completion is signalled per *worker*, not per index: `shared`,
        // `errors` and `fn` live on the caller's stack and may be
        // destroyed as soon as the caller observes the last exit, so the
        // notify below must be this worker's final touch of any of them.
        std::lock_guard<std::mutex> lock(shared.mu);
        ++shared.exited;
        shared.cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.cv.wait(lock,
                   [&shared, workers] { return shared.exited == workers; });
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace bb::util
