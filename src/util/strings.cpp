#include "src/util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace bb::util {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t pos = s.find_first_of(delims, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    if (pos > start) out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  std::string out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::optional<long long> parse_ll(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // strtoll needs a NUL-terminated buffer; argv values are short.
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

long long parse_int(const char* tool, const char* flag, const char* value,
                    long long min, long long max) {
  const auto parsed = parse_ll(value != nullptr ? value : "");
  if (!parsed || *parsed < min || *parsed > max) {
    std::cerr << tool << ": " << flag << " expects an integer in [" << min
              << ", " << max << "], got '" << (value != nullptr ? value : "")
              << "'\n";
    std::exit(2);
  }
  return *parsed;
}

}  // namespace bb::util
