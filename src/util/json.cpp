#include "src/util/json.hpp"

#include <cstdio>
#include <stdexcept>

namespace bb::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_.push_back('o');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o' || after_key_) {
    throw std::logic_error("JsonWriter: end_object without matching object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_.push_back('a');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a' || after_key_) {
    throw std::logic_error("JsonWriter: end_array without matching array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != 'o' || after_key_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v, int decimals) {
  comma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  comma();
  out_ += fragment;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || after_key_) {
    throw std::logic_error("JsonWriter: unclosed container or dangling key");
  }
  return out_;
}

}  // namespace bb::util
