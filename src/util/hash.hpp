// Content-addressing hash primitives shared by every layer that derives
// stable identifiers from bytes: the serve disk cache (entry file
// names), the incremental build graph (unit and controller digests) and
// the technology library fingerprint.
//
// FNV-1a is not cryptographic; it is used strictly for content
// addressing among trusted inputs, where the failure mode of a
// collision is a stale-entry guard (the disk cache embeds and compares
// the full key, the incremental manifest rebuilds on any doubt).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bb::util {

/// 64-bit FNV-1a over `data`.  `seed` selects independent streams (the
/// disk cache derives a 128-bit file name from two seeds).
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// 16-hex-digit rendering of a 64-bit hash.
std::string hex64(std::uint64_t value);

/// hex64(fnv1a64(data)): the one-call digest used for content keys.
std::string content_digest(std::string_view data);

}  // namespace bb::util
