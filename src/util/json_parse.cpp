#include "src/util/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace bb::util {

namespace {

constexpr std::size_t kMaxDepth = 64;
constexpr std::size_t kMaxInput = 64u * 1024u * 1024u;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!value(v, 0)) {
      if (error != nullptr) {
        *error = error_ + " at byte " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing data at byte " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool string_token(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return fail("bad \\u escape");
          // Surrogate pair handling: a high surrogate must be followed
          // by \uDC00..\uDFFF; lone surrogates are rejected.
          if (cp >= 0xd800 && cp <= 0xdbff) {
            if (!literal("\\u")) return fail("lone high surrogate");
            unsigned low = 0;
            if (!hex4(low) || low < 0xdc00 || low > 0xdfff) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number_token(JsonValue& v) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return fail("bad number");
    errno = 0;
    char* end = nullptr;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return fail("bad number");
    }
    if (integral) {
      errno = 0;
      const long long as_int = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        v.integer = as_int;
        v.is_integer = true;
      }
    }
    return true;
  }

  bool value(JsonValue& v, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (text_.size() > kMaxInput) return fail("input too large");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_token(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        JsonValue member;
        if (!value(member, depth + 1)) return false;
        v.object.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue element;
        if (!value(element, depth + 1)) return false;
        v.array.push_back(std::move(element));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      return string_token(v.string);
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      v.kind = JsonValue::Kind::kNull;
      return true;
    }
    return number_token(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_number() && v->is_integer ? v->integer
                                                         : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_bool() ? v->bool_value : fallback;
}

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace bb::util
