// String utilities shared across the back-end tools.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bb::util {

/// Splits `s` on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Parses the *whole* of `s` as a decimal integer (optional sign).
/// Returns nullopt for empty input, garbage, trailing text, or values
/// outside long long — unlike std::stoi/atoi, which throw or silently
/// return 0.
std::optional<long long> parse_ll(std::string_view s);

/// argv helper for CLI tools: parses `value` as an integer in
/// [min, max].  On garbage or out-of-range input it prints
/// "<tool>: <flag> expects an integer in [min, max], got '<value>'" to
/// stderr and exits with status 2 (the tools' usage-error status).
long long parse_int(const char* tool, const char* flag, const char* value,
                    long long min, long long max);

}  // namespace bb::util
