// String utilities shared across the back-end tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bb::util {

/// Splits `s` on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

}  // namespace bb::util
