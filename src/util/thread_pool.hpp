// A small fixed-size worker pool for the synthesis flow's per-controller
// parallelism.
//
// The pool owns its worker threads for its whole lifetime; work items are
// plain std::function<void()> drained FIFO from one shared queue.  The
// companion `parallel_for_index` helper runs a body over [0, count) with
// deterministic error semantics: every index is attempted, and the
// exception of the *lowest* failing index is rethrown, so a parallel run
// fails with exactly the error a serial in-order run would report first.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bb::util {

class ThreadPool {
 public:
  /// Timing of one executed task, reported to the task observer from the
  /// worker thread that ran it, right after the task returned.
  struct TaskStats {
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point run_start;
    std::chrono::steady_clock::time_point run_end;
  };

  /// Process-wide hook observing every executed task (all pools).  Used by
  /// the obs layer for pool metrics/tracing; bb_util cannot depend on
  /// bb_obs, hence the inverted function-pointer registration.  Pass
  /// nullptr to uninstall.  The observer must be cheap and must not throw.
  static void set_task_observer(void (*observer)(const TaskStats&));

  /// Spawns `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  /// Joins all workers; tasks already queued are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw (wrap the body if it can);
  /// an escaping exception terminates the process.
  void submit(std::function<void()> task);

  /// The default worker count: the BB_JOBS environment variable when set
  /// to a positive integer, otherwise std::thread::hardware_concurrency()
  /// (at least 1).
  static std::size_t recommended_jobs();

 private:
  struct Queued {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Queued> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0), ..., fn(count-1) across the pool's workers and blocks until
/// all indices finished.  With a single-worker pool (or count <= 1) the
/// body runs inline on the calling thread.  Exceptions thrown by the body
/// are collected per index; after all indices ran, the exception of the
/// lowest failing index is rethrown.  Must not be called from inside a
/// pool task (the caller blocks on the same pool).
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

}  // namespace bb::util
