// A small fixed-size worker pool for the synthesis flow's per-controller
// parallelism.
//
// The pool owns its worker threads for its whole lifetime; work items are
// plain std::function<void()> drained FIFO from one shared queue.  The
// companion `parallel_for_index` helper runs a body over [0, count) with
// deterministic error semantics: every index is attempted, and the
// exception of the *lowest* failing index is rethrown, so a parallel run
// fails with exactly the error a serial in-order run would report first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bb::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  /// Joins all workers; tasks already queued are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw (wrap the body if it can);
  /// an escaping exception terminates the process.
  void submit(std::function<void()> task);

  /// The default worker count: the BB_JOBS environment variable when set
  /// to a positive integer, otherwise std::thread::hardware_concurrency()
  /// (at least 1).
  static std::size_t recommended_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0), ..., fn(count-1) across the pool's workers and blocks until
/// all indices finished.  With a single-worker pool (or count <= 1) the
/// body runs inline on the calling thread.  Exceptions thrown by the body
/// are collected per index; after all indices ran, the exception of the
/// lowest failing index is rethrown.  Must not be called from inside a
/// pool task (the caller blocks on the same pool).
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

}  // namespace bb::util
