#include "src/util/io.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/util/failpoint.hpp"

namespace bb::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("write_file_atomic: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

[[noreturn]] void fail_injected(const std::string& what,
                                const std::string& path) {
  errno = EIO;
  fail(what + " (failpoint)", path);
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable.  Failures are ignored: some filesystems refuse
/// directory fsync, and the entry rename is already crash-atomic.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

ssize_t retry_read(int fd, void* buf, std::size_t count) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, count);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t retry_write(int fd, const void* buf, std::size_t count) {
  for (;;) {
    const ssize_t n = ::write(fd, buf, count);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t retry_recv(int fd, void* buf, std::size_t count, int flags) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, count, flags);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t retry_send(int fd, const void* buf, std::size_t count, int flags) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, count, flags);
    if (n >= 0 || errno != EINTR) return n;
  }
}

int retry_poll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int ready = ::poll(fds, nfds, timeout_ms);
    if (ready >= 0 || errno != EINTR) return ready;
  }
}

bool send_all(int fd, std::string_view data) {
  if (failpoint("serve.send")) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        retry_send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) return false;  // peer went away; nothing to do about it
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  // The temporary must live in the same directory as the target so the
  // rename is a same-filesystem metadata operation.  Its name must be
  // unique per writer (pid + process-wide counter): concurrent writers
  // of the same target — threads, or processes sharing a cache
  // directory — must each rename their own complete file, never a temp
  // another writer is still filling.
  static std::atomic<std::uint64_t> serial{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(serial.fetch_add(1));
  if (failpoint("io.wfa.open")) fail_injected("cannot open", tmp);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open", tmp);

  // An injected short write leaves `write_cap` bytes in the temp and
  // then fails — the torn-write case recovery must scavenge.
  std::size_t write_cap = content.size();
  bool injected_write_error = false;
  if (const auto hit = failpoint("io.wfa.write")) {
    if (hit.kind == FailpointHit::Kind::kShortWrite) {
      write_cap = std::min<std::size_t>(write_cap, hit.arg);
    }
    injected_write_error = true;
  }

  std::size_t written = 0;
  while (written < write_cap) {
    const ssize_t n =
        retry_write(fd, content.data() + written, write_cap - written);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      fail("short write to", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (injected_write_error) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail_injected("short write to", tmp);
  }

  // The data must be durable *before* the rename publishes it: without
  // the fsync a crash after the rename can leave a correctly-named but
  // truncated (even empty) artifact, which is exactly what atomicity is
  // supposed to rule out.  The disk cache relies on this ordering.
  if (failpoint("io.wfa.fsync")) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail_injected("cannot fsync", tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    fail("cannot close", tmp);
  }
  // Crash sites bracketing publication: before the rename the target
  // must be untouched (only an orphaned temp remains); after it the new
  // content must be complete.  There is no window with a torn target.
  (void)failpoint("io.wfa.crash_before_rename");
  if (failpoint("io.wfa.rename")) {
    std::remove(tmp.c_str());
    fail_injected("cannot rename", tmp + "' to '" + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename", tmp + "' to '" + path);
  }
  (void)failpoint("io.wfa.crash_after_rename");
  sync_parent_dir(path);
}

}  // namespace bb::util
