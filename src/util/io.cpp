#include "src/util/io.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace bb::util {

void write_file_atomic(const std::string& path, const std::string& content) {
  // The temporary must live in the same directory as the target so the
  // rename is a same-filesystem metadata operation.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_file_atomic: cannot open '" + tmp +
                               "' for writing");
    }
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write_file_atomic: short write to '" + tmp +
                               "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: cannot rename '" + tmp +
                             "' to '" + path + "'");
  }
}

}  // namespace bb::util
