#include "src/util/io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace bb::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("write_file_atomic: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable.  Failures are ignored: some filesystems refuse
/// directory fsync, and the entry rename is already crash-atomic.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  // The temporary must live in the same directory as the target so the
  // rename is a same-filesystem metadata operation.  Its name must be
  // unique per writer (pid + process-wide counter): concurrent writers
  // of the same target — threads, or processes sharing a cache
  // directory — must each rename their own complete file, never a temp
  // another writer is still filling.
  static std::atomic<std::uint64_t> serial{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(serial.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open", tmp);

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      fail("short write to", tmp);
    }
    written += static_cast<std::size_t>(n);
  }

  // The data must be durable *before* the rename publishes it: without
  // the fsync a crash after the rename can leave a correctly-named but
  // truncated (even empty) artifact, which is exactly what atomicity is
  // supposed to rule out.  The disk cache relies on this ordering.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    fail("cannot close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename", tmp + "' to '" + path);
  }
  sync_parent_dir(path);
}

}  // namespace bb::util
