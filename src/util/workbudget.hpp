// Cooperative work budgets for the exponential synthesis steps.
//
// A WorkBudget is a shared operation counter that long-running loops
// (unate covering branch-and-bound, DHF candidate expansion, state-
// minimization refinement) poll via charge().  When the budget runs out,
// charge() throws WorkBudgetExceeded, which the flow's per-controller
// recovery path catches to degrade that one controller instead of
// aborting the whole run (see flow::FlowOptions::strict).
//
// The counter is atomic so one budget can be shared by helper threads,
// but the usual pattern is one budget per controller work unit.  A
// default-constructed budget is unlimited and never throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace bb::util {

/// Thrown by WorkBudget::charge when the operation budget is exhausted.
class WorkBudgetExceeded : public std::runtime_error {
 public:
  WorkBudgetExceeded(std::uint64_t limit, std::uint64_t used)
      : std::runtime_error("work budget exceeded: " + std::to_string(used) +
                           " of " + std::to_string(limit) + " ops"),
        limit_(limit),
        used_(used) {}

  std::uint64_t limit() const { return limit_; }
  std::uint64_t used() const { return used_; }

 private:
  std::uint64_t limit_;
  std::uint64_t used_;
};

class WorkBudget {
 public:
  /// Unlimited budget: charge() only counts, never throws.
  WorkBudget() = default;

  /// Budget of `max_ops` abstract operations (0 = unlimited).
  explicit WorkBudget(std::uint64_t max_ops) : limit_(max_ops) {}

  bool unlimited() const { return limit_ == 0; }
  std::uint64_t limit() const { return limit_; }
  std::uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  bool exhausted() const { return limit_ != 0 && used() >= limit_; }

  /// Records `ops` units of work; throws WorkBudgetExceeded once the
  /// total crosses the limit.  Polling loops call this with the number
  /// of elementary steps (branch nodes, cube expansions, refinement
  /// passes) they just performed.
  void charge(std::uint64_t ops = 1) {
    const std::uint64_t total =
        used_.fetch_add(ops, std::memory_order_relaxed) + ops;
    if (limit_ != 0 && total > limit_) {
      throw WorkBudgetExceeded(limit_, total);
    }
  }

 private:
  std::uint64_t limit_ = 0;  ///< 0 = unlimited
  std::atomic<std::uint64_t> used_{0};
};

}  // namespace bb::util
