#include "src/util/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>

#include <unistd.h>

#include "src/util/prng.hpp"
#include "src/util/strings.hpp"

namespace bb::util {

namespace {

enum class Action {
  kError,   // every hit
  kOnce,    // first hit only
  kEvery,   // hits n, 2n, 3n, ...
  kShort,   // short-write capped at arg bytes, every hit
  kCrash,   // ::_exit on the nth hit
  kProb,    // seeded coin per hit
};

struct Site {
  Action action = Action::kError;
  std::uint64_t n = 1;       // every/crash period or target hit
  std::uint64_t arg = 0;     // short-write byte cap
  double prob = 0.0;         // p(X)
  SplitMix64 rng{1};         // per-site stream for p(X)
  std::uint64_t hits = 0;
  std::uint64_t triggers = 0;
};

struct Table {
  std::mutex mu;
  std::map<std::string, Site, std::less<>> sites;
  std::uint64_t seed = 1;
};

Table& table() {
  static Table t;
  return t;
}

/// Parses one action string into a Site (hit counters zeroed).  Returns
/// nullopt on grammar errors; "off" parses to nullopt with empty error.
std::optional<Site> parse_action(std::string_view text, std::string* error) {
  const std::string_view action = trim(text);
  const auto fail = [&](const std::string& what) -> std::optional<Site> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  Site site;
  if (action == "off") return fail("");
  if (action == "error") {
    site.action = Action::kError;
    return site;
  }
  if (action == "once") {
    site.action = Action::kOnce;
    return site;
  }
  if (action == "crash") {
    site.action = Action::kCrash;
    site.n = 1;
    return site;
  }
  const std::size_t open = action.find('(');
  if (open == std::string_view::npos || action.back() != ')') {
    return fail("unknown action '" + std::string(action) + "'");
  }
  const std::string_view head = action.substr(0, open);
  const std::string_view arg =
      trim(action.substr(open + 1, action.size() - open - 2));
  if (head == "p") {
    // Probability: a plain decimal in [0, 1].
    char* end = nullptr;
    const std::string arg_str(arg);
    const double p = std::strtod(arg_str.c_str(), &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return fail("p() expects a probability in [0,1], got '" + arg_str + "'");
    }
    site.action = Action::kProb;
    site.prob = p;
    return site;
  }
  const auto count = parse_ll(arg);
  if (!count || *count < 1) {
    return fail("'" + std::string(head) +
                "()' expects a positive integer, got '" + std::string(arg) +
                "'");
  }
  if (head == "every") {
    site.action = Action::kEvery;
    site.n = static_cast<std::uint64_t>(*count);
  } else if (head == "short") {
    site.action = Action::kShort;
    site.arg = static_cast<std::uint64_t>(*count);
  } else if (head == "crash") {
    site.action = Action::kCrash;
    site.n = static_cast<std::uint64_t>(*count);
  } else {
    return fail("unknown action '" + std::string(action) + "'");
  }
  return site;
}

/// Derives the p(X) stream for a site: the global seed xor a hash of the
/// name, so two sites never share a stream and one seed reproduces all.
SplitMix64 site_rng(std::uint64_t seed, std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return SplitMix64(seed ^ h);
}

[[noreturn]] void crash_now(std::string_view name) {
  // Async-signal-safe breadcrumb for the harness log, then a hard exit:
  // no atexit handlers, no stream flushes — the closest user-space
  // analogue of SIGKILL at an exact program point.
  const char prefix[] = "failpoint: crash at ";
  (void)!::write(2, prefix, sizeof(prefix) - 1);
  (void)!::write(2, name.data(), name.size());
  (void)!::write(2, "\n", 1);
  ::_exit(Failpoints::kCrashExitCode);
}

}  // namespace

#if BB_FAILPOINTS_COMPILED
std::atomic<bool> Failpoints::active_{false};

bool Failpoints::compiled_in() { return true; }
#else
bool Failpoints::compiled_in() { return false; }
#endif

bool Failpoints::set(std::string_view name, std::string_view action,
                     std::string* error) {
  std::string parse_error;
  const auto site = parse_action(action, &parse_error);
  if (!site && !parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  const std::string key(trim(name));
  if (!site) {
    t.sites.erase(key);
  } else {
    Site s = *site;
    s.rng = site_rng(t.seed, key);
    t.sites[key] = std::move(s);
  }
#if BB_FAILPOINTS_COMPILED
  active_.store(!t.sites.empty(), std::memory_order_relaxed);
#endif
  return true;
}

bool Failpoints::configure(std::string_view spec, std::string* error) {
  // Parse the whole spec before touching the live table, so a malformed
  // entry can never leave a half-applied configuration behind.
  std::map<std::string, std::optional<Site>, std::less<>> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string_view::npos) semi = spec.size();
    const std::string_view entry = trim(spec.substr(start, semi - start));
    start = semi + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "failpoint entry '" + std::string(entry) +
                 "' is missing '=action'";
      }
      return false;
    }
    const std::string name(trim(entry.substr(0, eq)));
    if (name.empty()) {
      if (error != nullptr) *error = "failpoint entry with empty name";
      return false;
    }
    std::string parse_error;
    auto site = parse_action(entry.substr(eq + 1), &parse_error);
    if (!site && !parse_error.empty()) {
      if (error != nullptr) *error = name + ": " + parse_error;
      return false;
    }
    parsed[name] = std::move(site);  // nullopt = explicit "off"
  }

  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  t.sites.clear();
  for (auto& [name, site] : parsed) {
    if (!site) continue;
    site->rng = site_rng(t.seed, name);
    t.sites[name] = std::move(*site);
  }
#if BB_FAILPOINTS_COMPILED
  active_.store(!t.sites.empty(), std::memory_order_relaxed);
#endif
  return true;
}

void Failpoints::clear() {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  t.sites.clear();
#if BB_FAILPOINTS_COMPILED
  active_.store(false, std::memory_order_relaxed);
#endif
}

void Failpoints::set_seed(std::uint64_t seed) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  t.seed = seed;
  for (auto& [name, site] : t.sites) site.rng = site_rng(seed, name);
}

std::uint64_t Failpoints::hits(std::string_view name) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  const auto it = t.sites.find(name);
  return it == t.sites.end() ? 0 : it->second.hits;
}

std::uint64_t Failpoints::triggers(std::string_view name) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  const auto it = t.sites.find(name);
  return it == t.sites.end() ? 0 : it->second.triggers;
}

FailpointHit Failpoints::evaluate(std::string_view name) {
  Table& t = table();
  bool crash = false;
  FailpointHit hit;
  {
    std::lock_guard<std::mutex> lock(t.mu);
    const auto it = t.sites.find(name);
    if (it == t.sites.end()) return {};
    Site& site = it->second;
    ++site.hits;
    switch (site.action) {
      case Action::kError:
        hit.kind = FailpointHit::Kind::kError;
        break;
      case Action::kOnce:
        if (site.hits == 1) hit.kind = FailpointHit::Kind::kError;
        break;
      case Action::kEvery:
        if (site.hits % site.n == 0) hit.kind = FailpointHit::Kind::kError;
        break;
      case Action::kShort:
        hit.kind = FailpointHit::Kind::kShortWrite;
        hit.arg = site.arg;
        break;
      case Action::kCrash:
        crash = site.hits == site.n;
        break;
      case Action::kProb:
        if (site.rng.uniform() < site.prob) {
          hit.kind = FailpointHit::Kind::kError;
        }
        break;
    }
    if (hit || crash) ++site.triggers;
  }
  if (crash) crash_now(name);  // outside the lock; never returns
  return hit;
}

namespace {

/// Applies BB_FAILPOINTS / BB_CHAOS_SEED once at process start.  The
/// initializer only touches this translation unit's own statics, so
/// static-init order cannot bite; a malformed env spec is reported to
/// stderr and ignored rather than aborting the tool.
struct EnvInit {
  EnvInit() {
    if (const char* seed = std::getenv("BB_CHAOS_SEED")) {
      const auto parsed = parse_ll(seed);
      if (parsed && *parsed > 0) {
        Failpoints::set_seed(static_cast<std::uint64_t>(*parsed));
      }
    }
    const char* spec = std::getenv("BB_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    if (!Failpoints::compiled_in()) {
      const char msg[] =
          "failpoint: BB_FAILPOINTS set but failpoints are compiled out "
          "(build with -DBB_FAILPOINTS_ENABLED=ON)\n";
      (void)!::write(2, msg, sizeof(msg) - 1);
      return;
    }
    std::string error;
    if (!Failpoints::configure(spec, &error)) {
      const std::string msg = "failpoint: ignoring BB_FAILPOINTS: " + error + "\n";
      (void)!::write(2, msg.data(), msg.size());
    }
  }
};
const EnvInit g_env_init;

}  // namespace

}  // namespace bb::util
