// Minimal recursive-descent JSON parser, the read side of util/json.hpp.
//
// The service daemon's wire protocol is newline-delimited JSON, so the
// parser only has to handle one value per call and keeps everything in a
// plain tree (JsonValue).  Numbers are stored as both double and int64
// views of the same token so callers can ask for whichever they mean;
// object member order is preserved but lookup is by key.  Input limits
// (nesting depth, total size) are enforced so a malicious request cannot
// blow the stack of a server thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bb::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  /// The integer reading of a number token (valid when `is_integer`).
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;

  /// Typed member accessors with defaults, for flat request decoding.
  std::string get_string(std::string_view key,
                         std::string_view fallback = "") const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
};

/// Parses one JSON document.  The whole input must be consumed (trailing
/// whitespace is fine).  On failure returns nullopt and, when `error` is
/// non-null, stores a one-line description with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace bb::util
