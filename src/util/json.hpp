// Shared JSON emission for every machine-readable artifact the flow
// writes (lint reports, stage timings, fault-campaign results, bench
// artifacts, traces, metric snapshots).
//
// JsonWriter is a forward-only streaming writer: the caller opens
// objects/arrays, emits keys and values in the order it wants them to
// appear (key order is therefore stable by construction), and the writer
// handles commas, quoting and escaping.  Numbers are rendered
// deterministically: integers via std::to_string, doubles with a fixed
// decimal count (default three, matching the flow's millisecond
// renderings), so two identical runs always produce identical bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bb::util {

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters as \uXXXX).
std::string json_escape(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next emission must be its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);  ///< quoted + escaped
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  /// Fixed-point decimal rendering ("%.*f"), three digits by default.
  JsonWriter& value(double v, int decimals = 3);
  /// A pre-rendered JSON fragment (e.g. a nested to_json() result).
  JsonWriter& raw(std::string_view fragment);

  /// key() + value() in one call, for flat objects.
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }
  JsonWriter& member(std::string_view k, double v, int decimals) {
    key(k);
    return value(v, decimals);
  }

  /// The finished document.  All containers must be closed.
  /// Throws std::logic_error on unbalanced begin/end calls.
  std::string str() const;

 private:
  void comma();

  std::string out_;
  /// One entry per open container: 'o' = object, 'a' = array.
  std::vector<char> stack_;
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace bb::util
