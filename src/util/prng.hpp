// SplitMix64: the deterministic PRNG behind the fault-injection campaign.
//
// The standard library generators are implementation-defined across
// platforms; fault plans must be byte-identical for one seed everywhere
// (the bench_faults JSON is diffed across CI runs), so we pin the exact
// algorithm here.  SplitMix64 is Steele/Lea/Flood's 64-bit mixer: tiny,
// full-period, and well distributed for this use.
#pragma once

#include <cstdint>

namespace bb::util {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n), exactly (Lemire's multiply-with-rejection): the
  /// fuzzer draws from ranges large enough that `next() % n` bias would
  /// matter, and rejection sampling costs one 128-bit multiply on the
  /// common path.  n == 0 returns 0 (the old `% 0` was UB).
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      // threshold = 2^64 mod n, computed without 128-bit division.
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace bb::util
