#include "src/util/hash.hpp"

#include <cstdio>

namespace bb::util {

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string content_digest(std::string_view data) {
  return hex64(fnv1a64(data));
}

}  // namespace bb::util
