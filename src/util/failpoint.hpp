// Deterministic environment-fault injection: named failpoints compiled
// into the I/O and service paths (same near-zero-overhead discipline as
// src/obs: one relaxed atomic load when nothing is configured).
//
// A failpoint is a named site in the code that asks "should I fail
// here?".  Sites are activated through the BB_FAILPOINTS environment
// variable (or the programmatic API below, which the tests use):
//
//   BB_FAILPOINTS="io.wfa.fsync=error;serve.disk_cache.store.crash=crash(3)"
//
// Spec grammar (whitespace around tokens is ignored):
//
//   spec    := entry (';' entry)*
//   entry   := name '=' action
//   action  := 'off'                fail never (removes the entry)
//            | 'error'              return-error on every hit
//            | 'once'               return-error on the first hit only
//            | 'every(N)'           return-error on hits N, 2N, 3N, ...
//            | 'short(N)'           short-write: cap the write at N bytes
//            | 'crash'              crash the process on the first hit
//            | 'crash(N)'           crash the process on the Nth hit
//            | 'p(X)'               return-error with probability X, from
//                                   a per-site PRNG seeded by BB_CHAOS_SEED
//
// "Crash" is a hard ::_exit(kCrashExitCode) at the evaluation site — no
// atexit handlers, no buffers flushed — which is what makes it a faithful
// stand-in for SIGKILL / power loss in the chaos harness.  Every other
// action only *reports* the hit; the call site decides what an injected
// error means (a failed write, a dropped connection, a cache miss).
//
// When the build compiles failpoints out (BB_FAILPOINTS_COMPILED unset,
// the default for Release builds unless -DBB_FAILPOINTS_ENABLED=ON),
// failpoint() is a constant no-hit and the whole mechanism folds away.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace bb::util {

/// What an evaluated failpoint asks the call site to do.  Crash actions
/// never return (the process exits inside evaluate).
struct FailpointHit {
  enum class Kind {
    kNone,        ///< proceed normally
    kError,       ///< fail this operation
    kShortWrite,  ///< write at most `arg` bytes, then fail
  };
  Kind kind = Kind::kNone;
  std::uint64_t arg = 0;
  explicit operator bool() const { return kind != Kind::kNone; }
};

class Failpoints {
 public:
  /// The exit status of a crash action: 128 + SIGKILL, so a forked
  /// daemon killed by a failpoint looks exactly like a kill -9 to the
  /// supervising harness.
  static constexpr int kCrashExitCode = 137;

  /// True when the build carries the failpoint machinery (tests skip
  /// themselves when it is compiled out).
  static bool compiled_in();

  /// Replaces the whole table with `spec` (the BB_FAILPOINTS grammar
  /// above).  Returns false and fills `error` on a malformed spec; the
  /// previous table is kept in that case.  An empty spec clears.
  static bool configure(std::string_view spec, std::string* error = nullptr);

  /// Sets or replaces one failpoint ("off" removes it).  Returns false
  /// on a malformed action.
  static bool set(std::string_view name, std::string_view action,
                  std::string* error = nullptr);

  /// Removes every failpoint (the fast path goes back to one load).
  static void clear();

  /// Seed for the p(X) per-site PRNGs; also settable via BB_CHAOS_SEED.
  static void set_seed(std::uint64_t seed);

  /// How many times the named site was evaluated / how many times it
  /// fired.  Zero for unknown names.  Test/diagnostic use.
  static std::uint64_t hits(std::string_view name);
  static std::uint64_t triggers(std::string_view name);

  /// Slow path: look the site up, count the hit, decide.  Call through
  /// failpoint() below, never directly.
  static FailpointHit evaluate(std::string_view name);

#if BB_FAILPOINTS_COMPILED
  static bool active() { return active_.load(std::memory_order_relaxed); }

 private:
  friend struct FailpointsEnvInit;
  static std::atomic<bool> active_;
#else
  static constexpr bool active() { return false; }
#endif
};

/// The inline site check: one relaxed atomic load when no failpoint is
/// configured, a mutex-guarded table lookup when any is.
inline FailpointHit failpoint(std::string_view name) {
#if BB_FAILPOINTS_COMPILED
  if (Failpoints::active()) return Failpoints::evaluate(name);
#endif
  (void)name;
  return {};
}

}  // namespace bb::util
