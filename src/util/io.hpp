// Small file-system helpers shared by the benchmark and tool binaries.
#pragma once

#include <string>

namespace bb::util {

/// Writes `content` to `path` atomically and durably: the data goes to a
/// sibling temporary file first, is fsync'd, and is renamed over the
/// target only after a successful write+close (the parent directory is
/// then fsync'd best-effort), so neither an interrupted run nor a crash
/// right after the rename can leave a truncated artifact behind (CI
/// uploads these files directly and the disk cache trusts any file it
/// finds to be complete).  Throws std::runtime_error when the temporary
/// cannot be written or the rename fails.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace bb::util
