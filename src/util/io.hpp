// Small file-system helpers shared by the benchmark and tool binaries.
#pragma once

#include <string>

namespace bb::util {

/// Writes `content` to `path` atomically: the data goes to a sibling
/// temporary file first and is renamed over the target only after a
/// successful write+close, so an interrupted run can never leave a
/// truncated artifact behind (CI uploads these files directly).
/// Throws std::runtime_error when the temporary cannot be written or the
/// rename fails.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace bb::util
