// Small file-system and file-descriptor helpers shared by the service
// tier, the benchmark runners and the tool binaries.
#pragma once

#include <string>
#include <string_view>

#include <poll.h>
#include <sys/types.h>

namespace bb::util {

/// Writes `content` to `path` atomically and durably: the data goes to a
/// sibling temporary file first, is fsync'd, and is renamed over the
/// target only after a successful write+close; the parent directory is
/// then fsync'd so the rename itself survives a crash (a rename that
/// only lives in the directory's page cache can be lost on power
/// failure, resurrecting the old file or no file at all — see
/// DESIGN.md §15).  Neither an interrupted run nor a crash right after
/// the rename can leave a truncated artifact behind (CI uploads these
/// files directly and the disk cache trusts any file it finds to be
/// complete).  Throws std::runtime_error when the temporary cannot be
/// written or the rename fails.
///
/// Failpoints (util/failpoint.hpp): io.wfa.open, io.wfa.write (error and
/// short-write), io.wfa.fsync, io.wfa.rename inject errors; the crash
/// sites io.wfa.crash_before_rename / io.wfa.crash_after_rename bracket
/// the publication step for crash-consistency testing.
void write_file_atomic(const std::string& path, const std::string& content);

// ---- EINTR-retrying descriptor wrappers ----
//
// Every blocking descriptor call in the service path goes through these
// (TEMP_FAILURE_RETRY-style): a signal delivered to a serving thread —
// SIGTERM starting a graceful drain is routine — must never surface as
// a phantom I/O error.  Each returns what the underlying call returns,
// with EINTR retried internally; other errors pass through in errno.

ssize_t retry_read(int fd, void* buf, std::size_t count);
ssize_t retry_write(int fd, const void* buf, std::size_t count);
ssize_t retry_recv(int fd, void* buf, std::size_t count, int flags);
ssize_t retry_send(int fd, const void* buf, std::size_t count, int flags);

/// poll() with EINTR retried.  The timeout is NOT re-armed on retry
/// (the wait can stretch past `timeout_ms` by the interrupted fraction);
/// callers that need a hard deadline already loop on a steady clock.
int retry_poll(pollfd* fds, nfds_t nfds, int timeout_ms);

/// Sends all of `data` on a stream socket (MSG_NOSIGNAL, EINTR retried).
/// Returns false when the peer is gone or the kernel refuses; consults
/// the serve.send failpoint so the chaos harness can sever replies.
bool send_all(int fd, std::string_view data);

}  // namespace bb::util
