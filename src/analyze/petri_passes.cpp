// Structural Petri-net passes (PN001-PN004), computed without ever
// enumerating markings.
//
// The central object is the coverability fixpoint: a place is *coverable*
// if it is initially marked or is in the post-set of some fireable
// transition, and a transition is *fireable* if every pre-place is
// coverable.  Iterating to a fixpoint over-approximates reachability (it
// ignores token counts and conflicts), so:
//
//   - a transition NOT fireable at the fixpoint is dead in every true
//     reachable marking (PN001);
//   - the set of non-coverable places is exactly the maximal unmarked
//     siphon: any transition putting a token into the set would be
//     fireable, so it must also consume from the set — tokens can never
//     enter it (PN002).
//
// PN003 is the other half of the Commoner condition: the maximal trap
// (computed by pruning places whose tokens a transition can consume
// without returning one to the set) should contain an initially marked
// place in a live free-choice net; when no marked trap exists, every
// token can drain and the net can halt.  PN004 flags transitions with an
// empty pre-set, which fire unboundedly and break the 1-safe discipline
// the rest of the verification flow assumes.
#include <string>
#include <vector>

#include "src/analyze/analyze.hpp"

namespace bb::analyze {

namespace {

std::string transition_name(const petri::Transition& t, int id) {
  return t.label.empty() ? "t" + std::to_string(id) + " (tau)"
                         : "t" + std::to_string(id) + " '" + t.label + "'";
}

std::string place_list(const std::vector<int>& places, std::size_t cap = 12) {
  std::string s;
  std::size_t shown = 0;
  for (const int p : places) {
    if (shown == cap) {
      s += ", ...";
      break;
    }
    if (!s.empty()) s += ", ";
    s += "p" + std::to_string(p);
    ++shown;
  }
  return s;
}

}  // namespace

lint::Report analyze_petri(const petri::PetriNet& net, std::string_view name,
                           const lint::LintOptions& options) {
  lint::Report report = lint::make_report(options);
  const std::string where =
      name.empty() ? std::string("net") : std::string(name);
  const auto& transitions = net.transitions();
  const int num_places = net.num_places();

  // PN004: empty pre-sets.
  for (std::size_t t = 0; t < transitions.size(); ++t) {
    if (transitions[t].pre.empty()) {
      report.add("PN004",
                 where + ": " +
                     transition_name(transitions[t], static_cast<int>(t)),
                 "has no pre-places, so it is enabled in every marking and "
                 "fires unboundedly; the 1-safe token discipline the "
                 "verifier assumes cannot hold");
    }
  }

  // Coverability fixpoint.
  std::vector<char> coverable(num_places, 0);
  for (int p = 0; p < num_places; ++p) {
    coverable[p] = net.initial_marking()[p] ? 1 : 0;
  }
  std::vector<char> fireable(transitions.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t t = 0; t < transitions.size(); ++t) {
      if (fireable[t]) continue;
      bool ok = true;
      for (const int p : transitions[t].pre) ok = ok && coverable[p] != 0;
      if (!ok) continue;
      fireable[t] = 1;
      changed = true;
      for (const int p : transitions[t].post) coverable[p] = 1;
    }
  }

  // PN001: dead transitions.
  for (std::size_t t = 0; t < transitions.size(); ++t) {
    if (fireable[t]) continue;
    std::vector<int> starved;
    for (const int p : transitions[t].pre) {
      if (!coverable[p]) starved.push_back(p);
    }
    report.add("PN001",
               where + ": " +
                   transition_name(transitions[t], static_cast<int>(t)),
               "can never fire: pre-place(s) " + place_list(starved) +
                   " are not coverable from the initial marking (structural "
                   "fixpoint, independent of the reachability graph)");
  }

  // PN002: the non-coverable places form the maximal unmarked siphon.
  std::vector<int> siphon;
  for (int p = 0; p < num_places; ++p) {
    if (!coverable[p]) siphon.push_back(p);
  }
  if (!siphon.empty()) {
    report.add("PN002", where + ": " + std::to_string(siphon.size()) +
                   " place(s)",
               "place set {" + place_list(siphon) +
                   "} is an unmarked siphon: every transition feeding it "
                   "also consumes from it, so it can never acquire a token "
                   "and every consumer of these places is structurally "
                   "deadlocked");
  }

  // PN003: maximal trap by pruning.  Remove p from the candidate set S
  // while some transition consumes p but returns nothing to S; the
  // surviving set is the maximal trap (tokens inside can never all
  // leave).  No initially marked place in it => every token can drain.
  if (num_places > 0 && !transitions.empty()) {
    std::vector<char> in_trap(num_places, 1);
    bool pruned = true;
    while (pruned) {
      pruned = false;
      for (const petri::Transition& t : transitions) {
        bool returns = false;
        for (const int p : t.post) returns = returns || in_trap[p] != 0;
        if (returns) continue;
        for (const int p : t.pre) {
          if (in_trap[p]) {
            in_trap[p] = 0;
            pruned = true;
          }
        }
      }
    }
    bool marked_trap = false;
    for (int p = 0; p < num_places; ++p) {
      marked_trap = marked_trap || (in_trap[p] && net.initial_marking()[p]);
    }
    if (!marked_trap) {
      report.add("PN003", where,
                 "no initially marked trap exists: every token in the net "
                 "can be consumed without replacement, so the net can halt "
                 "(Commoner's liveness condition fails structurally)");
    }
  }

  return report;
}

}  // namespace bb::analyze
