// Semantic audit of technology-mapped netlists (NL005-NL007).
//
// The tech mapper may only apply hazard-non-increasing decompositions to
// the hazard-free two-level covers (AND/OR associativity and De Morgan
// re-expression, Section 5).  Such networks have a checkable structural
// invariant: every internal net of an output/state-bit cone computes
// either
//   (a) a partial product of ONE cover cube — as a function, a cube c
//       with c ⊇ q for some cover product q — possibly complemented
//       (AND/NAND trees, shared literal inverters), or
//   (b) the union of a SUBSET of the cover's products, possibly
//       complemented (OR accumulation, NAND-of-NANDs planes),
// and the cone root must equal the two-level function exactly.
//
// NL005 reports nets violating the invariant (an algebraically factored
// or otherwise re-synthesized decomposition can reintroduce hazards the
// two-level cover was built to avoid); NL006 reports cones whose root
// function differs from the synthesized cover (a mapping bug, caught
// with a concrete counterexample minterm); NL007 notes cones too large
// to evaluate exhaustively under LintOptions::cone_eval_limit.
//
// The exhaustive sweep runs over the cone's SUPPORT — the variables the
// cover fixes plus the variables the cone actually reads — not the full
// variable space, so one-hot machines with dozens of state bits stay
// well inside the evaluation limit.
#include <cstddef>
#include <string>
#include <vector>

#include "src/analyze/analyze.hpp"
#include "src/logic/cover.hpp"
#include "src/netlist/analysis.hpp"

namespace bb::analyze {

namespace {

/// True when `table` (indexed by enumeration row) is a cube function
/// over the support; `rows_bits[row]` is the full variable assignment of
/// the row (non-support variables held at 0).  On success `*out` is the
/// cube, with non-support variables left unconstrained.
bool is_cube_function(const std::vector<bool>& table,
                      const std::vector<std::vector<bool>>& rows_bits,
                      const std::vector<std::size_t>& support,
                      logic::Cube* out) {
  bool any = false;
  logic::Cube cube;
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (!table[row]) continue;
    const logic::Cube m = logic::Cube::from_minterm(rows_bits[row]);
    cube = any ? cube.supercube(m) : m;
    any = true;
  }
  if (!any) return false;  // constant 0: handled by the caller
  // The sweep held non-support variables at 0, which the supercube then
  // fixes; the cone cannot depend on them, so they are really free.
  std::vector<char> in_support(cube.size(), 0);
  for (const std::size_t v : support) in_support[v] = 1;
  for (std::size_t v = 0; v < cube.size(); ++v) {
    if (!in_support[v]) cube.set(v, logic::Lit::kDash);
  }
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (cube.contains_minterm(rows_bits[row]) !=
        static_cast<bool>(table[row])) {
      return false;
    }
  }
  *out = cube;
  return true;
}

/// True when `table` is exactly the union of a subset of the cover's
/// products: collect the products fully inside the ON-set, then check
/// they cover every ON row.
bool is_union_of_products(const std::vector<bool>& table,
                          const std::vector<std::vector<bool>>& rows_bits,
                          const logic::Cover& cover) {
  std::vector<const logic::Cube*> inside;
  for (const logic::Cube& q : cover.cubes()) {
    bool contained = true;
    for (std::size_t row = 0; row < table.size() && contained; ++row) {
      if (table[row]) continue;
      contained = !q.contains_minterm(rows_bits[row]);
    }
    if (contained) inside.push_back(&q);
  }
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (!table[row]) continue;
    bool covered = false;
    for (const logic::Cube* q : inside) {
      covered = covered || q->contains_minterm(rows_bits[row]);
    }
    if (!covered) return false;
  }
  return true;
}

std::vector<bool> complemented(const std::vector<bool>& table) {
  std::vector<bool> c(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) c[i] = !table[i];
  return c;
}

std::string minterm_string(const std::vector<bool>& bits) {
  std::string s;
  for (const bool b : bits) s += b ? '1' : '0';
  return s;
}

bool is_constant(const std::vector<bool>& table) {
  for (std::size_t i = 1; i < table.size(); ++i) {
    if (table[i] != table[0]) return false;
  }
  return true;
}

}  // namespace

lint::Report analyze_mapped(const netlist::GateNetlist& net,
                            const minimalist::SynthesizedController& ctrl,
                            std::string_view prefix,
                            const lint::LintOptions& options) {
  lint::Report report = lint::make_report(options);
  const std::vector<int> driver = net.driver_table();
  const std::string pfx(prefix);

  // Variable nets in the controller's order (inputs..., state bits...).
  std::vector<int> var_net(ctrl.num_vars, -1);
  for (std::size_t i = 0; i < ctrl.inputs.size(); ++i) {
    var_net[i] = net.net(ctrl.inputs[i]);
  }
  for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
    const std::string fb =
        pfx.empty() ? ctrl.state_bits[s] : pfx + "/" + ctrl.state_bits[s];
    var_net[ctrl.inputs.size() + s] = net.net(fb);
  }

  for (std::size_t fi = 0; fi < ctrl.functions.size(); ++fi) {
    const auto& f = ctrl.functions[fi];
    const std::string fn_label =
        "function '" + f.name + "'" + (pfx.empty() ? "" : " of " + pfx);

    // Locate the cone root: the net feeding the DOUT output-commit cell
    // (outputs) or the DEL feedback element (state bits); netlists built
    // without the commit/delay cells are audited from the named net
    // itself.
    const std::string root_name =
        fi < ctrl.outputs.size()
            ? ctrl.outputs[fi]
            : (pfx.empty() ? ctrl.state_bits[fi - ctrl.outputs.size()]
                           : pfx + "/" + ctrl.state_bits[fi -
                                                         ctrl.outputs.size()]);
    const int named = net.net(root_name);
    if (named < 0) {
      report.add("NL006", fn_label,
                 "net '" + root_name + "' not found in the netlist; the "
                 "mapped controller does not drive this function");
      continue;
    }
    int root = named;
    const int g = driver[named];
    if (g >= 0 && netlist::is_cycle_breaker(net.gates()[g]) &&
        !net.gates()[g].fanins.empty()) {
      root = net.gates()[g].fanins[0];
    }

    const netlist::Cone cone = netlist::extract_cone(net, root);
    if (cone.truncated) {
      report.add("NL007", fn_label,
                 "cone exceeds the extraction gate limit; NL005/NL006 "
                 "were not checked");
      continue;
    }

    // Every leaf must be one of the controller's variable nets; the
    // sweep's support is the union of the cover's fixed variables and
    // the cone's leaf variables.
    std::vector<char> in_support(ctrl.num_vars, 0);
    for (const logic::Cube& q : f.products.cubes()) {
      for (std::size_t v = 0; v < ctrl.num_vars; ++v) {
        if (q[v] != logic::Lit::kDash) in_support[v] = 1;
      }
    }
    bool leaves_ok = true;
    std::vector<int> leaf_var(cone.leaves.size(), -1);
    for (std::size_t li = 0; li < cone.leaves.size(); ++li) {
      for (std::size_t v = 0; v < ctrl.num_vars; ++v) {
        if (var_net[v] == cone.leaves[li]) {
          leaf_var[li] = static_cast<int>(v);
          in_support[v] = 1;
          break;
        }
      }
      if (leaf_var[li] < 0) {
        report.add("NL006", fn_label,
                   "cone reads net '" + net.net_name(cone.leaves[li]) +
                       "' which is not an input or state-feedback net of "
                       "the controller");
        leaves_ok = false;
      }
    }
    if (!leaves_ok) continue;

    std::vector<std::size_t> support;
    for (std::size_t v = 0; v < ctrl.num_vars; ++v) {
      if (in_support[v]) support.push_back(v);
    }
    if (support.size() >= 8 * sizeof(std::size_t) - 1 ||
        (std::size_t{1} << support.size()) > options.cone_eval_limit) {
      report.add("NL007", fn_label,
                 "exhaustive audit needs 2^" +
                     std::to_string(support.size()) +
                     " evaluations over the cone support, above the "
                     "configured limit of " +
                     std::to_string(options.cone_eval_limit) +
                     "; NL005/NL006 were not checked for this cone");
      continue;
    }
    const std::size_t rows = std::size_t{1} << support.size();

    // One sweep over the support assignments: record the root and every
    // intermediate gate-output table, plus the reference cover value.
    std::vector<char> value(net.num_nets(), 0);
    std::vector<bool> root_table(rows, false);
    std::vector<std::vector<bool>> gate_tables(
        cone.gates.size(), std::vector<bool>(rows, false));
    std::vector<bool> ref_table(rows, false);
    std::vector<std::vector<bool>> rows_bits(
        rows, std::vector<bool>(ctrl.num_vars, false));
    for (std::size_t row = 0; row < rows; ++row) {
      std::vector<bool>& bits = rows_bits[row];
      for (std::size_t si = 0; si < support.size(); ++si) {
        bits[support[si]] = (row >> si) & 1u;
        value[var_net[support[si]]] = bits[support[si]] ? 1 : 0;
      }
      for (std::size_t gi = 0; gi < cone.gates.size(); ++gi) {
        const netlist::Gate& gate = net.gates()[cone.gates[gi]];
        const bool out = netlist::eval_gate(gate, value);
        value[gate.output] = out ? 1 : 0;
        gate_tables[gi][row] = out;
      }
      root_table[row] = value[root] != 0;
      ref_table[row] = logic::eval_cover(f.products, bits);
    }

    // NL006: the root must equal the synthesized two-level function.
    bool equal = true;
    for (std::size_t row = 0; row < rows && equal; ++row) {
      if (root_table[row] != ref_table[row]) {
        report.add("NL006", fn_label,
                   "mapped cone disagrees with the synthesized cover at "
                   "minterm " + minterm_string(rows_bits[row]) +
                       " (cone=" + (root_table[row] ? "1" : "0") +
                       ", cover=" + (ref_table[row] ? "1" : "0") +
                       "); the mapping changed the logic function");
        equal = false;
      }
    }

    // NL005: every intermediate net must fit a hazard-non-increasing
    // shape relative to this function's cover.
    for (std::size_t gi = 0; gi < cone.gates.size(); ++gi) {
      const std::vector<bool>& table = gate_tables[gi];
      if (is_constant(table)) continue;
      const std::vector<bool> comp = complemented(table);
      bool ok = false;
      logic::Cube cube;
      for (const std::vector<bool>* t : {&table, &comp}) {
        if (ok) break;
        if (is_cube_function(*t, rows_bits, support, &cube)) {
          for (const logic::Cube& q : f.products.cubes()) {
            ok = ok || cube.contains(q);
          }
        }
        ok = ok || is_union_of_products(*t, rows_bits, f.products);
      }
      if (!ok) {
        const int out_net = net.gates()[cone.gates[gi]].output;
        report.add("NL005",
                   fn_label + ", net '" + net.net_name(out_net) + "'",
                   "computes neither a (complemented) partial product of a "
                   "single cover cube nor a (complemented) union of cover "
                   "products; this decomposition is not "
                   "hazard-non-increasing and can reintroduce hazards the "
                   "two-level cover avoided");
      }
    }
  }

  return report;
}

}  // namespace bb::analyze
