// Deep Burst-Mode legality (AN001-AN004).
//
// bm::validate checks the *edge-sequential* reading of a specification
// (polarity alternation, literal burst containment, exact entry
// valuations).  The synthesized implementation, however, is
// level-sensitive two-level logic: a product term fires when its trigger
// signals reach their target LEVELS, regardless of which edges got them
// there.  These passes re-examine the machine under that reading:
//
//   AN001  entry-point uniqueness projected onto the signals a state's
//          outgoing arcs actually monitor.  BM006 compares whole
//          valuations; a conflict on a signal no arc reads is benign,
//          while a conflict on a monitored signal makes the same logic
//          term see different residual conditions depending on history.
//
//   AN002  level-sensitive distinguishability.  An input edge already at
//          its target level on state entry is pre-satisfied: the logic
//          only waits for the REMAINING edges.  Two sibling bursts that
//          are incomparable as edge sets can therefore collapse into
//          subset (or equal) residuals — the smaller arc fires while the
//          larger burst is still arriving, exactly the failure the
//          maximal set property exists to prevent.  Sharing one wire with
//          opposite polarities is flagged too: from a single entry
//          valuation only one polarity can occur, so the choice is
//          decided by the spec, not the environment.
//
//   AN003  output-burst consistency: an output edge whose wire is already
//          at the target level when the burst fires produces no
//          observable event (the environment waits forever), and
//          effectively-equal sibling triggers must drive equal responses.
//
//   AN004  dead or incomplete behaviour (warnings): an arc whose input
//          burst contains a pre-satisfied edge can never fire as
//          specified, and a wire used with a single polarity on a cycle
//          of the state graph can fire at most once over the machine's
//          lifetime.
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analyze/analyze.hpp"

namespace bb::analyze {

namespace {

using Valuation = std::map<std::string, bool>;

std::string arc_name(const bm::Arc& a) {
  return "arc " + std::to_string(a.from) + "->" + std::to_string(a.to);
}

std::string edge_name(const ch::Transition& t) {
  return t.signal + (t.rising ? "+" : "-");
}

/// Signal -> target level of an input burst's *effective* (still
/// toggling) edges, given the state's entry valuation.
std::map<std::string, bool> effective_burst(const bm::Burst& burst,
                                            const Valuation& entry) {
  std::map<std::string, bool> eff;
  for (const ch::Transition& t : burst.transitions) {
    const auto it = entry.find(t.signal);
    const bool current = it != entry.end() && it->second;
    if (current != t.rising) eff[t.signal] = t.rising;
  }
  return eff;
}

std::string burst_set_string(const std::map<std::string, bool>& eff) {
  std::string s = "{";
  bool first = true;
  for (const auto& [signal, rising] : eff) {
    if (!first) s += " ";
    first = false;
    s += signal + (rising ? "+" : "-");
  }
  return s + "}";
}

}  // namespace

lint::Report analyze_bm(const bm::Spec& spec,
                        const lint::LintOptions& options) {
  lint::Report report = lint::make_report(options);

  // Entry valuations by BFS from the initial state (all signals low), the
  // same traversal bm::validate uses, but keeping EVERY distinct
  // valuation a state is entered with instead of only the first.
  std::set<std::string> signals;
  for (const bm::Arc& a : spec.arcs) {
    for (const ch::Transition& t : a.in_burst.transitions) {
      signals.insert(t.signal);
    }
    for (const ch::Transition& t : a.out_burst.transitions) {
      signals.insert(t.signal);
    }
  }
  Valuation all_low;
  for (const std::string& s : signals) all_low[s] = false;

  std::map<int, std::vector<Valuation>> entries;
  std::deque<int> queue;
  entries[spec.initial_state].push_back(all_low);
  queue.push_back(spec.initial_state);
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    // Propagate from the first (canonical) entry valuation only; extra
    // valuations are recorded for AN001 but not expanded, so the
    // traversal terminates on inconsistent machines too.
    const Valuation& entry = entries[s].front();
    for (const bm::Arc* a : spec.arcs_from(s)) {
      Valuation vals = entry;
      for (const ch::Transition& t : a->in_burst.transitions) {
        vals[t.signal] = t.rising;
      }
      for (const ch::Transition& t : a->out_burst.transitions) {
        vals[t.signal] = t.rising;
      }
      auto& dest = entries[a->to];
      const bool first_visit = dest.empty();
      bool known = false;
      for (const Valuation& v : dest) known = known || v == vals;
      if (!known) dest.push_back(std::move(vals));
      if (first_visit) queue.push_back(a->to);
    }
  }

  // AN001: conflicting entry valuations of *monitored* signals.
  for (const auto& [state, vals] : entries) {
    if (vals.size() < 2) continue;
    std::set<std::string> monitored;
    for (const bm::Arc* a : spec.arcs_from(state)) {
      for (const ch::Transition& t : a->in_burst.transitions) {
        monitored.insert(t.signal);
      }
    }
    std::set<std::string> conflicting;
    for (const std::string& sig : monitored) {
      const auto it0 = vals.front().find(sig);
      const bool v0 = it0 != vals.front().end() && it0->second;
      for (std::size_t i = 1; i < vals.size(); ++i) {
        const auto it = vals[i].find(sig);
        const bool vi = it != vals[i].end() && it->second;
        if (vi != v0) conflicting.insert(sig);
      }
    }
    if (conflicting.empty()) continue;
    std::string who;
    for (const std::string& sig : conflicting) {
      if (!who.empty()) who += ", ";
      who += sig;
    }
    report.add("AN001", "state " + std::to_string(state),
               "entered with " + std::to_string(vals.size()) +
                   " distinct valuations that disagree on monitored "
                   "signal(s) " + who +
                   "; the state's trigger terms see different residual "
                   "conditions depending on how it was reached "
                   "(fundamental-mode entry points must be unique)");
  }

  // Per-state checks against the canonical entry valuation.
  for (const auto& [state, vals] : entries) {
    const Valuation& entry = vals.front();
    const auto arcs = spec.arcs_from(state);

    struct Effective {
      const bm::Arc* arc;
      std::map<std::string, bool> burst;
    };
    std::vector<Effective> eff;
    for (const bm::Arc* a : arcs) {
      auto e = effective_burst(a->in_burst, entry);

      // AN004: pre-satisfied trigger edges make the arc unfireable as an
      // edge sequence (and AN002 below reports any level-sensitive
      // early-firing hazard the residual creates).
      if (e.size() < a->in_burst.size()) {
        std::string dead;
        for (const ch::Transition& t : a->in_burst.transitions) {
          if (e.count(t.signal)) continue;
          if (!dead.empty()) dead += ", ";
          dead += edge_name(t);
        }
        report.add("AN004", arc_name(*a),
                   "input edge(s) " + dead +
                       " are already at their target level when state " +
                       std::to_string(state) +
                       " is entered; the specified edge(s) can never occur "
                       "and the arc cannot fire as written");
      }
      eff.push_back(Effective{a, std::move(e)});
    }

    for (std::size_t i = 0; i < eff.size(); ++i) {
      for (std::size_t j = i + 1; j < eff.size(); ++j) {
        const auto& bi = eff[i].burst;
        const auto& bj = eff[j].burst;

        // AN002: one wire, opposite polarities across siblings.
        for (const auto& [signal, rising] : bi) {
          const auto it = bj.find(signal);
          if (it != bj.end() && it->second != rising) {
            report.add("AN002", "state " + std::to_string(state),
                       arc_name(*eff[i].arc) + " waits for " + signal +
                           (rising ? "+" : "-") + " while " +
                           arc_name(*eff[j].arc) + " waits for " + signal +
                           (it->second ? "+" : "-") +
                           "; from one entry valuation only one polarity "
                           "can occur, so the choice is predetermined");
          }
        }

        const auto subset = [](const std::map<std::string, bool>& a,
                               const std::map<std::string, bool>& b) {
          for (const auto& [signal, rising] : a) {
            const auto it = b.find(signal);
            if (it == b.end() || it->second != rising) return false;
          }
          return true;
        };
        const bool i_in_j = subset(bi, bj);
        const bool j_in_i = subset(bj, bi);
        if (i_in_j && j_in_i) {
          // Effectively equal triggers: the logic cannot tell the arcs
          // apart, so diverging responses are a contradiction (AN003)
          // and equal responses a redundancy (AN002).
          const bool same_response =
              eff[i].arc->to == eff[j].arc->to &&
              eff[i].arc->out_burst == eff[j].arc->out_burst;
          report.add(same_response ? "AN002" : "AN003",
                     "state " + std::to_string(state),
                     arc_name(*eff[i].arc) + " and " + arc_name(*eff[j].arc) +
                         " have the same effective trigger " +
                         burst_set_string(bi) +
                         (same_response
                              ? "; the arcs are indistinguishable duplicates"
                              : " but diverging responses; the "
                                "level-sensitive logic cannot implement "
                                "both"));
        } else if (i_in_j || j_in_i) {
          const Effective& small = i_in_j ? eff[i] : eff[j];
          const Effective& large = i_in_j ? eff[j] : eff[i];
          report.add("AN002", "state " + std::to_string(state),
                     "effective trigger " + burst_set_string(small.burst) +
                         " of " + arc_name(*small.arc) +
                         " is contained in " +
                         burst_set_string(large.burst) + " of " +
                         arc_name(*large.arc) +
                         "; with pre-satisfied edges discounted, the "
                         "smaller arc fires while the larger burst is "
                         "still arriving (level-sensitive maximal set "
                         "violation)");
        }
      }
    }

    // AN003: output edges that do not toggle at their firing point.
    for (const bm::Arc* a : arcs) {
      Valuation fired = entry;
      for (const ch::Transition& t : a->in_burst.transitions) {
        fired[t.signal] = t.rising;
      }
      for (const ch::Transition& t : a->out_burst.transitions) {
        const auto it = fired.find(t.signal);
        const bool current = it != fired.end() && it->second;
        if (current == t.rising) {
          report.add("AN003", arc_name(*a),
                     "output edge " + edge_name(t) + " fires while '" +
                         t.signal + "' is already " + (current ? "1" : "0") +
                         "; the environment observes no event and the "
                         "handshake stalls");
        }
      }
    }
  }

  // AN004: single-polarity wires on cycles.  A wire that only ever rises
  // (or only falls) can fire at most once, so any cyclic behaviour that
  // includes it stalls on the second lap.  Find states on cycles first
  // (a state is on a cycle iff it reaches itself through at least one
  // arc).
  std::map<int, std::vector<int>> succ;
  for (const bm::Arc& a : spec.arcs) succ[a.from].push_back(a.to);
  const auto on_cycle = [&](int s) {
    std::set<int> seen;
    std::deque<int> work(succ[s].begin(), succ[s].end());
    while (!work.empty()) {
      const int v = work.front();
      work.pop_front();
      if (v == s) return true;
      if (!seen.insert(v).second) continue;
      for (const int n : succ[v]) work.push_back(n);
    }
    return false;
  };
  std::map<std::string, std::pair<bool, bool>> polarity;  // rising/falling
  std::map<std::string, bool> cyclic_use;
  for (const bm::Arc& a : spec.arcs) {
    if (!entries.count(a.from)) continue;  // unreachable: BM007 territory
    const bool cyc = on_cycle(a.from) && on_cycle(a.to);
    const auto use = [&](const ch::Transition& t) {
      auto& [rise, fall] = polarity[t.signal];
      (t.rising ? rise : fall) = true;
      if (cyc) cyclic_use[t.signal] = true;
    };
    for (const ch::Transition& t : a.in_burst.transitions) use(t);
    for (const ch::Transition& t : a.out_burst.transitions) use(t);
  }
  for (const auto& [signal, pol] : polarity) {
    if (pol.first && pol.second) continue;
    if (!cyclic_use[signal]) continue;
    report.add("AN004", "signal '" + signal + "'",
               std::string("only ever ") +
                   (pol.first ? "rises" : "falls") +
                   " yet is used on a cycle of the state graph; after one "
                   "traversal the wire is stuck and every later lap "
                   "repeats an impossible edge");
  }

  return report;
}

}  // namespace bb::analyze
