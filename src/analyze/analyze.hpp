// Whole-program semantic analysis passes (the deep end of the lint
// engine).  Where src/lint checks per-layer well-formedness, these passes
// prove or refute semantic properties:
//
//   analyze_bm      fundamental-mode legality of a Burst-Mode machine
//                   beyond bm::validate: entry-point uniqueness projected
//                   onto the signals each state actually monitors (AN001),
//                   level-sensitive distinguishability of sibling input
//                   bursts (AN002), output-burst consistency (AN003), and
//                   dead / single-polarity behaviour (AN004).
//
//   analyze_petri   structural Petri-net checks computed WITHOUT building
//                   the reachability graph: dead transitions via the
//                   coverability fixpoint (PN001), unmarked siphons =
//                   structural deadlock (PN002), the Commoner liveness
//                   hint "no initially marked trap" (PN003), and empty
//                   pre-set transitions that break 1-safety (PN004).
//
//   analyze_mapped  a semantic audit of the technology-mapped netlist
//                   against its synthesized two-level controller: every
//                   combinational cone net must compute a (complemented)
//                   sub-cube or a (complemented) union of cover products
//                   — the hazard-non-increasing decompositions (NL005) —
//                   and the cone roots must equal the two-level functions
//                   exactly (NL006).  Cones too large to evaluate
//                   exhaustively are skipped with an NL007 note.
//
// All passes report through lint::Report and honour LintOptions
// (suppression, severity overrides, baseline).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/bm/spec.hpp"
#include "src/lint/lint.hpp"
#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"
#include "src/petri/net.hpp"

namespace bb::analyze {

/// One registered pass, for documentation and driver enumeration.
struct PassInfo {
  std::string_view name;    ///< e.g. "bm-legality"
  std::string_view layer;   ///< the IR it runs on
  std::string_view rules;   ///< rule ids it can emit, comma separated
  std::string_view summary;
};

/// The registry of semantic passes, in pipeline order.
const std::vector<PassInfo>& all_passes();

/// Deep Burst-Mode legality (AN001-AN004).  Assumes the spec already
/// passed bm::validate; findings here are conditions validate cannot see
/// (level-sensitive effective bursts, projected entry valuations).
lint::Report analyze_bm(const bm::Spec& spec,
                        const lint::LintOptions& options = {});

/// Structural Petri-net passes (PN001-PN004).  `name` labels the net in
/// diagnostics (e.g. the controller it models).  Runs in time polynomial
/// in places + transitions; never enumerates markings.
lint::Report analyze_petri(const petri::PetriNet& net, std::string_view name,
                           const lint::LintOptions& options = {});

/// Semantic netlist audit (NL005-NL007) of the gates `prefix`/... mapped
/// from `ctrl` inside `net` (the techmap naming convention: output nets
/// are named after ctrl.outputs, state feedback nets
/// "<prefix>/<state_bit>").  Pass an empty prefix for netlists whose nets
/// carry the controller's own signal names.
lint::Report analyze_mapped(const netlist::GateNetlist& net,
                            const minimalist::SynthesizedController& ctrl,
                            std::string_view prefix,
                            const lint::LintOptions& options = {});

}  // namespace bb::analyze
