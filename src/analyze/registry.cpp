#include "src/analyze/analyze.hpp"

namespace bb::analyze {

const std::vector<PassInfo>& all_passes() {
  static const std::vector<PassInfo> passes = {
      {"bm-legality", "Burst-Mode specification (bm::Spec)",
       "AN001,AN002,AN003,AN004",
       "fundamental-mode legality under the level-sensitive reading: "
       "projected entry-point uniqueness, effective-burst "
       "distinguishability, output-burst consistency, dead behaviour"},
      {"petri-structural", "Petri net (petri::PetriNet)",
       "PN001,PN002,PN003,PN004",
       "structural liveness/safety without reachability: dead "
       "transitions, unmarked siphons, the marked-trap liveness hint, "
       "empty pre-sets"},
      {"netlist-semantic", "mapped gate netlist (netlist::GateNetlist)",
       "NL005,NL006,NL007",
       "exhaustive cone audit against the synthesized two-level cover: "
       "hazard-non-increasing decomposition shapes and functional "
       "equivalence"},
  };
  return passes;
}

}  // namespace bb::analyze
