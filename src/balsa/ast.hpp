// Abstract syntax for the mini-Balsa language (the balsa-c substitute).
//
// The language covers the constructs the paper's four evaluation designs
// need: procedures with sync/input/output ports, variables, sequential and
// parallel composition, loop / while / if / case, channel communication
// and assignment.  Widths are in bits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bb::balsa {

// ---- expressions ----

enum class BinOp { kAdd, kSub, kAnd, kOr, kXor, kEq, kNe, kLt, kLts, kShl,
                   kShr };
enum class UnOp { kNot, kNeg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kLiteral, kVar, kBinary, kUnary, kSlice };
  Kind kind = Kind::kLiteral;

  std::uint64_t literal = 0;        // kLiteral
  std::string var;                  // kVar
  BinOp bin_op = BinOp::kAdd;       // kBinary
  UnOp un_op = UnOp::kNot;          // kUnary
  int slice_hi = 0, slice_lo = 0;   // kSlice
  ExprPtr lhs, rhs;                 // children
};

// ---- commands ----

struct Command;
using CommandPtr = std::unique_ptr<Command>;

struct CaseAlt {
  std::vector<std::uint64_t> labels;  // empty = else
  CommandPtr body;
};

struct Command {
  enum class Kind {
    kSeq,       ///< children in sequence (";")
    kPar,       ///< children in parallel ("||")
    kLoop,      ///< loop body end
    kWhile,     ///< while guard then body end
    kIf,        ///< if guard then .. [else ..] end
    kCase,      ///< case selector of alts end
    kSync,      ///< sync channel
    kSend,      ///< channel <- expr
    kReceive,   ///< channel -> variable
    kAssign,    ///< variable := expr
    kContinue,  ///< no-op
  };
  Kind kind = Kind::kContinue;

  std::vector<CommandPtr> children;  // kSeq, kPar
  CommandPtr body;                   // kLoop, kWhile, kIf(then)
  CommandPtr else_body;              // kIf
  std::vector<CaseAlt> alts;         // kCase
  ExprPtr guard;                     // kWhile, kIf, kCase
  std::string channel;               // kSync, kSend, kReceive
  std::string var;                   // kReceive, kAssign
  ExprPtr value;                     // kSend, kAssign
};

// ---- declarations ----

enum class PortDir { kSync, kInput, kOutput };

struct Port {
  std::string name;
  PortDir dir = PortDir::kSync;
  int width = 0;  // 0 for sync
};

struct VariableDecl {
  std::string name;
  int width = 1;
};

struct Procedure {
  std::string name;
  std::vector<Port> ports;
  std::vector<VariableDecl> variables;
  CommandPtr body;
};

// ---- deep copies (the fuzz shrinker mutates throw-away clones) ----

ExprPtr clone(const Expr& e);
CommandPtr clone(const Command& c);
Procedure clone(const Procedure& p);

}  // namespace bb::balsa
