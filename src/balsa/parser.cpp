#include "src/balsa/parser.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace bb::balsa {

namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  std::uint64_t number = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) return;

    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      if (c == '0' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        pos_ += 2;
        while (pos_ < src_.size() &&
               std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
          const char d = src_[pos_++];
          value = value * 16 +
                  (std::isdigit(static_cast<unsigned char>(d))
                       ? d - '0'
                       : std::tolower(d) - 'a' + 10);
        }
      } else {
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          value = value * 10 + (src_[pos_++] - '0');
        }
      }
      current_.kind = Token::Kind::kNumber;
      current_.number = value;
      return;
    }
    // Multi-character symbols first.
    static const char* kSymbols[] = {":=", "<-", "->", "||", "/=", "<<",
                                     ">>", ".."};
    for (const char* s : kSymbols) {
      if (src_.substr(pos_, 2) == s) {
        current_.kind = Token::Kind::kSymbol;
        current_.text = s;
        pos_ += 2;
        return;
      }
    }
    current_.kind = Token::Kind::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  void skip_space() {
    while (pos_ < src_.size()) {
      if (src_.substr(pos_, 2) == "--") {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Procedure procedure() {
    Procedure p = procedure_decl();
    if (lex_.peek().kind != Token::Kind::kEnd) {
      fail("trailing input after final 'end'");
    }
    return p;
  }

  std::vector<Procedure> program() {
    std::vector<Procedure> procs;
    procs.push_back(procedure_decl());
    while (lex_.peek().kind != Token::Kind::kEnd) {
      Procedure p = procedure_decl();
      for (const Procedure& seen : procs) {
        if (seen.name == p.name) {
          fail("duplicate procedure '" + p.name + "'");
        }
      }
      procs.push_back(std::move(p));
    }
    return procs;
  }

 private:
  Procedure procedure_decl() {
    expect_ident("procedure");
    Procedure p;
    p.name = ident("procedure name");
    expect_symbol("(");
    if (!at_symbol(")")) {
      ports(p);
      while (accept_symbol(";")) ports(p);
    }
    expect_symbol(")");
    expect_ident("is");
    while (at_ident("variable")) variables(p);
    expect_ident("begin");
    p.body = command();
    expect_ident("end");
    return p;
  }

  [[noreturn]] void fail(const std::string& message) {
    throw ParseError("mini-balsa:" + std::to_string(lex_.peek().line) + ": " +
                     message);
  }

  bool at_ident(std::string_view kw) const {
    return lex_.peek().kind == Token::Kind::kIdent && lex_.peek().text == kw;
  }
  bool at_symbol(std::string_view s) const {
    return lex_.peek().kind == Token::Kind::kSymbol && lex_.peek().text == s;
  }
  bool accept_ident(std::string_view kw) {
    if (!at_ident(kw)) return false;
    lex_.take();
    return true;
  }
  bool accept_symbol(std::string_view s) {
    if (!at_symbol(s)) return false;
    lex_.take();
    return true;
  }
  void expect_ident(std::string_view kw) {
    if (!accept_ident(kw)) fail("expected '" + std::string(kw) + "'");
  }
  void expect_symbol(std::string_view s) {
    if (!accept_symbol(s)) fail("expected '" + std::string(s) + "'");
  }
  std::string ident(const std::string& what) {
    if (lex_.peek().kind != Token::Kind::kIdent) fail("expected " + what);
    return lex_.take().text;
  }
  std::uint64_t number() {
    if (lex_.peek().kind != Token::Kind::kNumber) fail("expected number");
    return lex_.take().number;
  }

  void ports(Procedure& p) {
    PortDir dir;
    if (accept_ident("sync")) {
      dir = PortDir::kSync;
    } else if (accept_ident("input")) {
      dir = PortDir::kInput;
    } else if (accept_ident("output")) {
      dir = PortDir::kOutput;
    } else {
      fail("expected sync/input/output port declaration");
      return;
    }
    std::vector<std::string> names{ident("port name")};
    while (accept_symbol(",")) names.push_back(ident("port name"));
    int width = 0;
    if (dir != PortDir::kSync) {
      expect_symbol(":");
      width = static_cast<int>(number());
      if (width < 1 || width > 64) fail("port width must be 1..64");
    }
    for (std::string& name : names) {
      p.ports.push_back(Port{std::move(name), dir, width});
    }
  }

  void variables(Procedure& p) {
    expect_ident("variable");
    std::vector<std::string> names{ident("variable name")};
    while (accept_symbol(",")) names.push_back(ident("variable name"));
    expect_symbol(":");
    const int width = static_cast<int>(number());
    if (width < 1 || width > 64) fail("variable width must be 1..64");
    for (std::string& name : names) {
      p.variables.push_back(VariableDecl{std::move(name), width});
    }
  }

  CommandPtr command() { return seq_command(); }

  CommandPtr seq_command() {
    auto first = par_command();
    if (!at_symbol(";")) return first;
    auto seq = std::make_unique<Command>();
    seq->kind = Command::Kind::kSeq;
    seq->children.push_back(std::move(first));
    while (accept_symbol(";")) seq->children.push_back(par_command());
    return seq;
  }

  CommandPtr par_command() {
    auto first = prim_command();
    if (!at_symbol("||")) return first;
    auto par = std::make_unique<Command>();
    par->kind = Command::Kind::kPar;
    par->children.push_back(std::move(first));
    while (accept_symbol("||")) par->children.push_back(prim_command());
    return par;
  }

  CommandPtr prim_command() {
    auto cmd = std::make_unique<Command>();
    if (accept_symbol("(")) {
      auto inner = command();
      expect_symbol(")");
      return inner;
    }
    if (accept_ident("loop")) {
      cmd->kind = Command::Kind::kLoop;
      cmd->body = command();
      expect_ident("end");
      return cmd;
    }
    if (accept_ident("while")) {
      cmd->kind = Command::Kind::kWhile;
      cmd->guard = expr();
      expect_ident("then");
      cmd->body = command();
      expect_ident("end");
      return cmd;
    }
    if (accept_ident("if")) {
      cmd->kind = Command::Kind::kIf;
      cmd->guard = expr();
      expect_ident("then");
      cmd->body = command();
      if (accept_ident("else")) cmd->else_body = command();
      expect_ident("end");
      return cmd;
    }
    if (accept_ident("case")) {
      cmd->kind = Command::Kind::kCase;
      cmd->guard = expr();
      expect_ident("of");
      while (true) {
        CaseAlt alt;
        if (accept_ident("else")) {
          alt.body = command();
          cmd->alts.push_back(std::move(alt));
          break;
        }
        alt.labels.push_back(number());
        while (accept_symbol(",")) alt.labels.push_back(number());
        expect_symbol(":");
        alt.body = command();
        cmd->alts.push_back(std::move(alt));
        // '|' separates alternatives; a trailing else may follow directly.
        if (accept_symbol("|") || at_ident("else")) continue;
        break;
      }
      expect_ident("end");
      return cmd;
    }
    if (accept_ident("sync")) {
      cmd->kind = Command::Kind::kSync;
      cmd->channel = ident("channel name");
      return cmd;
    }
    if (accept_ident("continue")) {
      cmd->kind = Command::Kind::kContinue;
      return cmd;
    }
    // channel <- expr | channel -> var | var := expr
    const std::string name = ident("command");
    if (accept_symbol("<-")) {
      cmd->kind = Command::Kind::kSend;
      cmd->channel = name;
      cmd->value = expr();
      return cmd;
    }
    if (accept_symbol("->")) {
      cmd->kind = Command::Kind::kReceive;
      cmd->channel = name;
      cmd->var = ident("variable name");
      return cmd;
    }
    if (accept_symbol(":=")) {
      cmd->kind = Command::Kind::kAssign;
      cmd->var = name;
      cmd->value = expr();
      return cmd;
    }
    fail("expected '<-', '->' or ':=' after '" + name + "'");
    return nullptr;
  }

  // ---- expressions ----

  ExprPtr expr() { return cmp_expr(); }

  ExprPtr cmp_expr() {
    auto lhs = add_expr();
    std::optional<BinOp> op;
    if (accept_symbol("=")) {
      op = BinOp::kEq;
    } else if (accept_symbol("/=")) {
      op = BinOp::kNe;
    } else if (accept_symbol("<")) {
      op = BinOp::kLt;
    }
    if (!op) return lhs;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->bin_op = *op;
    node->lhs = std::move(lhs);
    node->rhs = add_expr();
    return node;
  }

  ExprPtr add_expr() {
    auto lhs = shift_expr();
    while (true) {
      std::optional<BinOp> op;
      if (accept_symbol("+")) {
        op = BinOp::kAdd;
      } else if (accept_symbol("-")) {
        op = BinOp::kSub;
      } else if (accept_ident("or")) {
        op = BinOp::kOr;
      } else if (accept_ident("xor")) {
        op = BinOp::kXor;
      } else {
        return lhs;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bin_op = *op;
      node->lhs = std::move(lhs);
      node->rhs = shift_expr();
      lhs = std::move(node);
    }
  }

  ExprPtr shift_expr() {
    auto lhs = unary_expr();
    while (true) {
      std::optional<BinOp> op;
      if (accept_ident("and")) {
        op = BinOp::kAnd;
      } else if (accept_symbol("<<")) {
        op = BinOp::kShl;
      } else if (accept_symbol(">>")) {
        op = BinOp::kShr;
      } else {
        return lhs;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bin_op = *op;
      node->lhs = std::move(lhs);
      node->rhs = unary_expr();
      lhs = std::move(node);
    }
  }

  ExprPtr unary_expr() {
    if (accept_ident("not")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->un_op = UnOp::kNot;
      node->lhs = unary_expr();
      return node;
    }
    if (accept_symbol("-")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->un_op = UnOp::kNeg;
      node->lhs = unary_expr();
      return node;
    }
    return postfix_expr();
  }

  ExprPtr postfix_expr() {
    auto node = primary_expr();
    while (accept_symbol("[")) {
      const int hi = static_cast<int>(number());
      int lo = hi;
      if (accept_symbol("..")) lo = static_cast<int>(number());
      expect_symbol("]");
      auto slice = std::make_unique<Expr>();
      slice->kind = Expr::Kind::kSlice;
      slice->slice_hi = hi;
      slice->slice_lo = lo;
      slice->lhs = std::move(node);
      if (hi < lo) fail("slice must be [hi..lo]");
      node = std::move(slice);
    }
    return node;
  }

  ExprPtr primary_expr() {
    auto node = std::make_unique<Expr>();
    if (lex_.peek().kind == Token::Kind::kNumber) {
      node->kind = Expr::Kind::kLiteral;
      node->literal = number();
      return node;
    }
    if (accept_symbol("(")) {
      auto inner = expr();
      expect_symbol(")");
      return inner;
    }
    node->kind = Expr::Kind::kVar;
    node->var = ident("expression");
    return node;
  }

  Lexer lex_;
};

}  // namespace

Procedure parse_procedure(std::string_view source) {
  Parser parser(source);
  return parser.procedure();
}

std::vector<Procedure> parse_program(std::string_view source) {
  Parser parser(source);
  return parser.program();
}

}  // namespace bb::balsa
