// Content digests of mini-Balsa procedures.
//
// The incremental build graph (src/incr) decides what to resynthesize
// by comparing these digests across edits, so their contract matters:
//
//  * Formatting-blind.  A procedure is digested through its canonical
//    printed form (printer.hpp), not its source bytes, so whitespace,
//    comments and layout edits leave the digest unchanged and a
//    reparse -> reprint cycle is a digest fixed point.
//  * Name-sensitive.  Unlike bm::Spec::to_canonical(), the procedure
//    digest keeps identifiers: renaming a port changes the emitted
//    netlist interface, so it must dirty the unit.
//  * Stable across runs.  FNV-1a over deterministic text — safe to
//    persist in the project manifest and compare across processes.
#pragma once

#include <string>

#include "src/balsa/ast.hpp"

namespace bb::balsa {

/// 16-hex digest of one procedure's canonical source.
std::string procedure_digest(const Procedure& proc);

}  // namespace bb::balsa
