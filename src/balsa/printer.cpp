#include "src/balsa/printer.hpp"

#include <stdexcept>

namespace bb::balsa {

namespace {

std::string_view op_token(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kXor: return "xor";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "/=";
    case BinOp::kLt: return "<";
    case BinOp::kLts: break;  // no surface syntax in the mini-Balsa grammar
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
  }
  throw std::logic_error("balsa::to_source: operator has no surface syntax");
}

void print_expr(const Expr& e, std::string& out) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      out += std::to_string(e.literal);
      return;
    case Expr::Kind::kVar:
      out += e.var;
      return;
    case Expr::Kind::kBinary:
      // Fully parenthesized: parentheses do not create AST nodes, so the
      // round trip is exact regardless of precedence.
      out += "(";
      print_expr(*e.lhs, out);
      out += " ";
      out += op_token(e.bin_op);
      out += " ";
      print_expr(*e.rhs, out);
      out += ")";
      return;
    case Expr::Kind::kUnary:
      out += "(";
      out += e.un_op == UnOp::kNot ? "not " : "-";
      print_expr(*e.lhs, out);
      out += ")";
      return;
    case Expr::Kind::kSlice:
      print_expr(*e.lhs, out);
      out += "[" + std::to_string(e.slice_hi);
      if (e.slice_lo != e.slice_hi) out += ".." + std::to_string(e.slice_lo);
      out += "]";
      return;
  }
  throw std::logic_error("balsa::to_source: unhandled expression kind");
}

void print_command(const Command& c, std::string& out) {
  // Composition children are parenthesized unless they are primary
  // commands, which keeps ';' / '||' associativity out of the picture.
  const auto child = [&out](const Command& ch) {
    const bool wrap = ch.kind == Command::Kind::kSeq ||
                      ch.kind == Command::Kind::kPar;
    if (wrap) out += "(";
    print_command(ch, out);
    if (wrap) out += ")";
  };
  switch (c.kind) {
    case Command::Kind::kSeq:
    case Command::Kind::kPar: {
      const char* sep = c.kind == Command::Kind::kSeq ? " ; " : " || ";
      for (std::size_t i = 0; i < c.children.size(); ++i) {
        if (i > 0) out += sep;
        child(*c.children[i]);
      }
      return;
    }
    case Command::Kind::kLoop:
      out += "loop ";
      print_command(*c.body, out);
      out += " end";
      return;
    case Command::Kind::kWhile:
      out += "while ";
      print_expr(*c.guard, out);
      out += " then ";
      print_command(*c.body, out);
      out += " end";
      return;
    case Command::Kind::kIf:
      out += "if ";
      print_expr(*c.guard, out);
      out += " then ";
      print_command(*c.body, out);
      if (c.else_body) {
        out += " else ";
        print_command(*c.else_body, out);
      }
      out += " end";
      return;
    case Command::Kind::kCase: {
      out += "case ";
      print_expr(*c.guard, out);
      out += " of ";
      bool first = true;
      for (const CaseAlt& alt : c.alts) {
        if (!first && !alt.labels.empty()) out += " | ";
        if (!first && alt.labels.empty()) out += " ";
        first = false;
        if (alt.labels.empty()) {
          out += "else ";
        } else {
          for (std::size_t i = 0; i < alt.labels.size(); ++i) {
            if (i > 0) out += ", ";
            out += std::to_string(alt.labels[i]);
          }
          out += ": ";
        }
        print_command(*alt.body, out);
      }
      out += " end";
      return;
    }
    case Command::Kind::kSync:
      out += "sync " + c.channel;
      return;
    case Command::Kind::kSend:
      out += c.channel + " <- ";
      print_expr(*c.value, out);
      return;
    case Command::Kind::kReceive:
      out += c.channel + " -> " + c.var;
      return;
    case Command::Kind::kAssign:
      out += c.var + " := ";
      print_expr(*c.value, out);
      return;
    case Command::Kind::kContinue:
      out += "continue";
      return;
  }
  throw std::logic_error("balsa::to_source: unhandled command kind");
}

}  // namespace

std::string to_source(const Expr& e) {
  std::string out;
  print_expr(e, out);
  return out;
}

std::string to_source(const Command& c) {
  std::string out;
  print_command(c, out);
  return out;
}

std::string to_source(const Procedure& p) {
  std::string out = "procedure " + p.name + " (";
  for (std::size_t i = 0; i < p.ports.size(); ++i) {
    if (i > 0) out += "; ";
    const Port& port = p.ports[i];
    switch (port.dir) {
      case PortDir::kSync:
        out += "sync " + port.name;
        break;
      case PortDir::kInput:
        out += "input " + port.name + " : " + std::to_string(port.width);
        break;
      case PortDir::kOutput:
        out += "output " + port.name + " : " + std::to_string(port.width);
        break;
    }
  }
  out += ") is\n";
  for (const VariableDecl& v : p.variables) {
    out += "  variable " + v.name + " : " + std::to_string(v.width) + "\n";
  }
  out += "begin\n  ";
  print_command(*p.body, out);
  out += "\nend\n";
  return out;
}

}  // namespace bb::balsa
