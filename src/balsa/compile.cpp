#include "src/balsa/compile.hpp"

#include <algorithm>
#include <map>

#include "src/balsa/parser.hpp"
#include "src/util/strings.hpp"

namespace bb::balsa {

namespace {

using hsnet::Component;
using hsnet::ComponentKind;

int bit_length(std::uint64_t v) {
  int n = 1;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

class Compiler {
 public:
  explicit Compiler(const Procedure& proc)
      : proc_(proc), net_(util::to_lower(proc.name)) {}

  hsnet::Netlist run() {
    net_.declare_channel("activate", 0, /*external=*/true);
    for (const Port& p : proc_.ports) {
      const std::string name = util::to_lower(p.name);
      if (!ports_.emplace(name, PortInfo{p.dir, p.width, {}}).second) {
        throw CompileError("duplicate port '" + p.name + "'");
      }
      net_.declare_channel(name, p.width, /*external=*/true);
    }
    for (const VariableDecl& v : proc_.variables) {
      const std::string name = util::to_lower(v.name);
      if (ports_.count(name) ||
          !vars_.emplace(name, VarInfo{v.width, {}, {}}).second) {
        throw CompileError("duplicate declaration '" + v.name + "'");
      }
    }

    count_port_uses(*proc_.body);
    const std::string root = command(*proc_.body);
    bind_activation(root);
    finalize_ports();
    finalize_variables();
    return std::move(net_);
  }

 private:
  struct PortInfo {
    PortDir dir = PortDir::kSync;
    int width = 0;
    std::vector<std::string> clients;  // merge clients when multiply used
  };
  struct VarInfo {
    int width = 1;
    std::vector<std::string> writes;
    std::vector<std::string> reads;
  };

  std::string fresh(const std::string& stem, int width = 0) {
    const std::string name = stem + std::to_string(next_++);
    net_.declare_channel(name, width);
    return name;
  }

  PortInfo& port(const std::string& name) {
    const auto it = ports_.find(util::to_lower(name));
    if (it == ports_.end()) {
      throw CompileError("unknown port '" + name + "'");
    }
    return it->second;
  }

  VarInfo& variable(const std::string& name) {
    const auto it = vars_.find(util::to_lower(name));
    if (it == vars_.end()) {
      throw CompileError("unknown variable '" + name + "'");
    }
    return it->second;
  }

  // ---- pre-pass: how many times is each port used? ----
  void count_port_uses(const Command& c) {
    switch (c.kind) {
      case Command::Kind::kSync:
      case Command::Kind::kSend:
      case Command::Kind::kReceive:
        ++port_uses_[util::to_lower(c.channel)];
        break;
      default:
        break;
    }
    for (const auto& child : c.children) count_port_uses(*child);
    if (c.body) count_port_uses(*c.body);
    if (c.else_body) count_port_uses(*c.else_body);
    for (const auto& alt : c.alts) count_port_uses(*alt.body);
  }

  /// The channel a port use should talk to: the port itself when used
  /// once, otherwise a fresh client channel of the final merge.
  std::string port_use_channel(const std::string& raw_name) {
    const std::string name = util::to_lower(raw_name);
    PortInfo& info = port(name);
    if (port_uses_.at(name) <= 1) return name;
    const std::string client = fresh("c", info.width);
    info.clients.push_back(client);
    return client;
  }

  // ---- commands: return their activation channel ----
  std::string command(const Command& c) {
    switch (c.kind) {
      case Command::Kind::kContinue: {
        const std::string act = fresh("s");
        add(ComponentKind::kContinue, {act});
        return act;
      }
      case Command::Kind::kSeq:
      case Command::Kind::kPar: {
        const std::string act = fresh("s");
        std::vector<std::string> ports{act};
        for (const auto& child : c.children) ports.push_back(command(*child));
        Component comp;
        comp.kind = c.kind == Command::Kind::kSeq ? ComponentKind::kSequence
                                                  : ComponentKind::kConcur;
        comp.ports = std::move(ports);
        comp.ways = static_cast<int>(c.children.size());
        net_.add(std::move(comp));
        return act;
      }
      case Command::Kind::kLoop: {
        const std::string act = fresh("s");
        add(ComponentKind::kLoop, {act, command(*c.body)});
        return act;
      }
      case Command::Kind::kWhile: {
        const std::string act = fresh("s");
        const std::string g = fresh("g");
        const auto cond = expression(*c.guard);
        add(ComponentKind::kWhile, {act, g, command(*c.body)});
        Component guard;
        guard.kind = ComponentKind::kGuard;
        guard.ports = {g, cond.channel};
        guard.ways = 2;
        guard.op = "bool";
        guard.width = cond.width;
        net_.add(std::move(guard));
        return act;
      }
      case Command::Kind::kIf: {
        const std::string act = fresh("s");
        const std::string g = fresh("g");
        const auto cond = expression(*c.guard);
        const std::string then_ch = command(*c.body);
        std::string else_ch;
        if (c.else_body) {
          else_ch = command(*c.else_body);
        } else {
          else_ch = fresh("s");
          add(ComponentKind::kContinue, {else_ch});
        }
        Component sel;
        sel.kind = ComponentKind::kCase;
        sel.ports = {act, g, then_ch, else_ch};
        sel.ways = 2;
        net_.add(std::move(sel));
        Component guard;
        guard.kind = ComponentKind::kGuard;
        guard.ports = {g, cond.channel};
        guard.ways = 2;
        guard.op = "bool";
        guard.width = cond.width;
        net_.add(std::move(guard));
        return act;
      }
      case Command::Kind::kCase: {
        const std::string act = fresh("s");
        const std::string g = fresh("g");
        const auto cond = expression(*c.guard);

        std::vector<std::string> branches;
        std::vector<int> table;
        int else_branch = -1;
        for (const auto& alt : c.alts) {
          const int branch = static_cast<int>(branches.size());
          branches.push_back(command(*alt.body));
          if (alt.labels.empty()) {
            else_branch = branch;
            continue;
          }
          for (const std::uint64_t label : alt.labels) {
            if (table.size() <= label) {
              table.resize(label + 1, -1);
            }
            if (table[label] != -1) {
              throw CompileError("duplicate case label " +
                                 std::to_string(label));
            }
            table[label] = branch;
          }
        }
        if (else_branch < 0) {
          // Unlabelled values fall through to an implicit skip branch.
          else_branch = static_cast<int>(branches.size());
          const std::string skip = fresh("s");
          add(ComponentKind::kContinue, {skip});
          branches.push_back(skip);
        }
        for (int& t : table) {
          if (t < 0) t = else_branch;
        }

        Component sel;
        sel.kind = ComponentKind::kCase;
        sel.ports = {act, g};
        sel.ports.insert(sel.ports.end(), branches.begin(), branches.end());
        sel.ways = static_cast<int>(branches.size());
        net_.add(std::move(sel));

        Component guard;
        guard.kind = ComponentKind::kGuard;
        guard.ports = {g, cond.channel};
        guard.ways = static_cast<int>(branches.size());
        guard.op = "index";
        guard.value = else_branch;
        guard.labels = std::move(table);
        guard.width = cond.width;
        net_.add(std::move(guard));
        return act;
      }
      case Command::Kind::kSync: {
        if (port(c.channel).dir != PortDir::kSync) {
          throw CompileError("'sync " + c.channel + "': not a sync port");
        }
        return port_use_channel(c.channel);
      }
      case Command::Kind::kSend: {
        PortInfo& p = port(c.channel);
        if (p.dir != PortDir::kOutput) {
          throw CompileError("'" + c.channel + " <- ...': not an output port");
        }
        const auto value = expression(*c.value);
        const std::string act = fresh("s");
        Component fetch;
        fetch.kind = ComponentKind::kFetch;
        fetch.ports = {act, value.channel, port_use_channel(c.channel)};
        fetch.width = p.width;
        net_.add(std::move(fetch));
        return act;
      }
      case Command::Kind::kReceive: {
        PortInfo& p = port(c.channel);
        if (p.dir != PortDir::kInput) {
          throw CompileError("'" + c.channel + " -> ...': not an input port");
        }
        VarInfo& v = variable(c.var);
        const std::string w = fresh("w", v.width);
        v.writes.push_back(w);
        const std::string act = fresh("s");
        Component fetch;
        fetch.kind = ComponentKind::kFetch;
        fetch.ports = {act, port_use_channel(c.channel), w};
        fetch.width = std::max(p.width, v.width);
        net_.add(std::move(fetch));
        return act;
      }
      case Command::Kind::kAssign: {
        VarInfo& v = variable(c.var);
        const auto value = expression(*c.value);
        const std::string w = fresh("w", v.width);
        v.writes.push_back(w);
        const std::string act = fresh("s");
        Component fetch;
        fetch.kind = ComponentKind::kFetch;
        fetch.ports = {act, value.channel, w};
        fetch.width = v.width;
        net_.add(std::move(fetch));
        return act;
      }
    }
    throw CompileError("unhandled command");
  }

  // ---- expressions: pull-channel trees ----
  struct ExprChan {
    std::string channel;
    int width = 1;
  };

  ExprChan expression(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kLiteral: {
        const int width = bit_length(e.literal);
        const std::string out = fresh("e", width);
        Component k;
        k.kind = ComponentKind::kConstant;
        k.ports = {out};
        k.value = static_cast<long long>(e.literal);
        k.width = width;
        net_.add(std::move(k));
        return {out, width};
      }
      case Expr::Kind::kVar: {
        VarInfo& v = variable(e.var);
        const std::string r = fresh("e", v.width);
        v.reads.push_back(r);
        return {r, v.width};
      }
      case Expr::Kind::kBinary: {
        const ExprChan l = expression(*e.lhs);
        const ExprChan r = expression(*e.rhs);
        const bool is_cmp = e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe ||
                            e.bin_op == BinOp::kLt || e.bin_op == BinOp::kLts;
        const int op_width = std::max(l.width, r.width);
        const int width = is_cmp ? 1 : op_width;
        const std::string out = fresh("e", width);
        Component f;
        f.kind = ComponentKind::kBinaryFunc;
        f.ports = {out, l.channel, r.channel};
        f.op = op_name(e.bin_op);
        f.width = op_width;
        net_.add(std::move(f));
        return {out, width};
      }
      case Expr::Kind::kUnary: {
        const ExprChan a = expression(*e.lhs);
        const std::string out = fresh("e", a.width);
        Component f;
        f.kind = ComponentKind::kUnaryFunc;
        f.ports = {out, a.channel};
        f.op = e.un_op == UnOp::kNot ? "not" : "neg";
        f.width = a.width;
        net_.add(std::move(f));
        return {out, a.width};
      }
      case Expr::Kind::kSlice: {
        // x[hi..lo]  ==  (x >> lo) and mask
        ExprChan base = expression(*e.lhs);
        const int width = e.slice_hi - e.slice_lo + 1;
        if (e.slice_lo > 0) {
          base = binary_with_const("shr", base,
                                   static_cast<std::uint64_t>(e.slice_lo),
                                   base.width);
        }
        if (width < base.width) {
          base = binary_with_const("and", base, (1ull << width) - 1, width);
        }
        base.width = width;
        return base;
      }
    }
    throw CompileError("unhandled expression");
  }

  ExprChan binary_with_const(const std::string& op, const ExprChan& lhs,
                             std::uint64_t value, int width) {
    const int kwidth = bit_length(value);
    const std::string kout = fresh("e", kwidth);
    Component k;
    k.kind = ComponentKind::kConstant;
    k.ports = {kout};
    k.value = static_cast<long long>(value);
    k.width = kwidth;
    net_.add(std::move(k));

    const std::string out = fresh("e", width);
    Component f;
    f.kind = ComponentKind::kBinaryFunc;
    f.ports = {out, lhs.channel, kout};
    f.op = op;
    f.width = std::max(lhs.width, width);
    net_.add(std::move(f));
    return {out, width};
  }

  static std::string op_name(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return "add";
      case BinOp::kSub: return "sub";
      case BinOp::kAnd: return "and";
      case BinOp::kOr: return "or";
      case BinOp::kXor: return "xor";
      case BinOp::kEq: return "eq";
      case BinOp::kNe: return "ne";
      case BinOp::kLt: return "lt";
      case BinOp::kLts: return "lts";
      case BinOp::kShl: return "shl";
      case BinOp::kShr: return "shr";
    }
    return "?";
  }

  // ---- finalization ----

  void bind_activation(const std::string& root) {
    if (root == "activate") return;
    if (ports_.count(root)) {
      // The whole body is a single port use; bridge with a 1-way call.
      add(ComponentKind::kCall, {"activate", root}, 1);
      return;
    }
    // The root command allocated a fresh activation channel; it *is* the
    // external activation.
    net_.rename_channel(root, "activate");
  }

  void finalize_ports() {
    for (auto& [name, info] : ports_) {
      if (info.clients.empty()) continue;
      if (info.dir == PortDir::kSync) {
        Component call;
        call.kind = ComponentKind::kCall;
        call.ports = info.clients;
        call.ports.push_back(name);
        call.ways = static_cast<int>(info.clients.size());
        net_.add(std::move(call));
      } else {
        Component merge;
        merge.kind = ComponentKind::kMerge;
        merge.ports = info.clients;
        merge.ports.push_back(name);
        merge.ways = static_cast<int>(info.clients.size());
        merge.op = info.dir == PortDir::kOutput ? "push" : "pull";
        merge.width = info.width;
        net_.add(std::move(merge));
      }
    }
  }

  void finalize_variables() {
    for (auto& [name, info] : vars_) {
      if (info.writes.empty() && info.reads.empty()) continue;
      if (info.writes.empty()) {
        throw CompileError("variable '" + name + "' is read but never written");
      }
      Component var;
      var.kind = ComponentKind::kVariable;
      var.ports = info.writes;
      var.ports.insert(var.ports.end(), info.reads.begin(), info.reads.end());
      var.ways = static_cast<int>(info.writes.size());
      var.width = info.width;
      net_.add(std::move(var));
    }
  }

  void add(ComponentKind kind, std::vector<std::string> ports, int ways = 0) {
    Component c;
    c.kind = kind;
    c.ports = std::move(ports);
    c.ways = ways;
    net_.add(std::move(c));
  }

  const Procedure& proc_;
  hsnet::Netlist net_;
  int next_ = 0;
  std::map<std::string, PortInfo> ports_;
  std::map<std::string, VarInfo> vars_;
  std::map<std::string, int> port_uses_;
};

}  // namespace

hsnet::Netlist compile(const Procedure& procedure) {
  Compiler compiler(procedure);
  return compiler.run();
}

hsnet::Netlist compile_source(std::string_view source) {
  return compile(parse_procedure(source));
}

}  // namespace bb::balsa
