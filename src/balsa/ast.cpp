#include "src/balsa/ast.hpp"

namespace bb::balsa {

ExprPtr clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->var = e.var;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->slice_hi = e.slice_hi;
  out->slice_lo = e.slice_lo;
  if (e.lhs) out->lhs = clone(*e.lhs);
  if (e.rhs) out->rhs = clone(*e.rhs);
  return out;
}

CommandPtr clone(const Command& c) {
  auto out = std::make_unique<Command>();
  out->kind = c.kind;
  for (const CommandPtr& child : c.children) {
    out->children.push_back(clone(*child));
  }
  if (c.body) out->body = clone(*c.body);
  if (c.else_body) out->else_body = clone(*c.else_body);
  for (const CaseAlt& alt : c.alts) {
    CaseAlt copy;
    copy.labels = alt.labels;
    copy.body = clone(*alt.body);
    out->alts.push_back(std::move(copy));
  }
  if (c.guard) out->guard = clone(*c.guard);
  out->channel = c.channel;
  out->var = c.var;
  if (c.value) out->value = clone(*c.value);
  return out;
}

Procedure clone(const Procedure& p) {
  Procedure out;
  out.name = p.name;
  out.ports = p.ports;
  out.variables = p.variables;
  if (p.body) out.body = clone(*p.body);
  return out;
}

}  // namespace bb::balsa
