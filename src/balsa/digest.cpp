#include "src/balsa/digest.hpp"

#include "src/balsa/printer.hpp"
#include "src/util/hash.hpp"

namespace bb::balsa {

std::string procedure_digest(const Procedure& proc) {
  return util::content_digest(to_source(proc));
}

}  // namespace bb::balsa
