// Syntax-directed translation from mini-Balsa to a netlist of handshake
// components (the balsa-c substitute; "unoptimized netlist of handshake
// components" in Fig. 1).
//
// Every construct maps to its standard handshake component: ';' to a
// sequencer, '||' to a concur, loop/while/if/case to Loop/While/Case (+
// Guard), channel and variable accesses to Fetch/Variable/Constant/
// function blocks.  Multiply-used ports are shared through Call (sync) or
// CallMux (data) components.  The procedure is activated through the
// external sync channel "activate".
#pragma once

#include <stdexcept>

#include "src/balsa/ast.hpp"
#include "src/hsnet/netlist.hpp"

namespace bb::balsa {

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// Compiles a procedure.  The returned netlist's external channels are the
/// procedure ports plus "activate".
hsnet::Netlist compile(const Procedure& procedure);

/// Convenience: parse + compile.
hsnet::Netlist compile_source(std::string_view source);

}  // namespace bb::balsa
