// Mini-Balsa source rendering: the inverse of parser.hpp.
//
// to_source produces text that parse_procedure maps back onto the same
// AST (round-trip stable), which is what makes fuzz reproducers in
// tests/regressions/ self-contained: a minimized Procedure is committed
// as plain source and replayed through the ordinary parse + compile
// path.
#pragma once

#include <string>

#include "src/balsa/ast.hpp"

namespace bb::balsa {

/// The whole procedure as parseable mini-Balsa text.
std::string to_source(const Procedure& p);

/// One command / expression, for diagnostics.
std::string to_source(const Command& c);
std::string to_source(const Expr& e);

}  // namespace bb::balsa
