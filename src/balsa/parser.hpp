// Recursive-descent parser for mini-Balsa.
//
// Grammar sketch (see README for the full reference):
//   procedure NAME ( ports ) is decls begin command end
//   ports  : (sync a, b | input x : 8 | output y : 8) separated by ';'
//   decls  : variable v, w : 8 ...
//   command: seq ';' / par '||' / loop..end / while e then c end /
//            if e then c [else c] end / case e of L: c | ... [else c] end /
//            sync ch / ch <- e / ch -> v / v := e / continue
//   expr   : comparisons (= /= <) over +,-,or,xor over and,<<,>> over
//            unary -,not over primaries (var, literal, (e), e[hi..lo])
// Comments run from "--" to end of line.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/balsa/ast.hpp"

namespace bb::balsa {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses one procedure.  Throws ParseError with line information
/// (including on trailing input — use parse_program for multi-procedure
/// sources).
Procedure parse_procedure(std::string_view source);

/// Parses a whole program: one or more procedures in declaration order.
/// Procedure names must be unique.  Throws ParseError with line
/// information.
std::vector<Procedure> parse_program(std::string_view source);

}  // namespace bb::balsa
