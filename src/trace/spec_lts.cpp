#include "src/trace/spec_lts.hpp"

#include <deque>
#include <map>
#include <tuple>

namespace bb::trace {

namespace {

std::string edge_label(const ch::Transition& t) {
  return t.signal + (t.rising ? "+" : "-");
}

}  // namespace

petri::Lts bm_spec_lts(const bm::Spec& spec) {
  petri::Lts lts;
  // An LTS state is either "resting in BM state s" (arc = -1) or "arc a
  // in progress with these burst edges already consumed" (bitmasks over
  // in_burst/out_burst).  Completed arcs normalize to the resting state
  // of the arc's target, so equivalent nodes merge.
  using Key = std::tuple<int, int, std::uint32_t, std::uint32_t>;
  std::map<Key, int> index;
  std::deque<Key> queue;

  const auto intern = [&](Key key) {
    const auto [it, inserted] = index.emplace(key, lts.num_states);
    if (inserted) {
      ++lts.num_states;
      queue.push_back(key);
    }
    return it->second;
  };

  const auto resting = [](int state) {
    return Key{state, -1, 0, 0};
  };

  lts.initial = intern(resting(spec.initial_state));

  while (!queue.empty()) {
    const Key key = queue.front();
    queue.pop_front();
    const int from = index.at(key);
    const auto [state, arc_index, in_mask, out_mask] = key;

    const auto advance = [&](const bm::Arc& arc, int a, std::uint32_t in,
                             std::uint32_t out, const std::string& label) {
      const std::uint32_t in_full =
          (1u << arc.in_burst.size()) - 1u;
      const std::uint32_t out_full =
          (1u << arc.out_burst.size()) - 1u;
      const Key next = (in == in_full && out == out_full)
                           ? resting(arc.to)
                           : Key{state, a, in, out};
      lts.edges.push_back(
          petri::Lts::Edge{from, intern(next), label});
    };

    if (arc_index < 0) {
      // Resting: the first edge of any leaving arc's input burst starts
      // that arc.
      for (std::size_t a = 0; a < spec.arcs.size(); ++a) {
        const bm::Arc& arc = spec.arcs[a];
        if (arc.from != state) continue;
        for (std::size_t e = 0; e < arc.in_burst.size(); ++e) {
          advance(arc, static_cast<int>(a), 1u << e, 0,
                  edge_label(arc.in_burst.transitions[e]));
        }
      }
      continue;
    }

    const bm::Arc& arc = spec.arcs[arc_index];
    const std::uint32_t in_full = (1u << arc.in_burst.size()) - 1u;
    if (in_mask != in_full) {
      for (std::size_t e = 0; e < arc.in_burst.size(); ++e) {
        if (in_mask & (1u << e)) continue;
        advance(arc, arc_index, in_mask | (1u << e), out_mask,
                edge_label(arc.in_burst.transitions[e]));
      }
    } else {
      for (std::size_t e = 0; e < arc.out_burst.size(); ++e) {
        if (out_mask & (1u << e)) continue;
        advance(arc, arc_index, in_mask, out_mask | (1u << e),
                edge_label(arc.out_burst.transitions[e]));
      }
    }
  }
  return lts;
}

}  // namespace bb::trace
