// Trace structures (AVER substitute, Section 4.3).
//
// The paper checks "conformation equivalence" between the composed+hidden
// behaviour of two controllers and the clustered controller, using Dill's
// trace theory.  For these closed, choice-deterministic controllers that
// check reduces to equality of the prefix-closed trace languages, which we
// decide by tau-eliminating determinization (subset construction) and a
// product-automaton walk.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/petri/net.hpp"

namespace bb::trace {

/// A deterministic automaton over signal-edge labels.  Every state is
/// accepting (safety/prefix-closed languages); a missing edge rejects.
struct Dfa {
  int num_states = 0;
  int initial = 0;
  std::map<std::pair<int, std::string>, int> delta;

  /// All labels leaving `state`.
  std::vector<std::string> labels_from(int state) const;
};

/// Subset construction with tau-closure over an LTS.
Dfa determinize(const petri::Lts& lts);

/// True if every trace of `b` is a trace of `a` (L(b) subset of L(a)).
/// This is the safety half of trace-theory conformance.
bool language_contains(const Dfa& a, const Dfa& b);

/// Conformation equivalence: mutual containment.
bool language_equivalent(const Dfa& a, const Dfa& b);

/// A counterexample trace in L(b) \ L(a), empty when contained.
std::vector<std::string> containment_counterexample(const Dfa& a,
                                                    const Dfa& b);

/// Membership check for one observed trace: returns the shortest prefix
/// of `trace` that `dfa` rejects (a minimal counterexample against the
/// specification language), or empty when the whole trace is accepted.
/// This is how the fault-injection campaign turns a recorded gate-level
/// signal-edge sequence into a trace-verifier verdict.
std::vector<std::string> reject_prefix(const Dfa& dfa,
                                       const std::vector<std::string>& trace);

}  // namespace bb::trace
