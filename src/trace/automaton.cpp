#include "src/trace/automaton.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace bb::trace {

namespace {

using StateSet = std::set<int>;

StateSet tau_closure(const petri::Lts& lts, StateSet states) {
  std::deque<int> queue(states.begin(), states.end());
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (const petri::Lts::Edge& e : lts.edges) {
      if (e.from == s && e.label.empty() && !states.count(e.to)) {
        states.insert(e.to);
        queue.push_back(e.to);
      }
    }
  }
  return states;
}

}  // namespace

std::vector<std::string> Dfa::labels_from(int state) const {
  std::vector<std::string> out;
  for (const auto& [key, unused_to] : delta) {
    (void)unused_to;
    if (key.first == state) out.push_back(key.second);
  }
  return out;
}

Dfa determinize(const petri::Lts& lts) {
  Dfa dfa;
  std::map<StateSet, int> index;

  const StateSet start = tau_closure(lts, {lts.initial});
  index[start] = 0;
  dfa.num_states = 1;
  std::deque<StateSet> queue{start};

  while (!queue.empty()) {
    const StateSet current = std::move(queue.front());
    queue.pop_front();
    const int from = index.at(current);

    // Group successor states by label.
    std::map<std::string, StateSet> successors;
    for (const petri::Lts::Edge& e : lts.edges) {
      if (e.label.empty() || !current.count(e.from)) continue;
      successors[e.label].insert(e.to);
    }
    for (auto& [label, states] : successors) {
      const StateSet closed = tau_closure(lts, std::move(states));
      const auto [it, inserted] = index.emplace(closed, dfa.num_states);
      if (inserted) {
        ++dfa.num_states;
        queue.push_back(closed);
      }
      dfa.delta[{from, label}] = it->second;
    }
  }
  return dfa;
}

std::vector<std::string> containment_counterexample(const Dfa& a,
                                                    const Dfa& b) {
  // BFS over the product; a trace of b with no matching move in a is a
  // counterexample.
  struct Node {
    int sa;
    int sb;
    std::vector<std::string> path;
  };
  std::set<std::pair<int, int>> seen{{a.initial, b.initial}};
  std::deque<Node> queue{{a.initial, b.initial, {}}};
  while (!queue.empty()) {
    Node node = std::move(queue.front());
    queue.pop_front();
    for (const std::string& label : b.labels_from(node.sb)) {
      const int nb = b.delta.at({node.sb, label});
      const auto ia = a.delta.find({node.sa, label});
      std::vector<std::string> path = node.path;
      path.push_back(label);
      if (ia == a.delta.end()) return path;
      if (seen.insert({ia->second, nb}).second) {
        queue.push_back(Node{ia->second, nb, std::move(path)});
      }
    }
  }
  return {};
}

std::vector<std::string> reject_prefix(const Dfa& dfa,
                                       const std::vector<std::string>& trace) {
  int state = dfa.initial;
  std::vector<std::string> prefix;
  for (const std::string& label : trace) {
    prefix.push_back(label);
    const auto it = dfa.delta.find({state, label});
    if (it == dfa.delta.end()) return prefix;
    state = it->second;
  }
  return {};
}

bool language_contains(const Dfa& a, const Dfa& b) {
  return containment_counterexample(a, b).empty();
}

bool language_equivalent(const Dfa& a, const Dfa& b) {
  return language_contains(a, b) && language_contains(b, a);
}

}  // namespace bb::trace
