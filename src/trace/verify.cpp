#include "src/trace/verify.hpp"

#include "src/petri/from_ch.hpp"
#include "src/util/strings.hpp"

namespace bb::trace {

std::string hide_prefix(const std::string& channel) {
  return util::to_lower(channel) + "_";
}

VerifyResult verify_clustering(const ch::Expr& x, const ch::Expr& y,
                               const std::string& channel,
                               const ch::Expr& clustered) {
  petri::PetriNet nx = petri::from_ch(x);
  petri::PetriNet ny = petri::from_ch(y);
  petri::PetriNet composed = petri::PetriNet::compose(nx, ny);
  composed.hide_prefixes({hide_prefix(channel)});

  const Dfa lhs = determinize(composed.reachability());
  const Dfa rhs = determinize(petri::from_ch(clustered).reachability());

  VerifyResult result;
  result.composed_states = lhs.num_states;
  result.clustered_states = rhs.num_states;
  result.counterexample = containment_counterexample(lhs, rhs);
  if (result.counterexample.empty()) {
    result.counterexample = containment_counterexample(rhs, lhs);
  }
  result.equivalent = result.counterexample.empty();
  return result;
}

}  // namespace bb::trace
