#include "src/trace/verify.hpp"

#include <stdexcept>

#include "src/petri/from_ch.hpp"
#include "src/util/strings.hpp"

namespace bb::trace {

std::string hide_prefix(const std::string& channel) {
  return util::to_lower(channel) + "_";
}

VerifyResult verify_clustering(const ch::Expr& x, const ch::Expr& y,
                               const std::string& channel,
                               const ch::Expr& clustered) {
  petri::PetriNet nx = petri::from_ch(x);
  petri::PetriNet ny = petri::from_ch(y);
  petri::PetriNet composed = petri::PetriNet::compose(nx, ny);
  composed.hide_prefixes({hide_prefix(channel)});

  const Dfa lhs = determinize(composed.reachability());
  const Dfa rhs = determinize(petri::from_ch(clustered).reachability());

  VerifyResult result;
  result.composed_states = lhs.num_states;
  result.clustered_states = rhs.num_states;
  result.counterexample = containment_counterexample(lhs, rhs);
  if (result.counterexample.empty()) {
    result.counterexample = containment_counterexample(rhs, lhs);
  }
  result.equivalent = result.counterexample.empty();
  return result;
}

VerifyResult verify_composition(const std::vector<const ch::Expr*>& members,
                                const std::vector<std::string>& hidden_channels,
                                const ch::Expr& clustered,
                                std::size_t state_limit) {
  if (members.empty()) {
    throw std::invalid_argument("verify_composition: no member programs");
  }
  petri::PetriNet composed = petri::from_ch(*members.front());
  for (std::size_t i = 1; i < members.size(); ++i) {
    composed = petri::PetriNet::compose(composed, petri::from_ch(*members[i]));
  }
  std::vector<std::string> prefixes;
  prefixes.reserve(hidden_channels.size());
  for (const std::string& channel : hidden_channels) {
    prefixes.push_back(hide_prefix(channel));
  }
  composed.hide_prefixes(prefixes);

  const Dfa lhs = determinize(composed.reachability(state_limit));
  const Dfa rhs = determinize(petri::from_ch(clustered).reachability(state_limit));

  VerifyResult result;
  result.composed_states = lhs.num_states;
  result.clustered_states = rhs.num_states;
  // Conformance, not equality: the clustered controller may refine the
  // composition (serializing concurrent output bursts is sound — the
  // delay-insensitive environment must accept either order), but every
  // trace it can produce must be one the composition allows.  The BFS
  // counterexample is therefore a minimal rejecting prefix.  Dropped
  // behaviour (the other containment direction) shows up as deadlock
  // under simulation instead.
  result.counterexample = containment_counterexample(lhs, rhs);
  result.equivalent = result.counterexample.empty();
  return result;
}

}  // namespace bb::trace
