// Burst-Mode specification -> trace language.
//
// The fault-injection campaign checks observed gate-level behaviour
// against the specification the controller actually implements: the
// compiled BM machine (not the CH program — a synthesized machine may
// legally overlap return-to-zero phases that the naive CH handshake
// expansion serializes).  This translates a bm::Spec into a labelled
// transition system whose traces are every legal edge sequence of the
// machine: per arc, the input burst's edges in any order, then the
// output burst's edges in any order.  Determinize the result and feed
// observed "<wire>+/-" traces to reject_prefix.
#pragma once

#include "src/bm/spec.hpp"
#include "src/petri/net.hpp"

namespace bb::trace {

/// The edge-interleaving LTS of a BM specification.  Labels are
/// "<signal>+" / "<signal>-"; the initial LTS state is the machine's
/// initial state with no burst in progress.
petri::Lts bm_spec_lts(const bm::Spec& spec);

}  // namespace bb::trace
