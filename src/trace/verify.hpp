// The Section 4.3 verification procedure, end to end:
//   1. translate the activating and activated CH programs to Petri nets;
//   2. compose them and hide the activation channel;
//   3. translate the clustered CH program to a Petri net;
//   4. check conformation equivalence of the two trace structures.
#pragma once

#include <string>

#include "src/ch/ast.hpp"
#include "src/trace/automaton.hpp"

namespace bb::trace {

struct VerifyResult {
  bool equivalent = false;
  /// A witness trace distinguishing the behaviours (empty if equivalent).
  std::vector<std::string> counterexample;
  int composed_states = 0;   ///< DFA states of compose+hide
  int clustered_states = 0;  ///< DFA states of the clustered controller
};

/// The wire-name prefix hidden when channel `channel` is eliminated.
std::string hide_prefix(const std::string& channel);

/// Checks that `clustered` conforms to (compose(x, y) hide channel).
VerifyResult verify_clustering(const ch::Expr& x, const ch::Expr& y,
                               const std::string& channel,
                               const ch::Expr& clustered);

}  // namespace bb::trace
