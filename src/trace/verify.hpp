// The Section 4.3 verification procedure, end to end:
//   1. translate the activating and activated CH programs to Petri nets;
//   2. compose them and hide the activation channel;
//   3. translate the clustered CH program to a Petri net;
//   4. check conformation equivalence of the two trace structures.
#pragma once

#include <string>

#include "src/ch/ast.hpp"
#include "src/trace/automaton.hpp"

namespace bb::trace {

struct VerifyResult {
  bool equivalent = false;
  /// A witness trace distinguishing the behaviours (empty if equivalent).
  std::vector<std::string> counterexample;
  int composed_states = 0;   ///< DFA states of compose+hide
  int clustered_states = 0;  ///< DFA states of the clustered controller
};

/// The wire-name prefix hidden when channel `channel` is eliminated.
std::string hide_prefix(const std::string& channel);

/// Checks that `clustered` conforms to (compose(x, y) hide channel).
VerifyResult verify_clustering(const ch::Expr& x, const ch::Expr& y,
                               const std::string& channel,
                               const ch::Expr& clustered);

/// Generalization of verify_clustering to arbitrarily many member
/// programs and hidden (internalized) channels: checks that `clustered`
/// conforms to (compose(members...) hide channels).  This is the shape
/// the fuzz oracle needs, where T1/T2 clustering can fold several
/// controllers and eliminate several activation channels in one step.
///
/// Unlike verify_clustering this is one-directional: the clustered
/// controller may legally reduce concurrency relative to the
/// composition (enclosure substitution serializes output bursts), so
/// the check is trace containment L(clustered) ⊆ L(composed) and the
/// counterexample, when present, is a minimal rejecting prefix — a
/// shortest trace of the clustered controller the composition refuses.
/// `state_limit` bounds each reachability exploration; exceeding it
/// throws std::runtime_error (callers record the case as skipped).
VerifyResult verify_composition(const std::vector<const ch::Expr*>& members,
                                const std::vector<std::string>& hidden_channels,
                                const ch::Expr& clustered,
                                std::size_t state_limit = 1u << 20);

}  // namespace bb::trace
