// Covers (sets of cubes) and the classic operations on them: containment,
// tautology, complement, single-cube containment, minterm enumeration.
#pragma once

#include <string>
#include <vector>

#include "src/logic/cube.hpp"

namespace bb::logic {

/// A sum-of-products: the union of the minterm sets of its cubes.
class Cover {
 public:
  Cover() = default;
  explicit Cover(std::size_t num_vars) : num_vars_(num_vars) {}
  Cover(std::size_t num_vars, std::vector<Cube> cubes)
      : num_vars_(num_vars), cubes_(std::move(cubes)) {}

  /// Parses newline/space separated cube strings, e.g. "1-0 01-".
  static Cover parse(std::size_t num_vars, std::string_view text);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }
  const Cube& operator[](std::size_t i) const { return cubes_[i]; }
  const std::vector<Cube>& cubes() const { return cubes_; }

  void add(Cube c);

  /// True if some cube contains the minterm.
  bool covers_minterm(const std::vector<bool>& bits) const;

  /// True if the union of this cover's cubes contains every minterm of `c`.
  /// (Exact check via recursive cofactoring.)
  bool covers_cube(const Cube& c) const;

  /// True if the cover covers the whole Boolean space.
  bool is_tautology() const;

  /// The complement as a cover (recursive Shannon expansion).
  Cover complement() const;

  /// Cofactor of the cover with respect to cube `c`.
  Cover cofactor(const Cube& c) const;

  /// Removes cubes contained in single other cubes.
  void remove_single_cube_contained();

  /// Total literal count over all cubes.
  std::size_t num_literals() const;

  /// Enumerates all minterms (only for small num_vars; used in tests).
  std::vector<std::vector<bool>> enumerate_minterms() const;

  std::string to_string() const;

 private:
  std::size_t num_vars_ = 0;
  std::vector<Cube> cubes_;
};

/// True for every assignment `bits`: f(bits) as defined by `cover`.
bool eval_cover(const Cover& cover, const std::vector<bool>& bits);

}  // namespace bb::logic
