#include "src/logic/primes.hpp"

namespace bb::logic {

std::optional<Cube> consensus(const Cube& a, const Cube& b) {
  if (a.size() != b.size()) return std::nullopt;
  std::size_t clash = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit la = a[i];
    const Lit lb = b[i];
    if (la != Lit::kDash && lb != Lit::kDash && la != lb) {
      if (clash != a.size()) return std::nullopt;  // distance > 1
      clash = i;
    }
  }
  if (clash == a.size()) return std::nullopt;  // distance 0: no consensus
  Cube out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i == clash) {
      out.set(i, Lit::kDash);
    } else if (a[i] != Lit::kDash) {
      out.set(i, a[i]);
    } else {
      out.set(i, b[i]);
    }
  }
  return out;
}

std::vector<Cube> all_primes(const Cover& on, const Cover& dc) {
  std::vector<Cube> cubes = on.cubes();
  cubes.insert(cubes.end(), dc.cubes().begin(), dc.cubes().end());

  // Iterated consensus with absorption.
  bool changed = true;
  while (changed) {
    changed = false;
    // Absorption: drop cubes contained in another cube.
    std::vector<Cube> kept;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      bool absorbed = false;
      for (std::size_t j = 0; j < cubes.size() && !absorbed; ++j) {
        if (i == j) continue;
        if (cubes[j].contains(cubes[i])) {
          absorbed = !(cubes[i] == cubes[j]) || j < i;
        }
      }
      if (!absorbed) kept.push_back(cubes[i]);
    }
    cubes = std::move(kept);

    const std::size_t n = cubes.size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto c = consensus(cubes[i], cubes[j]);
        if (!c) continue;
        bool already = false;
        for (const Cube& existing : cubes) {
          if (existing.contains(*c)) {
            already = true;
            break;
          }
        }
        if (!already) {
          cubes.push_back(*c);
          changed = true;
        }
      }
    }
  }
  return cubes;
}

}  // namespace bb::logic
