#include "src/logic/cube.hpp"

#include <stdexcept>

namespace bb::logic {

Cube Cube::parse(std::string_view text) {
  Cube c(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '0': c.set(i, Lit::kZero); break;
      case '1': c.set(i, Lit::kOne); break;
      case '-': c.set(i, Lit::kDash); break;
      default:
        throw std::invalid_argument("Cube::parse: bad character in '" +
                                    std::string(text) + "'");
    }
  }
  return c;
}

Cube Cube::from_minterm(const std::vector<bool>& bits) {
  Cube c(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    c.set(i, bits[i] ? Lit::kOne : Lit::kZero);
  }
  return c;
}

std::size_t Cube::num_literals() const {
  std::size_t n = 0;
  for (const Lit l : lits_) {
    if (l != Lit::kDash) ++n;
  }
  return n;
}

bool Cube::contains(const Cube& other) const {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (lits_[i] != Lit::kDash && lits_[i] != other.lits_[i]) return false;
  }
  return true;
}

bool Cube::agrees_with_fixed(const Cube& other) const {
  const std::size_t n = std::min(size(), other.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (other[i] == Lit::kDash) continue;
    if (lits_[i] != Lit::kDash && lits_[i] != other[i]) return false;
  }
  return true;
}

bool Cube::contains_minterm(const std::vector<bool>& bits) const {
  if (bits.size() != size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (lits_[i] == Lit::kDash) continue;
    if ((lits_[i] == Lit::kOne) != bits[i]) return false;
  }
  return true;
}

bool Cube::intersects(const Cube& other) const { return distance(other) == 0; }

std::optional<Cube> Cube::intersect(const Cube& other) const {
  if (size() != other.size()) return std::nullopt;
  Cube out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const Lit a = lits_[i];
    const Lit b = other.lits_[i];
    if (a == Lit::kDash) {
      out.set(i, b);
    } else if (b == Lit::kDash || a == b) {
      out.set(i, a);
    } else {
      return std::nullopt;  // conflicting required values
    }
  }
  return out;
}

Cube Cube::supercube(const Cube& other) const {
  Cube out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.set(i, lits_[i] == other.lits_[i] ? lits_[i] : Lit::kDash);
  }
  return out;
}

std::size_t Cube::distance(const Cube& other) const {
  std::size_t d = 0;
  const std::size_t n = std::min(size(), other.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Lit a = lits_[i];
    const Lit b = other.lits_[i];
    if (a != Lit::kDash && b != Lit::kDash && a != b) ++d;
  }
  return d;
}

Cube Cube::raised(std::size_t i) const {
  Cube out = *this;
  out.set(i, Lit::kDash);
  return out;
}

std::string Cube::to_string() const {
  std::string s;
  s.reserve(size());
  for (const Lit l : lits_) {
    s.push_back(l == Lit::kZero ? '0' : (l == Lit::kOne ? '1' : '-'));
  }
  return s;
}

}  // namespace bb::logic
