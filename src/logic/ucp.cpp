#include "src/logic/ucp.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace bb::logic {

namespace {

struct Matrix {
  // rows[r] = set of columns covering row r; col_rows[c] = rows covered by c.
  std::vector<std::set<std::size_t>> rows;
  std::vector<std::set<std::size_t>> col_rows;
  std::vector<double> cost;
};

Matrix build_matrix(const UcpProblem& p) {
  Matrix m;
  m.cost = p.column_cost;
  m.rows.resize(p.covers.size());
  m.col_rows.resize(p.column_cost.size());
  for (std::size_t r = 0; r < p.covers.size(); ++r) {
    for (const std::size_t c : p.covers[r]) {
      if (c >= p.column_cost.size()) {
        throw std::out_of_range("solve_ucp: column index out of range");
      }
      m.rows[r].insert(c);
      m.col_rows[c].insert(r);
    }
  }
  return m;
}

struct State {
  std::vector<bool> row_covered;
  std::vector<bool> col_removed;
  std::vector<std::size_t> chosen;
  double cost = 0.0;
  std::size_t rows_left = 0;
};

void choose_column(const Matrix& m, State& s, std::size_t c) {
  s.chosen.push_back(c);
  s.cost += m.cost[c];
  s.col_removed[c] = true;
  for (const std::size_t r : m.col_rows[c]) {
    if (!s.row_covered[r]) {
      s.row_covered[r] = true;
      --s.rows_left;
    }
  }
}

/// Greedy completion: repeatedly pick the column covering the most
/// uncovered rows per unit cost.  `greedy_rounds` batches the iteration
/// count for the caller to publish once per solve.
bool greedy_complete(const Matrix& m, State s, UcpSolution& best,
                     util::WorkBudget* budget, std::uint64_t& greedy_rounds) {
  while (s.rows_left > 0) {
    ++greedy_rounds;
    if (budget != nullptr) budget->charge();
    std::size_t best_col = m.cost.size();
    double best_ratio = -1.0;
    for (std::size_t c = 0; c < m.cost.size(); ++c) {
      if (s.col_removed[c]) continue;
      std::size_t gain = 0;
      for (const std::size_t r : m.col_rows[c]) {
        if (!s.row_covered[r]) ++gain;
      }
      if (gain == 0) continue;
      const double ratio =
          static_cast<double>(gain) / std::max(m.cost[c], 1e-9);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_col = c;
      }
    }
    if (best_col == m.cost.size()) return false;  // infeasible
    choose_column(m, s, best_col);
  }
  if (!best.feasible || s.cost < best.cost) {
    best.feasible = true;
    best.cost = s.cost;
    best.columns = s.chosen;
  }
  return true;
}

void branch(const Matrix& m, State s, UcpSolution& best, std::size_t& nodes,
            util::WorkBudget* budget, std::uint64_t& greedy_rounds) {
  if (nodes == 0) {
    greedy_complete(m, std::move(s), best, budget, greedy_rounds);
    return;
  }
  --nodes;
  if (budget != nullptr) budget->charge();

  // Reduction: essential columns (rows covered by exactly one live column).
  bool reduced = true;
  while (reduced) {
    reduced = false;
    for (std::size_t r = 0; r < m.rows.size(); ++r) {
      if (s.row_covered[r]) continue;
      std::size_t live = 0;
      std::size_t only = 0;
      for (const std::size_t c : m.rows[r]) {
        if (!s.col_removed[c]) {
          ++live;
          only = c;
        }
      }
      if (live == 0) return;  // infeasible branch
      if (live == 1) {
        choose_column(m, s, only);
        reduced = true;
      }
    }
  }
  if (s.rows_left == 0) {
    if (!best.feasible || s.cost < best.cost) {
      best.feasible = true;
      best.cost = s.cost;
      best.columns = s.chosen;
    }
    return;
  }
  if (best.feasible && s.cost >= best.cost) return;  // bound

  // Branch on the hardest row (fewest live covering columns).
  std::size_t pick = m.rows.size();
  std::size_t pick_live = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < m.rows.size(); ++r) {
    if (s.row_covered[r]) continue;
    std::size_t live = 0;
    for (const std::size_t c : m.rows[r]) {
      if (!s.col_removed[c]) ++live;
    }
    if (live < pick_live) {
      pick_live = live;
      pick = r;
    }
  }
  if (pick == m.rows.size()) return;

  for (const std::size_t c : m.rows[pick]) {
    if (s.col_removed[c]) continue;
    State next = s;
    choose_column(m, next, c);
    branch(m, std::move(next), best, nodes, budget, greedy_rounds);
  }
}

}  // namespace

UcpSolution solve_ucp(const UcpProblem& problem, util::WorkBudget* budget) {
  obs::Span span("logic.ucp", obs::kCatLogic);
  span.arg("rows", static_cast<std::uint64_t>(problem.covers.size()));
  span.arg("columns", static_cast<std::uint64_t>(problem.column_cost.size()));
  const Matrix m = build_matrix(problem);
  State init;
  init.row_covered.assign(m.rows.size(), false);
  init.col_removed.assign(m.cost.size(), false);
  init.rows_left = m.rows.size();

  UcpSolution best;
  std::uint64_t greedy_rounds = 0;
  greedy_complete(m, init, best, budget, greedy_rounds);  // upper bound
  constexpr std::size_t kBranchNodes = 200000;
  std::size_t nodes = kBranchNodes;
  branch(m, init, best, nodes, budget, greedy_rounds);
  std::sort(best.columns.begin(), best.columns.end());
  const std::uint64_t branch_nodes = kBranchNodes - nodes;
  obs::Registry& registry = obs::Registry::global();
  registry.counter("logic.ucp.solved").add();
  registry.counter("logic.ucp.branch_nodes").add(branch_nodes);
  registry.counter("logic.ucp.greedy_rounds").add(greedy_rounds);
  span.arg("branch_nodes", branch_nodes);
  span.arg("greedy_rounds", greedy_rounds);
  return best;
}

}  // namespace bb::logic
