// Classic (non-hazard-aware) two-level minimization: the espresso-style
// expand / irredundant / reduce loop.
//
// This is the conventional minimizer a synchronous flow would use.  It is
// deliberately *not* used by the Burst-Mode synthesizer: classic
// irredundancy preserves the function but may leave a required cube
// covered only by a union of products, which is precisely a static-1
// hazard (see tests/espresso_test.cpp for a demonstration).  It exists as
// a general two-level utility and as the baseline the hazard-free
// minimizer is compared against.
#pragma once

#include "src/logic/cover.hpp"

namespace bb::logic {

/// Expands each cube of `cover` to a prime against OFF = NOT(on u dc),
/// then removes cubes contained in the union of the others.
/// Result covers exactly (on minus dc-complement), i.e. the function is
/// preserved on the care set.
Cover espresso_minimize(const Cover& on, const Cover& dc);

/// Removes every cube whose minterms are covered by the remaining cubes
/// plus the don't-care set (single pass, order-dependent).
Cover irredundant(const Cover& cover, const Cover& dc);

/// Maximally expands each cube against the given OFF-set cover.
Cover expand_against(const Cover& cover, const Cover& off);

}  // namespace bb::logic
