// Unate covering problem solver.
//
// Rows are objects that must be covered (e.g. required cubes); columns are
// candidate implicants with costs.  Reduction by essential columns and
// row/column dominance, then branch-and-bound with a greedy upper bound.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/workbudget.hpp"

namespace bb::logic {

struct UcpProblem {
  /// covers[r] lists the column indices that cover row r.
  std::vector<std::vector<std::size_t>> covers;
  /// Cost of selecting each column (same length as the column universe).
  std::vector<double> column_cost;
};

struct UcpSolution {
  std::vector<std::size_t> columns;  ///< selected columns, ascending
  double cost = 0.0;
  bool feasible = false;
};

/// Solves the covering problem exactly for small instances, falling back to
/// a greedy solution when the branch-and-bound node budget is exhausted.
/// When `budget` is given, every branch node and greedy scan charges it;
/// util::WorkBudgetExceeded propagates to the caller (the flow's
/// per-controller degradation path catches it).
UcpSolution solve_ucp(const UcpProblem& problem,
                      util::WorkBudget* budget = nullptr);

}  // namespace bb::logic
