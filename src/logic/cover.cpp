#include "src/logic/cover.hpp"

#include <stdexcept>

#include "src/util/strings.hpp"

namespace bb::logic {

namespace {

/// Picks the most-binate variable of `cubes` for Shannon splitting, or
/// npos when the cover is unate in every variable.
std::size_t pick_binate_var(const std::vector<Cube>& cubes,
                            std::size_t num_vars) {
  std::size_t best = std::string::npos;
  std::size_t best_score = 0;
  for (std::size_t v = 0; v < num_vars; ++v) {
    std::size_t zeros = 0;
    std::size_t ones = 0;
    for (const Cube& c : cubes) {
      if (c[v] == Lit::kZero) ++zeros;
      if (c[v] == Lit::kOne) ++ones;
    }
    if (zeros > 0 && ones > 0) {
      const std::size_t score = zeros + ones;
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
  }
  return best;
}

/// Tautology check on a list of cubes via unate recursion.
bool tautology_rec(const std::vector<Cube>& cubes, std::size_t num_vars) {
  // A cover containing the universal cube is a tautology.
  for (const Cube& c : cubes) {
    if (c.num_literals() == 0) return true;
  }
  if (cubes.empty()) return num_vars == 0;

  const std::size_t v = pick_binate_var(cubes, num_vars);
  if (v == std::string::npos) {
    // Unate cover: tautology iff it contains the universal cube (checked
    // above), unless there are no constrained variables at all.
    return false;
  }
  for (const Lit branch : {Lit::kZero, Lit::kOne}) {
    std::vector<Cube> cof;
    for (const Cube& c : cubes) {
      if (c[v] == Lit::kDash || c[v] == branch) {
        Cube r = c.raised(v);
        cof.push_back(std::move(r));
      }
    }
    if (!tautology_rec(cof, num_vars)) return false;
  }
  return true;
}

/// Recursive complement: returns cubes of NOT(cubes) within universe cube
/// `context` (initially the full cube).
void complement_rec(const std::vector<Cube>& cubes, std::size_t num_vars,
                    const Cube& context, std::vector<Cube>& out) {
  for (const Cube& c : cubes) {
    if (c.num_literals() == 0) return;  // covers everything: empty complement
  }
  if (cubes.empty()) {
    out.push_back(context);
    return;
  }
  // Split on any constrained variable (prefer binate).
  std::size_t v = pick_binate_var(cubes, num_vars);
  if (v == std::string::npos) {
    for (std::size_t i = 0; i < num_vars && v == std::string::npos; ++i) {
      for (const Cube& c : cubes) {
        if (c[i] != Lit::kDash) {
          v = i;
          break;
        }
      }
    }
  }
  if (v == std::string::npos) return;  // only universal cubes (handled above)

  for (const Lit branch : {Lit::kZero, Lit::kOne}) {
    std::vector<Cube> cof;
    for (const Cube& c : cubes) {
      if (c[v] == Lit::kDash || c[v] == branch) cof.push_back(c.raised(v));
    }
    Cube sub_context = context;
    sub_context.set(v, branch);
    complement_rec(cof, num_vars, sub_context, out);
  }
}

}  // namespace

Cover Cover::parse(std::size_t num_vars, std::string_view text) {
  Cover out(num_vars);
  for (const std::string& tok : util::split(text, " \t\n\r")) {
    Cube c = Cube::parse(tok);
    if (c.size() != num_vars) {
      throw std::invalid_argument("Cover::parse: cube width mismatch: " + tok);
    }
    out.add(std::move(c));
  }
  return out;
}

void Cover::add(Cube c) {
  if (c.size() != num_vars_) {
    throw std::invalid_argument("Cover::add: cube width mismatch");
  }
  cubes_.push_back(std::move(c));
}

bool Cover::covers_minterm(const std::vector<bool>& bits) const {
  for (const Cube& c : cubes_) {
    if (c.contains_minterm(bits)) return true;
  }
  return false;
}

bool Cover::covers_cube(const Cube& c) const {
  // f covers c  iff  f cofactored by c is a tautology.
  std::vector<Cube> cof;
  for (const Cube& cube : cubes_) {
    if (const auto inter = cube.intersect(c)) {
      // Raise the variables constrained by c: within c's subspace they are
      // fixed, so they become free in the cofactor.
      Cube r = *inter;
      for (std::size_t v = 0; v < num_vars_; ++v) {
        if (c[v] != Lit::kDash) r.set(v, Lit::kDash);
      }
      cof.push_back(std::move(r));
    }
  }
  return tautology_rec(cof, num_vars_);
}

bool Cover::is_tautology() const { return tautology_rec(cubes_, num_vars_); }

Cover Cover::complement() const {
  std::vector<Cube> out;
  complement_rec(cubes_, num_vars_, Cube(num_vars_), out);
  Cover result(num_vars_, std::move(out));
  result.remove_single_cube_contained();
  return result;
}

Cover Cover::cofactor(const Cube& c) const {
  Cover out(num_vars_);
  for (const Cube& cube : cubes_) {
    if (cube.distance(c) != 0) continue;
    Cube r = cube;
    for (std::size_t v = 0; v < num_vars_; ++v) {
      if (c[v] != Lit::kDash) r.set(v, Lit::kDash);
    }
    out.add(std::move(r));
  }
  return out;
}

void Cover::remove_single_cube_contained() {
  std::vector<Cube> kept;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      if (cubes_[j].contains(cubes_[i])) {
        // Break ties between equal cubes by index so exactly one survives.
        contained = !(cubes_[i] == cubes_[j]) || j < i;
      }
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

std::size_t Cover::num_literals() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.num_literals();
  return n;
}

std::vector<std::vector<bool>> Cover::enumerate_minterms() const {
  if (num_vars_ > 20) {
    throw std::logic_error("enumerate_minterms: too many variables");
  }
  std::vector<std::vector<bool>> out;
  const std::size_t total = std::size_t{1} << num_vars_;
  for (std::size_t m = 0; m < total; ++m) {
    std::vector<bool> bits(num_vars_);
    for (std::size_t v = 0; v < num_vars_; ++v) bits[v] = (m >> v) & 1u;
    if (covers_minterm(bits)) out.push_back(std::move(bits));
  }
  return out;
}

std::string Cover::to_string() const {
  std::string s;
  for (const Cube& c : cubes_) {
    s += c.to_string();
    s += '\n';
  }
  return s;
}

bool eval_cover(const Cover& cover, const std::vector<bool>& bits) {
  return cover.covers_minterm(bits);
}

}  // namespace bb::logic
