#include "src/logic/espresso.hpp"

namespace bb::logic {

Cover expand_against(const Cover& cover, const Cover& off) {
  Cover out(cover.num_vars());
  for (const Cube& cube : cover.cubes()) {
    Cube current = cube;
    for (std::size_t v = 0; v < cover.num_vars(); ++v) {
      if (current[v] == Lit::kDash) continue;
      const Cube raised = current.raised(v);
      bool hits_off = false;
      for (const Cube& o : off.cubes()) {
        if (raised.intersects(o)) {
          hits_off = true;
          break;
        }
      }
      if (!hits_off) current = raised;
    }
    out.add(std::move(current));
  }
  out.remove_single_cube_contained();
  return out;
}

Cover irredundant(const Cover& cover, const Cover& dc) {
  std::vector<Cube> kept = cover.cubes();
  for (std::size_t i = 0; i < kept.size();) {
    // Is kept[i] covered by the others plus the don't-care set?
    Cover rest(cover.num_vars());
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (j != i) rest.add(kept[j]);
    }
    for (const Cube& d : dc.cubes()) rest.add(d);
    if (rest.covers_cube(kept[i])) {
      kept.erase(kept.begin() + i);
    } else {
      ++i;
    }
  }
  return Cover(cover.num_vars(), std::move(kept));
}

Cover espresso_minimize(const Cover& on, const Cover& dc) {
  Cover care_off = [&] {
    Cover all(on.num_vars());
    for (const Cube& c : on.cubes()) all.add(c);
    for (const Cube& c : dc.cubes()) all.add(c);
    return all.complement();
  }();
  const Cover expanded = expand_against(on, care_off);
  return irredundant(expanded, dc);
}

}  // namespace bb::logic
