// Prime-implicant generation via iterated consensus (Quine's method).
//
// The Burst-Mode synthesizer needs *all* primes of (ON u DC) as the raw
// material for dynamic-hazard-free prime generation; controller functions
// are small, so the classic algorithm is entirely adequate.
#pragma once

#include <vector>

#include "src/logic/cover.hpp"
#include "src/logic/cube.hpp"

namespace bb::logic {

/// All prime implicants of the function whose ON-set is covered by `on`
/// and whose don't-care set is covered by `dc`.
std::vector<Cube> all_primes(const Cover& on, const Cover& dc);

/// The consensus of two cubes (exists iff their distance is exactly 1).
std::optional<Cube> consensus(const Cube& a, const Cube& b);

}  // namespace bb::logic
