// Cubes over a fixed set of binary variables, in positional notation.
//
// A cube is a product term: each variable is either required 0, required 1,
// or unconstrained (DASH).  Cubes are the currency of the two-level logic
// engine used by the Burst-Mode synthesizer (Minimalist substitute).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bb::logic {

/// Per-variable literal value inside a cube.
enum class Lit : std::uint8_t {
  kZero = 0,  ///< variable must be 0 (complemented literal)
  kOne = 1,   ///< variable must be 1 (positive literal)
  kDash = 2,  ///< variable unconstrained
};

/// A product term over `size()` binary variables.
class Cube {
 public:
  Cube() = default;

  /// Full cube (all DASH) over `num_vars` variables.
  explicit Cube(std::size_t num_vars) : lits_(num_vars, Lit::kDash) {}

  /// Parses "10-1" style strings ('0', '1', '-').  Throws on bad input.
  static Cube parse(std::string_view text);

  /// Cube matching exactly one minterm, given as a bit vector.
  static Cube from_minterm(const std::vector<bool>& bits);

  std::size_t size() const { return lits_.size(); }
  Lit operator[](std::size_t i) const { return lits_[i]; }
  void set(std::size_t i, Lit v) { lits_[i] = v; }

  /// Number of non-DASH literals.
  std::size_t num_literals() const;

  /// True if this cube's set of minterms contains `other`'s.
  bool contains(const Cube& other) const;

  /// True if, for every variable `other` fixes, this cube is either free
  /// or fixes the same value (no literal of this cube conflicts with
  /// `other`'s constraints).
  bool agrees_with_fixed(const Cube& other) const;

  /// True if the minterm (bit vector) lies inside this cube.
  bool contains_minterm(const std::vector<bool>& bits) const;

  /// True if the two cubes share at least one minterm.
  bool intersects(const Cube& other) const;

  /// The intersection cube, or nullopt if the cubes are disjoint.
  std::optional<Cube> intersect(const Cube& other) const;

  /// Smallest cube containing both (bitwise supercube).
  Cube supercube(const Cube& other) const;

  /// Number of variables where one cube requires 0 and the other requires 1.
  std::size_t distance(const Cube& other) const;

  /// Raises literal `i` to DASH, returning the enlarged cube.
  Cube raised(std::size_t i) const;

  /// Renders as a '0'/'1'/'-' string.
  std::string to_string() const;

  bool operator==(const Cube& other) const = default;

 private:
  std::vector<Lit> lits_;
};

}  // namespace bb::logic
