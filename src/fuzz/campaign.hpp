// The fuzz campaign driver: generate → check → shrink → report.
//
// One campaign draws `count` cases per enabled mode from the seeded
// generator, runs the enabled oracles on each, and delta-debugs every
// discrepancy down to a minimized reproducer.  Everything downstream of
// the clock is deterministic for a given seed: the designs, the
// testbench value streams, the verdicts, and the JSON artifact (which
// carries no wall-clock content), so two same-seed, same-count runs
// are byte-identical.  A time budget truncates the case loop for CI
// use; a truncated artifact says so explicitly instead of silently
// covering fewer cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/gen.hpp"
#include "src/fuzz/oracle.hpp"

namespace bb::fuzz {

/// Schema of FuzzResult::to_json.
inline constexpr int kFuzzCampaignSchemaVersion = 1;

struct FuzzOptions {
  /// PRNG seed.  0 = auto: the BB_SEED environment variable when set
  /// and positive, otherwise 1.
  std::uint64_t seed = 0;
  /// Cases per enabled mode.
  int count = 100;
  /// Generator size budget (GenOptions::max_commands).
  int size = 12;
  /// Wall-clock budget for the whole campaign; 0 = unlimited.  When it
  /// expires the case loop stops and the result is marked truncated.
  long long time_budget_ms = 0;
  bool balsa_mode = true;
  bool netlist_mode = true;
  bool sim_oracle = true;
  bool conformance_oracle = true;
  /// Clustering state cap, as in FlowOptions::optimized().
  int max_states = 40;
  /// Reachability bound for the conformance oracle.  Deliberately
  /// small: a composition this size takes minutes to determinize, and
  /// a counted skip is worth more than a stuck campaign.
  std::size_t state_limit = 1u << 14;
  SimLimits sim_limits;
  /// Predicate-call budget per shrink.
  int shrink_tests = 200;
  /// When non-empty, minimized reproducers are written here (the
  /// directory must exist or be creatable).
  std::string repro_dir;
};

/// The seed a given options.seed resolves to (explicit wins, then the
/// BB_SEED environment variable, then 1).
std::uint64_t effective_seed(const FuzzOptions& options);

/// One noteworthy case: every discrepancy and every skipped oracle run
/// (passes and generator rejects are only counted).
struct CaseReport {
  std::string mode;  ///< "balsa" or "netlist"
  int index = 0;
  std::string oracle;   ///< oracle that fired ("sim" / "conformance")
  std::string verdict;  ///< verdict_name rendering
  std::string detail;
  std::string controller;  ///< conformance: offending controller
  /// Minimized design: mini-Balsa source or recipe text.
  std::string design;
  /// Reproducer file written under repro_dir, "" when none.
  std::string repro_path;
  std::vector<std::string> counterexample;
};

struct FuzzResult {
  std::uint64_t seed = 0;
  int cases_run = 0;
  int passed = 0;
  int rejected = 0;  ///< both flow variants rejected the design
  int skipped = 0;   ///< an oracle could not decide (state limit)
  int discrepancies = 0;
  bool truncated = false;  ///< the time budget expired early
  std::vector<CaseReport> reports;

  std::string to_text() const;
  /// Deterministic artifact: same seed + count, same bytes.
  std::string to_json() const;
};

/// Runs the enabled oracles on one design and returns the worst
/// result (discrepancy > skipped > rejected > pass).  This is the
/// per-case kernel of the campaign and the regression-corpus replayer.
OracleResult check_design(const hsnet::Netlist& netlist,
                          const FuzzOptions& options,
                          std::uint64_t value_seed);

FuzzResult run_fuzz_campaign(const FuzzOptions& options);

// ---- reproducer corpus ----

/// One parsed reproducer file from tests/regressions/.
struct Reproducer {
  std::string path;
  std::string mode;    ///< "balsa" or "netlist"
  std::string oracle;  ///< oracle that originally fired
  /// "clean" when the underlying bug is fixed (the design must pass
  /// both oracles now), or "known-bad" for an open, documented bug
  /// (the design must still fail — the ratchet direction).
  std::string expect;
  std::string note;    ///< free text after "known-bad:"
  std::string design;  ///< source / recipe body
};

/// Renders a reproducer in the corpus file format ("--" header lines
/// followed by the design body).
std::string format_reproducer(const Reproducer& repro, std::uint64_t seed,
                              int index, const std::string& detail);

/// Parses a corpus file.  Throws std::runtime_error on malformed input.
Reproducer parse_reproducer(const std::string& path,
                            const std::string& content);

}  // namespace bb::fuzz
