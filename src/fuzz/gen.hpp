// Random design generation for the differential fuzzer.
//
// Two generators, both driven by the deterministic util::SplitMix64
// stream so one seed reproduces one design forever:
//
//   * generate_procedure — a random mini-Balsa procedure that is legal
//     and terminating *by construction*: every read variable is
//     definitely written first, resources (ports and variables) are
//     partitioned across parallel arms so no channel or variable is
//     raced, `loop` is never emitted and `while` only appears as the
//     bounded-counter idiom, so the program always finishes and the
//     activation handshake completes.
//
//   * generate_recipe — a random control-only handshake-component
//     netlist, expressed as a tiny S-expression ("recipe") over
//     sequence / concur / sync-leaf / skip.  Reusing a channel name in
//     sequential positions exercises Call sharing; names are
//     partitioned across parallel arms for the same race-freedom
//     argument.  The textual recipe round-trips through parse_recipe,
//     which is what makes netlist-mode reproducers self-contained.
#pragma once

#include <string>
#include <vector>

#include "src/balsa/ast.hpp"
#include "src/hsnet/netlist.hpp"
#include "src/util/prng.hpp"

namespace bb::fuzz {

struct GenOptions {
  /// Rough budget on generated command nodes (the "size" knob).
  int max_commands = 12;
  /// Data width for every port and variable, bits (1..8 keeps the
  /// datapath small while still exercising real arithmetic).
  int max_width = 8;
};

/// A random legal, terminating mini-Balsa procedure.
balsa::Procedure generate_procedure(util::SplitMix64& rng,
                                    const GenOptions& options);

// ---- netlist recipes ----

/// One node of a recipe tree.
struct RecipeNode {
  enum class Kind { kSeq, kPar, kSync, kSkip };
  Kind kind = Kind::kSkip;
  std::string channel;               ///< kSync: external channel name
  std::vector<RecipeNode> children;  ///< kSeq, kPar
};

/// A random recipe tree.
RecipeNode generate_recipe(util::SplitMix64& rng, const GenOptions& options);

/// "(seq (sync a) (par (sync b) (skip)))" — parseable rendering.
std::string recipe_to_text(const RecipeNode& node);

/// Inverse of recipe_to_text.  Throws std::runtime_error on malformed
/// input.
RecipeNode parse_recipe(const std::string& text);

/// Builds the control netlist a recipe denotes.  The root is activated
/// through the external sync channel "activate"; every named sync leaf
/// becomes an external channel, shared through a Call component when
/// used more than once.
hsnet::Netlist build_recipe(const RecipeNode& root,
                            const std::string& name = "recipe");

}  // namespace bb::fuzz
