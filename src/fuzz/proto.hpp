// Protocol-surface fuzzing: seeded malformed-input campaigns against
// the three parsers that face untrusted bytes — util::parse_json (the
// wire decoder), serve::parse_request (request shape validation), and
// serve::deserialize_controller (disk-cache entry payloads).
//
// Unlike the differential campaign (campaign.hpp), which compares two
// synthesis pipelines on *valid* designs, this mode asserts the
// robustness contract on *invalid* bytes: every parser must reject
// cleanly — returning its structured error, never throwing, never
// crashing — under truncation, depth bombs, overlong strings, invalid
// UTF-8, embedded NULs, and random corruption.  The JSON artifact is
// byte-deterministic for one seed, like every other campaign artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bb::fuzz {

/// Schema of ProtoFuzzResult::to_json.
inline constexpr int kProtoFuzzSchemaVersion = 1;

struct ProtoFuzzOptions {
  /// PRNG seed.  0 = auto: BB_SEED when set and positive, otherwise 1.
  std::uint64_t seed = 0;
  /// Cases per target (json / request / codec).
  int count = 200;
  /// Wall-clock budget; 0 = unlimited.  Expiry marks the result
  /// truncated instead of silently covering fewer cases.
  long long time_budget_ms = 0;
};

/// One contract violation: a parser that threw, crashed the invariant,
/// or rejected without a structured error.
struct ProtoCaseReport {
  std::string target;  ///< "json" | "request" | "codec"
  int index = 0;
  std::string detail;
  std::string input_preview;  ///< escaped prefix of the offending bytes
};

struct ProtoFuzzResult {
  std::uint64_t seed = 0;
  int cases_run = 0;
  int accepted = 0;    ///< inputs the parser (correctly) still accepted
  int rejected = 0;    ///< clean structured rejections
  int violations = 0;  ///< contract breaches (reports below)
  bool truncated = false;
  std::vector<ProtoCaseReport> reports;

  std::string to_text() const;
  /// Deterministic artifact: same seed + count, same bytes.
  std::string to_json() const;
};

ProtoFuzzResult run_proto_fuzz(const ProtoFuzzOptions& options);

}  // namespace bb::fuzz
