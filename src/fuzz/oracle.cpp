#include "src/fuzz/oracle.hpp"

#include <deque>
#include <memory>
#include <set>

#include "src/bm/compile.hpp"
#include "src/flow/system.hpp"
#include "src/flow/testbench.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/opt/ch_util.hpp"
#include "src/opt/cluster.hpp"
#include "src/petri/from_ch.hpp"
#include "src/trace/automaton.hpp"
#include "src/trace/spec_lts.hpp"
#include "src/trace/verify.hpp"
#include "src/util/prng.hpp"
#include "src/util/strings.hpp"

namespace bb::fuzz {

namespace {

/// FNV-1a, so every channel gets its own value stream under one seed
/// (the same per-stream trick flow/faultsim.cpp uses per design).
std::uint64_t mix_channel(std::uint64_t seed, const std::string& channel) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : channel) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return seed ^ h;
}

/// +1 when the circuit pushes the external data channel (output port),
/// -1 when it pulls (input port), 0 when the port is unused.
int data_direction(const hsnet::Netlist& net, const hsnet::ChannelInfo& info) {
  for (const int id : info.endpoints) {
    const hsnet::Component& c = net.component(id);
    if (c.kind == hsnet::ComponentKind::kFetch) {
      if (c.ports.at(1) == info.name) return -1;
      if (c.ports.at(2) == info.name) return +1;
    }
    if (c.kind == hsnet::ComponentKind::kMerge &&
        c.ports.back() == info.name) {
      return c.op == "pull" ? -1 : +1;
    }
  }
  return 0;
}

std::string join_counts(const std::map<std::string, int>& counts) {
  std::string out;
  for (const auto& [name, n] : counts) {
    if (!out.empty()) out += " ";
    out += name + "=" + std::to_string(n);
  }
  return out;
}

}  // namespace

std::string SimObservation::describe() const {
  if (flow_error) return "flow-error: " + flow_error_text;
  std::string out = status;
  out += completed ? " completed" : " incomplete";
  for (const auto& [name, values] : outputs) {
    out += " " + name + "=[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(values[i]);
    }
    out += "]";
  }
  if (!sync_counts.empty()) out += " sync{" + join_counts(sync_counts) + "}";
  if (!pull_counts.empty()) out += " pull{" + join_counts(pull_counts) + "}";
  return out;
}

SimObservation observe(const hsnet::Netlist& netlist,
                       const flow::FlowOptions& options,
                       std::uint64_t value_seed, const SimLimits& limits) {
  SimObservation obs;
  try {
    flow::System system(netlist, options);
    flow::ActivateDriver activate(system, "activate");

    // Stable-address server storage: System keeps Process pointers.
    std::deque<flow::SyncServer> syncs;
    std::deque<flow::PushServer> pushes;
    struct PullSlot {
      util::SplitMix64 rng;
      std::uint64_t mask;
      std::unique_ptr<flow::PullServer> server;
    };
    std::deque<PullSlot> pulls;

    std::vector<std::string> sync_names, pull_names, push_names;
    for (const auto& [name, info] : netlist.channels()) {
      if (!info.external || name == "activate") continue;
      if (info.endpoints.empty()) continue;  // declared but unused port
      if (info.width == 0) {
        syncs.emplace_back(system, name);
        sync_names.push_back(name);
        continue;
      }
      const int dir = data_direction(netlist, info);
      if (dir > 0) {
        pushes.emplace_back(system, name);
        push_names.push_back(name);
      } else if (dir < 0) {
        PullSlot& slot = pulls.emplace_back(
            PullSlot{util::SplitMix64(mix_channel(value_seed, name)),
                     info.width >= 64 ? ~0ull : (1ull << info.width) - 1,
                     nullptr});
        slot.server = std::make_unique<flow::PullServer>(
            system, name, [&slot] { return slot.rng.next() & slot.mask; });
        pull_names.push_back(name);
      }
    }

    sim::Simulator& sim = system.start();
    const sim::RunStatus status =
        sim.run_status(limits.max_ns, limits.max_events);
    obs.status = std::string(sim::run_status_name(status));
    obs.completed = activate.done() && status == sim::RunStatus::kQuiescent;
    for (std::size_t i = 0; i < sync_names.size(); ++i) {
      obs.sync_counts[sync_names[i]] = syncs[i].completed();
    }
    for (std::size_t i = 0; i < pull_names.size(); ++i) {
      obs.pull_counts[pull_names[i]] = pulls[i].server->served();
    }
    for (std::size_t i = 0; i < push_names.size(); ++i) {
      obs.outputs[push_names[i]] = pushes[i].values();
    }
  } catch (const std::exception& e) {
    obs.flow_error = true;
    obs.flow_error_text = e.what();
  }
  return obs;
}

std::string compare_observations(const SimObservation& optimized,
                                 const SimObservation& baseline) {
  if (optimized.flow_error != baseline.flow_error) {
    const SimObservation& failing = optimized.flow_error ? optimized : baseline;
    return std::string("only the ") +
           (optimized.flow_error ? "optimized" : "baseline") +
           " flow failed: " + failing.flow_error_text;
  }
  if (optimized.flow_error) return "";  // both rejected; caller classifies
  if (optimized.completed != baseline.completed ||
      optimized.status != baseline.status) {
    return "completion differs: optimized [" + optimized.status +
           (optimized.completed ? " completed" : " incomplete") +
           "] vs baseline [" + baseline.status +
           (baseline.completed ? " completed" : " incomplete") + "]";
  }
  if (optimized.outputs != baseline.outputs) {
    return "output values differ: optimized {" + optimized.describe() +
           "} vs baseline {" + baseline.describe() + "}";
  }
  if (optimized.sync_counts != baseline.sync_counts) {
    return "sync handshake counts differ: optimized {" +
           join_counts(optimized.sync_counts) + "} vs baseline {" +
           join_counts(baseline.sync_counts) + "}";
  }
  if (optimized.pull_counts != baseline.pull_counts) {
    return "input handshake counts differ: optimized {" +
           join_counts(optimized.pull_counts) + "} vs baseline {" +
           join_counts(baseline.pull_counts) + "}";
  }
  return "";
}

std::string_view verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPass: return "pass";
    case Verdict::kDiscrepancy: return "discrepancy";
    case Verdict::kRejected: return "rejected";
    case Verdict::kSkipped: return "skipped";
  }
  return "?";
}

OracleResult differential_check(const hsnet::Netlist& netlist,
                                std::uint64_t value_seed,
                                const SimLimits& limits) {
  OracleResult result;
  result.oracle = "sim";
  const SimObservation optimized =
      observe(netlist, flow::FlowOptions::optimized(), value_seed, limits);
  const SimObservation baseline =
      observe(netlist, flow::FlowOptions::unoptimized(), value_seed, limits);

  if (optimized.flow_error && baseline.flow_error) {
    result.verdict = Verdict::kRejected;
    result.detail = "both flows rejected the design: " +
                    optimized.flow_error_text;
    return result;
  }
  const std::string diff = compare_observations(optimized, baseline);
  if (!diff.empty()) {
    result.verdict = Verdict::kDiscrepancy;
    result.detail = diff;
    return result;
  }
  if (!optimized.completed) {
    // Generated designs terminate by construction; agreeing on a hang
    // or deadlock still means the shared pipeline miscompiled it.
    result.verdict = Verdict::kDiscrepancy;
    result.detail =
        "neither variant completed a terminating design: " +
        optimized.describe();
    return result;
  }
  result.verdict = Verdict::kPass;
  return result;
}

namespace {

/// Splits a T2 fragment tag "<call>.fragN" into its call name and
/// 1-based client index, or returns false for ordinary member names.
bool parse_fragment_tag(const std::string& tag, std::string& call_name,
                        int& index) {
  const std::size_t dot = tag.rfind(".frag");
  if (dot == std::string::npos) return false;
  const auto n = util::parse_ll(tag.substr(dot + 5));
  if (!n.has_value() || *n < 1) return false;
  call_name = tag.substr(0, dot);
  index = static_cast<int>(*n);
  return true;
}

/// Rebuilds one CH member program for the T2 call fragments a cluster
/// absorbed from a single Call component.  The fragments of one call
/// act on the same server channel, so modelling them as independent
/// processes is wrong: Petri composition would fuse their server
/// transitions and demand they fire together.  Instead the in-cluster
/// client enclosures are folded into one mutually-exclusive process,
/// exactly the shape hsnet::to_ch gives the full component (restricted
/// to the absorbed clients).
ch::Program make_call_member(const hsnet::Netlist& netlist,
                             const std::string& call_name,
                             const std::vector<int>& indices) {
  for (const hsnet::Component& c : netlist.components()) {
    if (c.kind != hsnet::ComponentKind::kCall) continue;
    if (c.display_name() != call_name) continue;
    const std::string& server = c.ports.at(static_cast<std::size_t>(c.ways));
    std::vector<ch::ExprPtr> alts;
    for (const int index : indices) {
      if (index < 1 || index > c.ways) {
        throw std::runtime_error("fragment index out of range for " +
                                 call_name);
      }
      alts.push_back(ch::enc_early(
          ch::ptop(ch::Activity::kPassive,
                   c.ports.at(static_cast<std::size_t>(index - 1))),
          ch::ptop(ch::Activity::kActive, server)));
    }
    ch::ExprPtr body = std::move(alts.back());
    for (std::size_t i = alts.size() - 1; i-- > 0;) {
      body = ch::mutex(std::move(alts[i]), std::move(body));
    }
    return ch::Program(call_name + ".frags", ch::rep(std::move(body)));
  }
  throw std::runtime_error("no call component named " + call_name);
}

}  // namespace

OracleResult conformance_check(const hsnet::Netlist& netlist, int max_states,
                               std::size_t state_limit) {
  OracleResult result;
  result.oracle = "conformance";
  int skipped = 0;
  try {
    const std::vector<ch::Program> originals =
        hsnet::control_programs(netlist);
    std::map<std::string, const ch::Program*> by_name;
    for (const ch::Program& p : originals) by_name[p.name] = &p;

    std::vector<ch::Program> input;
    input.reserve(originals.size());
    for (const ch::Program& p : originals) input.push_back(p.clone());
    opt::ClusterOptions cluster_options;
    cluster_options.max_states = max_states;
    const std::vector<opt::ClusteredProgram> clustered =
        opt::optimize(std::move(input), cluster_options);

    for (const opt::ClusteredProgram& cp : clustered) {
      if (cp.members.size() >= 2) {
        std::vector<ch::Program> fragments;
        std::vector<const ch::Expr*> members;
        try {
          // Group T2 fragments by their originating Call: fragments of
          // one call become a single mutually-exclusive member.
          std::map<std::string, std::vector<int>> call_fragments;
          for (const std::string& member : cp.members) {
            const auto it = by_name.find(member);
            std::string call_name;
            int index = 0;
            if (it != by_name.end()) {
              members.push_back(it->second->body.get());
            } else if (parse_fragment_tag(member, call_name, index)) {
              call_fragments[call_name].push_back(index);
            } else {
              throw std::runtime_error("unknown cluster member " + member);
            }
          }
          for (const auto& [call_name, indices] : call_fragments) {
            fragments.push_back(make_call_member(netlist, call_name, indices));
            members.push_back(fragments.back().body.get());
          }
          // The internalized channels: mentioned by some member but no
          // longer visible on the clustered controller's interface.
          std::set<std::string> member_channels;
          for (const ch::Expr* e : members) {
            for (const std::string& c : opt::channel_names(*e)) {
              member_channels.insert(c);
            }
          }
          std::set<std::string> interface;
          for (const std::string& c : opt::channel_names(*cp.program.body)) {
            interface.insert(c);
          }
          std::vector<std::string> hidden;
          for (const std::string& c : member_channels) {
            if (!interface.count(c)) hidden.push_back(c);
          }
          const trace::VerifyResult vr = trace::verify_composition(
              members, hidden, *cp.program.body, state_limit);
          if (!vr.equivalent) {
            result.verdict = Verdict::kDiscrepancy;
            result.controller = cp.program.name;
            result.counterexample = vr.counterexample;
            result.detail = "clustered controller '" + cp.program.name +
                            "' does not conform to its composed members";
            return result;
          }
        } catch (const std::exception&) {
          ++skipped;  // state explosion or unexpected structure
        }
      }
      // Every controller's CH traces must be accepted by the trace
      // language of its compiled Burst-Mode machine.
      try {
        const bm::Spec spec = bm::compile(*cp.program.body, cp.program.name);
        const trace::Dfa spec_dfa =
            trace::determinize(trace::bm_spec_lts(spec));
        const trace::Dfa ch_dfa = trace::determinize(
            petri::from_ch(*cp.program.body).reachability(state_limit));
        const std::vector<std::string> cex =
            trace::containment_counterexample(spec_dfa, ch_dfa);
        if (!cex.empty()) {
          result.verdict = Verdict::kDiscrepancy;
          result.controller = cp.program.name;
          result.counterexample = cex;
          result.detail = "controller '" + cp.program.name +
                          "' exhibits a trace its BM machine never allows";
          return result;
        }
      } catch (const std::exception&) {
        ++skipped;
      }
    }
  } catch (const std::exception& e) {
    result.verdict = Verdict::kSkipped;
    result.detail = std::string("conformance oracle unavailable: ") + e.what();
    return result;
  }
  if (skipped > 0) {
    result.verdict = Verdict::kSkipped;
    result.detail =
        std::to_string(skipped) + " conformance check(s) skipped (state limit)";
    return result;
  }
  result.verdict = Verdict::kPass;
  return result;
}

}  // namespace bb::fuzz
