#include "src/fuzz/gen.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <map>
#include <set>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace bb::fuzz {

namespace {

using balsa::BinOp;
using balsa::Command;
using balsa::CommandPtr;
using balsa::Expr;
using balsa::ExprPtr;
using balsa::UnOp;

// ---- AST construction helpers ----

CommandPtr make_command(Command::Kind kind) {
  auto c = std::make_unique<Command>();
  c->kind = kind;
  return c;
}

ExprPtr literal(std::uint64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = value;
  return e;
}

ExprPtr var_read(const std::string& name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kVar;
  e->var = name;
  return e;
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

CommandPtr assign(const std::string& var, ExprPtr value) {
  auto c = make_command(Command::Kind::kAssign);
  c->var = var;
  c->value = std::move(value);
  return c;
}

// ---- the procedure generator ----

/// The resources one generation context may touch.  Parallel arms get
/// disjoint partitions of their parent's resources, which is the
/// race-freedom argument: no channel or variable is ever used from two
/// concurrent arms.
struct Resources {
  std::vector<std::string> syncs;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> vars;
  /// Variables definitely written on every path reaching this point;
  /// reads draw only from this set.
  std::set<std::string> written;
};

class ProcedureGen {
 public:
  ProcedureGen(util::SplitMix64& rng, const GenOptions& options)
      : rng_(rng), options_(options) {}

  balsa::Procedure run() {
    balsa::Procedure proc;
    proc.name = "fuzzed";
    width_ = 1 + static_cast<int>(rng_.below(
                     static_cast<std::uint64_t>(std::max(1, options_.max_width))));

    Resources rs;
    const auto add_ports = [&](balsa::PortDir dir, const char* stem,
                               std::vector<std::string>& pool, int count) {
      for (int i = 0; i < count; ++i) {
        const std::string name = stem + std::string(1, static_cast<char>('a' + i));
        proc.ports.push_back(
            balsa::Port{name, dir, dir == balsa::PortDir::kSync ? 0 : width_});
        pool.push_back(name);
      }
    };
    add_ports(balsa::PortDir::kSync, "k", rs.syncs,
              static_cast<int>(rng_.below(3)));
    add_ports(balsa::PortDir::kInput, "x", rs.inputs,
              static_cast<int>(rng_.below(3)));
    add_ports(balsa::PortDir::kOutput, "y", rs.outputs,
              static_cast<int>(rng_.below(3)));
    if (rs.syncs.empty() && rs.inputs.empty() && rs.outputs.empty()) {
      add_ports(balsa::PortDir::kSync, "k", rs.syncs, 1);
    }
    const int n_vars = 1 + static_cast<int>(rng_.below(3));
    for (int i = 0; i < n_vars; ++i) {
      const std::string name = "v" + std::string(1, static_cast<char>('a' + i));
      proc.variables.push_back(balsa::VariableDecl{name, width_});
      rs.vars.push_back(name);
    }

    budget_ = std::max(1, options_.max_commands);
    proc.body = command(rs, 0);
    return proc;
  }

 private:
  std::uint64_t pick(std::uint64_t n) { return rng_.below(n); }

  template <typename T>
  const T& choose(const std::vector<T>& pool) {
    return pool[static_cast<std::size_t>(pick(pool.size()))];
  }

  // ---- expressions ----

  ExprPtr expression(const Resources& rs, int depth) {
    std::vector<std::string> readable(rs.written.begin(), rs.written.end());
    // Keep readable deterministic: std::set iterates in sorted order.
    const bool can_read = !readable.empty();
    enum { kLit, kVar, kBin, kUn, kSlice };
    std::vector<int> kinds{kLit, kLit};
    if (can_read) kinds.insert(kinds.end(), {kVar, kVar, kSlice});
    if (depth < 2) kinds.insert(kinds.end(), {kBin, kBin, kUn});
    switch (choose(kinds)) {
      case kVar:
        return var_read(choose(readable));
      case kBin: {
        static const BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kAnd,
                                     BinOp::kOr,  BinOp::kXor, BinOp::kEq,
                                     BinOp::kNe,  BinOp::kLt,  BinOp::kShl,
                                     BinOp::kShr};
        const BinOp op = kOps[pick(std::size(kOps))];
        ExprPtr lhs = expression(rs, depth + 1);
        // Keep shift distances small so results stay in-width.
        ExprPtr rhs = (op == BinOp::kShl || op == BinOp::kShr)
                          ? literal(pick(4))
                          : expression(rs, depth + 1);
        return binary(op, std::move(lhs), std::move(rhs));
      }
      case kUn: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kUnary;
        e->un_op = pick(2) == 0 ? UnOp::kNot : UnOp::kNeg;
        e->lhs = expression(rs, depth + 1);
        return e;
      }
      case kSlice: {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kSlice;
        e->lhs = var_read(choose(readable));
        e->slice_hi = static_cast<int>(pick(static_cast<std::uint64_t>(width_)));
        e->slice_lo = static_cast<int>(pick(static_cast<std::uint64_t>(e->slice_hi + 1)));
        return e;
      }
      default:
        return literal(pick(1ull << width_));
    }
  }

  // ---- commands ----

  /// Splits every resource of `rs` randomly between two arms.
  std::pair<Resources, Resources> partition(const Resources& rs) {
    Resources a, b;
    const auto split = [&](const std::vector<std::string>& pool,
                           std::vector<std::string> Resources::* field) {
      for (const std::string& name : pool) {
        Resources& arm = pick(2) == 0 ? a : b;
        (arm.*field).push_back(name);
      }
    };
    split(rs.syncs, &Resources::syncs);
    split(rs.inputs, &Resources::inputs);
    split(rs.outputs, &Resources::outputs);
    split(rs.vars, &Resources::vars);
    for (const std::string& name : rs.written) {
      const auto owns = [&name](const Resources& arm) {
        return std::find(arm.vars.begin(), arm.vars.end(), name) !=
               arm.vars.end();
      };
      if (owns(a)) a.written.insert(name);
      if (owns(b)) b.written.insert(name);
    }
    return {std::move(a), std::move(b)};
  }

  CommandPtr leaf(Resources& rs) {
    enum { kSync, kSend, kReceive, kAssign, kContinue };
    std::vector<int> kinds{kContinue};
    if (!rs.syncs.empty()) kinds.insert(kinds.end(), {kSync, kSync, kSync});
    if (!rs.outputs.empty()) kinds.insert(kinds.end(), {kSend, kSend, kSend});
    if (!rs.inputs.empty() && !rs.vars.empty()) {
      kinds.insert(kinds.end(), {kReceive, kReceive, kReceive});
    }
    if (!rs.vars.empty()) kinds.insert(kinds.end(), {kAssign, kAssign});
    switch (choose(kinds)) {
      case kSync: {
        auto c = make_command(Command::Kind::kSync);
        c->channel = choose(rs.syncs);
        return c;
      }
      case kSend: {
        auto c = make_command(Command::Kind::kSend);
        c->channel = choose(rs.outputs);
        c->value = expression(rs, 0);
        return c;
      }
      case kReceive: {
        auto c = make_command(Command::Kind::kReceive);
        c->channel = choose(rs.inputs);
        c->var = choose(rs.vars);
        rs.written.insert(c->var);
        return c;
      }
      case kAssign: {
        const std::string& var = choose(rs.vars);
        auto c = assign(var, expression(rs, 0));
        rs.written.insert(var);
        return c;
      }
      default:
        return make_command(Command::Kind::kContinue);
    }
  }

  CommandPtr command(Resources& rs, int depth) {
    --budget_;
    enum { kLeaf, kSeq, kPar, kIf, kCase, kWhile };
    std::vector<int> kinds{kLeaf, kLeaf};
    if (budget_ > 1 && depth < 3) {
      kinds.insert(kinds.end(), {kSeq, kSeq, kSeq, kIf});
      if (rs.syncs.size() + rs.inputs.size() + rs.outputs.size() +
              rs.vars.size() >= 2) {
        kinds.insert(kinds.end(), {kPar, kPar});
      }
      if (budget_ > 2) kinds.push_back(kCase);
      if (rs.vars.size() >= 2) kinds.push_back(kWhile);
    }
    switch (choose(kinds)) {
      case kSeq: {
        auto c = make_command(Command::Kind::kSeq);
        const int n = 2 + static_cast<int>(pick(2));
        for (int i = 0; i < n; ++i) {
          c->children.push_back(command(rs, depth + 1));
        }
        return c;
      }
      case kPar: {
        auto [left, right] = partition(rs);
        auto c = make_command(Command::Kind::kPar);
        c->children.push_back(command(left, depth + 1));
        c->children.push_back(command(right, depth + 1));
        // Both arms complete before the par does, so their definite
        // writes are definite afterwards.
        rs.written.insert(left.written.begin(), left.written.end());
        rs.written.insert(right.written.begin(), right.written.end());
        return c;
      }
      case kIf: {
        auto c = make_command(Command::Kind::kIf);
        c->guard = expression(rs, 0);
        Resources then_rs = rs;
        c->body = command(then_rs, depth + 1);
        if (pick(2) == 0) {
          Resources else_rs = rs;
          c->else_body = command(else_rs, depth + 1);
          for (const std::string& v : then_rs.written) {
            if (else_rs.written.count(v)) rs.written.insert(v);
          }
        }
        return c;
      }
      case kCase: {
        auto c = make_command(Command::Kind::kCase);
        c->guard = expression(rs, 0);
        const int n_alts = 2 + static_cast<int>(pick(2));
        std::set<std::uint64_t> labels;
        for (int i = 0; i < n_alts; ++i) {
          balsa::CaseAlt alt;
          std::uint64_t label = pick(6);
          while (labels.count(label)) label = (label + 1) % 6;
          labels.insert(label);
          alt.labels.push_back(label);
          if (pick(3) == 0) {
            label = pick(6);
            if (!labels.count(label)) {
              labels.insert(label);
              alt.labels.push_back(label);
            }
          }
          Resources alt_rs = rs;
          alt.body = command(alt_rs, depth + 1);
          c->alts.push_back(std::move(alt));
        }
        if (pick(2) == 0) {
          balsa::CaseAlt alt;  // else
          Resources alt_rs = rs;
          alt.body = command(alt_rs, depth + 1);
          c->alts.push_back(std::move(alt));
        }
        // Unlabelled selector values skip the whole case, so no branch
        // write is definite afterwards.
        return c;
      }
      case kWhile: {
        // Terminating by construction: a reserved counter variable the
        // body cannot touch bounds the iteration count.
        const std::string counter = choose(rs.vars);
        Resources body_rs = rs;
        body_rs.vars.erase(std::remove(body_rs.vars.begin(),
                                       body_rs.vars.end(), counter),
                           body_rs.vars.end());
        body_rs.written.erase(counter);
        // The bound must be reachable by a counter of width_ bits or
        // the guard never goes false (e.g. a 1-bit counter vs `< 3`).
        const std::uint64_t max_bound =
            std::min<std::uint64_t>(3, (1ull << width_) - 1);
        const std::uint64_t bound = 1 + pick(max_bound);

        auto loop = make_command(Command::Kind::kWhile);
        loop->guard = binary(BinOp::kLt, var_read(counter), literal(bound));
        auto body = make_command(Command::Kind::kSeq);
        body->children.push_back(command(body_rs, depth + 1));
        body->children.push_back(
            assign(counter, binary(BinOp::kAdd, var_read(counter), literal(1))));
        loop->body = std::move(body);

        // The loop always runs `bound` >= 1 times, so the body's
        // definite writes survive it; the counter itself is written by
        // the initialization.
        rs.written.insert(body_rs.written.begin(), body_rs.written.end());
        rs.written.insert(counter);

        auto c = make_command(Command::Kind::kSeq);
        c->children.push_back(assign(counter, literal(0)));
        c->children.push_back(std::move(loop));
        return c;
      }
      default:
        return leaf(rs);
    }
  }

  util::SplitMix64& rng_;
  const GenOptions& options_;
  int width_ = 8;
  int budget_ = 0;
};

// ---- recipe generation ----

RecipeNode gen_recipe_node(util::SplitMix64& rng,
                           std::vector<std::string> pool, int& budget,
                           int depth) {
  --budget;
  enum { kSync, kSkip, kSeq, kPar };
  std::vector<int> kinds{kSkip};
  if (!pool.empty()) kinds.insert(kinds.end(), {kSync, kSync, kSync});
  if (budget > 1 && depth < 4) {
    kinds.insert(kinds.end(), {kSeq, kSeq, kSeq});
    if (pool.size() >= 2) kinds.insert(kinds.end(), {kPar, kPar});
  }
  RecipeNode node;
  switch (kinds[static_cast<std::size_t>(rng.below(kinds.size()))]) {
    case kSync:
      node.kind = RecipeNode::Kind::kSync;
      node.channel = pool[static_cast<std::size_t>(rng.below(pool.size()))];
      return node;
    case kSeq: {
      node.kind = RecipeNode::Kind::kSeq;
      const int n = 2 + static_cast<int>(rng.below(2));
      for (int i = 0; i < n; ++i) {
        node.children.push_back(gen_recipe_node(rng, pool, budget, depth + 1));
      }
      return node;
    }
    case kPar: {
      node.kind = RecipeNode::Kind::kPar;
      std::vector<std::string> left, right;
      for (std::string& name : pool) {
        (rng.below(2) == 0 ? left : right).push_back(std::move(name));
      }
      node.children.push_back(
          gen_recipe_node(rng, std::move(left), budget, depth + 1));
      node.children.push_back(
          gen_recipe_node(rng, std::move(right), budget, depth + 1));
      return node;
    }
    default:
      node.kind = RecipeNode::Kind::kSkip;
      return node;
  }
}

// ---- recipe text round trip ----

struct RecipeParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_space() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  [[noreturn]] void fail(const std::string& message) {
    throw std::runtime_error("recipe:" + std::to_string(pos) + ": " + message);
  }

  void expect(char c) {
    skip_space();
    if (pos >= text.size() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  std::string atom() {
    skip_space();
    std::size_t start = pos;
    while (pos < text.size() && text[pos] != '(' && text[pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos == start) fail("expected atom");
    return std::string(text.substr(start, pos - start));
  }

  RecipeNode node() {
    expect('(');
    RecipeNode n;
    const std::string kind = atom();
    if (kind == "sync") {
      n.kind = RecipeNode::Kind::kSync;
      n.channel = atom();
    } else if (kind == "skip") {
      n.kind = RecipeNode::Kind::kSkip;
    } else if (kind == "seq" || kind == "par") {
      n.kind = kind == "seq" ? RecipeNode::Kind::kSeq : RecipeNode::Kind::kPar;
      skip_space();
      while (pos < text.size() && text[pos] == '(') {
        n.children.push_back(node());
        skip_space();
      }
      if (n.children.empty()) fail("'" + kind + "' needs children");
    } else {
      fail("unknown recipe form '" + kind + "'");
    }
    expect(')');
    return n;
  }
};

void count_leaf_uses(const RecipeNode& node, std::map<std::string, int>& uses) {
  if (node.kind == RecipeNode::Kind::kSync) ++uses[node.channel];
  for (const RecipeNode& child : node.children) count_leaf_uses(child, uses);
}

class RecipeBuilder {
 public:
  explicit RecipeBuilder(const RecipeNode& root, const std::string& name)
      : net_(name) {
    count_leaf_uses(root, uses_);
    net_.declare_channel("activate", 0, /*external=*/true);
    for (const auto& [channel, n] : uses_) {
      net_.declare_channel(channel, 0, /*external=*/true);
    }
    const std::string root_channel = visit(root);
    if (uses_.count(root_channel)) {
      // The whole recipe is one singly-used leaf; bridge with a 1-way
      // call exactly like balsa::compile's bind_activation.
      hsnet::Component call;
      call.kind = hsnet::ComponentKind::kCall;
      call.ports = {"activate", root_channel};
      call.ways = 1;
      net_.add(std::move(call));
    } else {
      net_.rename_channel(root_channel, "activate");
    }
    for (auto& [channel, clients] : clients_) {
      hsnet::Component call;
      call.kind = hsnet::ComponentKind::kCall;
      call.ports = clients;
      call.ports.push_back(channel);
      call.ways = static_cast<int>(clients.size());
      net_.add(std::move(call));
    }
  }

  hsnet::Netlist take() { return std::move(net_); }

 private:
  std::string fresh() {
    const std::string name = "t" + std::to_string(next_++);
    net_.declare_channel(name, 0);
    return name;
  }

  std::string visit(const RecipeNode& node) {
    switch (node.kind) {
      case RecipeNode::Kind::kSync: {
        if (uses_.at(node.channel) <= 1) return node.channel;
        const std::string client = "u" + std::to_string(next_client_++);
        net_.declare_channel(client, 0);
        clients_[node.channel].push_back(client);
        return client;
      }
      case RecipeNode::Kind::kSkip: {
        const std::string act = fresh();
        hsnet::Component skip;
        skip.kind = hsnet::ComponentKind::kContinue;
        skip.ports = {act};
        net_.add(std::move(skip));
        return act;
      }
      case RecipeNode::Kind::kSeq:
      case RecipeNode::Kind::kPar: {
        const std::string act = fresh();
        hsnet::Component comp;
        comp.kind = node.kind == RecipeNode::Kind::kSeq
                        ? hsnet::ComponentKind::kSequence
                        : hsnet::ComponentKind::kConcur;
        comp.ports = {act};
        for (const RecipeNode& child : node.children) {
          comp.ports.push_back(visit(child));
        }
        comp.ways = static_cast<int>(node.children.size());
        net_.add(std::move(comp));
        return act;
      }
    }
    throw std::runtime_error("build_recipe: unhandled node kind");
  }

  hsnet::Netlist net_;
  std::map<std::string, int> uses_;
  std::map<std::string, std::vector<std::string>> clients_;
  int next_ = 0;
  int next_client_ = 0;
};

}  // namespace

balsa::Procedure generate_procedure(util::SplitMix64& rng,
                                    const GenOptions& options) {
  return ProcedureGen(rng, options).run();
}

RecipeNode generate_recipe(util::SplitMix64& rng, const GenOptions& options) {
  const int n_names = 2 + static_cast<int>(rng.below(4));
  std::vector<std::string> pool;
  for (int i = 0; i < n_names; ++i) {
    pool.push_back(std::string(1, static_cast<char>('a' + i)));
  }
  int budget = std::max(1, options.max_commands);
  return gen_recipe_node(rng, std::move(pool), budget, 0);
}

std::string recipe_to_text(const RecipeNode& node) {
  switch (node.kind) {
    case RecipeNode::Kind::kSync:
      return "(sync " + node.channel + ")";
    case RecipeNode::Kind::kSkip:
      return "(skip)";
    case RecipeNode::Kind::kSeq:
    case RecipeNode::Kind::kPar: {
      std::string out =
          node.kind == RecipeNode::Kind::kSeq ? "(seq" : "(par";
      for (const RecipeNode& child : node.children) {
        out += " " + recipe_to_text(child);
      }
      return out + ")";
    }
  }
  throw std::runtime_error("recipe_to_text: unhandled node kind");
}

RecipeNode parse_recipe(const std::string& text) {
  RecipeParser parser{text};
  RecipeNode root = parser.node();
  parser.skip_space();
  if (parser.pos != text.size()) parser.fail("trailing input");
  return root;
}

hsnet::Netlist build_recipe(const RecipeNode& root, const std::string& name) {
  RecipeBuilder builder(root, name);
  return builder.take();
}

}  // namespace bb::fuzz
