#include "src/fuzz/proto.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <string_view>

#include "src/bm/parse.hpp"
#include "src/minimalist/synth.hpp"
#include "src/serve/codec.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"
#include "src/util/prng.hpp"
#include "src/util/strings.hpp"

namespace bb::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t resolve_seed(std::uint64_t seed) {
  if (seed != 0) return seed;
  if (const char* env = std::getenv("BB_SEED")) {
    if (const auto parsed = util::parse_ll(env); parsed && *parsed > 0) {
      return static_cast<std::uint64_t>(*parsed);
    }
  }
  return 1;
}

/// Escaped, bounded rendering of raw fuzz bytes for reports (the JSON
/// artifact must stay valid and small whatever the input was).
std::string preview(std::string_view input) {
  constexpr std::size_t kMax = 80;
  std::string out;
  for (std::size_t i = 0; i < input.size() && i < kMax; ++i) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    if (c >= 0x20 && c < 0x7f && c != '\\' && c != '"') {
      out.push_back(static_cast<char>(c));
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    }
  }
  if (input.size() > kMax) out += "...";
  return out;
}

// ---- seeded malformed-input generator ----

/// The valid request every request-target mutation starts from, so
/// mutations explore the boundary of validity rather than deep garbage
/// space only.
std::string base_request(util::SplitMix64& rng) {
  static const char* kOps[] = {"ping", "stats", "synthesize",
                               "synthesize_bm", "analyze"};
  const char* op = kOps[rng.below(5)];
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", 1);
  w.member("id", "f" + std::to_string(rng.below(1000)));
  w.member("op", op);
  if (std::string_view(op) == "synthesize" ||
      std::string_view(op) == "analyze") {
    w.member("source", "procedure p () begin sync end");
  } else if (std::string_view(op) == "synthesize_bm") {
    w.member("bms", "name w\ninput r 0\noutput a 0\n0 1 r+ | a+\n1 0 r- | a-\n");
  }
  w.end_object();
  return w.str();
}

/// In-place corruption families shared by every target: truncation,
/// NUL injection, invalid UTF-8, byte flips, chunk duplication.
std::string corrupt(std::string text, util::SplitMix64& rng) {
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    if (text.empty()) break;
    switch (rng.below(6)) {
      case 0:  // truncate
        text.resize(rng.below(text.size() + 1));
        break;
      case 1:  // embedded NUL
        text.insert(rng.below(text.size() + 1), 1, '\0');
        break;
      case 2: {  // invalid UTF-8: overlong lead / bare continuation / 0xff
        static const char* kBad[] = {"\xc0\xaf", "\x80", "\xff\xfe",
                                     "\xed\xa0\x80"};
        text.insert(rng.below(text.size() + 1), kBad[rng.below(4)]);
        break;
      }
      case 3:  // flip one byte
        text[rng.below(text.size())] =
            static_cast<char>(rng.below(256));
        break;
      case 4: {  // duplicate a chunk
        const std::size_t from = rng.below(text.size());
        const std::size_t len = rng.below(text.size() - from) + 1;
        text.insert(rng.below(text.size() + 1), text.substr(from, len));
        break;
      }
      case 5:  // delete a chunk
        text.erase(rng.below(text.size()),
                   rng.below(16) + 1);
        break;
    }
  }
  return text;
}

/// A nesting bomb: enough unclosed depth to smash an unguarded
/// recursive-descent parser's stack.
std::string depth_bomb(util::SplitMix64& rng) {
  const std::size_t depth = 64 + rng.below(8192);
  const bool arrays = rng.below(2) == 0;
  std::string text;
  text.reserve(arrays ? depth : depth * 5 + 16);
  for (std::size_t i = 0; i < depth; ++i) {
    text += arrays ? "[" : "{\"a\":";
  }
  if (rng.below(2) == 0) text += "1";  // sometimes well-formed at the core
  return text;
}

/// An overlong string member (and key), probing length limits.
std::string overlong(util::SplitMix64& rng) {
  const std::size_t len = 1024 + rng.below(1 << 18);
  std::string text = "{\"op\":\"";
  text.append(len, 'a');
  if (rng.below(2) == 0) text += "\"}";  // valid JSON, hostile size
  return text;
}

std::string random_garbage(util::SplitMix64& rng) {
  std::string text(rng.below(256) + 1, '\0');
  for (char& c : text) c = static_cast<char>(rng.below(256));
  return text;
}

std::string next_input(const std::string& base, util::SplitMix64& rng) {
  switch (rng.below(8)) {
    case 0:
      return depth_bomb(rng);
    case 1:
      return overlong(rng);
    case 2:
      return random_garbage(rng);
    default:  // mutation of a valid document dominates the mix
      return corrupt(base, rng);
  }
}

}  // namespace

std::string ProtoFuzzResult::to_text() const {
  std::string out = "proto-fuzz: seed=" + std::to_string(seed) +
                    " cases=" + std::to_string(cases_run) +
                    " accepted=" + std::to_string(accepted) +
                    " rejected=" + std::to_string(rejected) +
                    " violations=" + std::to_string(violations) +
                    (truncated ? " (truncated)" : "") + "\n";
  for (const ProtoCaseReport& r : reports) {
    out += "  VIOLATION " + r.target + "#" + std::to_string(r.index) + ": " +
           r.detail + "\n    input: " + r.input_preview + "\n";
  }
  return out;
}

std::string ProtoFuzzResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kProtoFuzzSchemaVersion);
  w.member("kind", "proto-fuzz");
  w.member("seed", seed);
  w.member("cases_run", cases_run);
  w.member("accepted", accepted);
  w.member("rejected", rejected);
  w.member("violations", violations);
  w.member("truncated", truncated);
  w.key("reports").begin_array();
  for (const ProtoCaseReport& r : reports) {
    w.begin_object();
    w.member("target", r.target);
    w.member("index", r.index);
    w.member("detail", r.detail);
    w.member("input_preview", r.input_preview);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

ProtoFuzzResult run_proto_fuzz(const ProtoFuzzOptions& options) {
  ProtoFuzzResult result;
  result.seed = resolve_seed(options.seed);
  const auto started = Clock::now();
  const auto expired = [&] {
    if (options.time_budget_ms <= 0) return false;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - started)
               .count() >= options.time_budget_ms;
  };

  // The valid codec document mutations start from: one real serialized
  // controller (a 2-state wire handshake — tiny but structurally
  // complete: version line, signal tables, cube lists).
  const std::string codec_base = serve::serialize_controller(
      minimalist::synthesize(bm::parse_bms("name w\n"
                                           "input r 0\n"
                                           "output a 0\n"
                                           "0 1 r+ | a+\n"
                                           "1 0 r- | a-\n")));

  const auto violation = [&](const char* target, int index,
                             std::string detail, const std::string& input) {
    ++result.violations;
    ProtoCaseReport r;
    r.target = target;
    r.index = index;
    r.detail = std::move(detail);
    r.input_preview = preview(input);
    result.reports.push_back(std::move(r));
  };

  // ---- target: util::parse_json ----
  {
    util::SplitMix64 rng(result.seed ^ 0x6a736f6eull);  // "json"
    std::string base = base_request(rng);
    for (int i = 0; i < options.count && !expired(); ++i) {
      const std::string input = next_input(base, rng);
      ++result.cases_run;
      try {
        std::string error;
        const auto doc = util::parse_json(input, &error);
        if (doc) {
          ++result.accepted;
        } else if (error.empty()) {
          violation("json", i, "rejected without a structured error", input);
        } else {
          ++result.rejected;
        }
      } catch (const std::exception& e) {
        violation("json", i, std::string("threw: ") + e.what(), input);
      }
    }
  }

  // ---- target: serve::parse_request ----
  {
    util::SplitMix64 rng(result.seed ^ 0x72657175ull);  // "requ"
    for (int i = 0; i < options.count && !expired(); ++i) {
      const std::string base = base_request(rng);
      const std::string input = next_input(base, rng);
      ++result.cases_run;
      try {
        serve::Request req;
        std::string error;
        if (serve::parse_request(input, &req, &error)) {
          ++result.accepted;
          if (req.op.empty()) {
            violation("request", i, "accepted a request with no op", input);
          }
        } else if (error.empty()) {
          violation("request", i, "rejected without a structured error",
                    input);
        } else {
          ++result.rejected;
        }
      } catch (const std::exception& e) {
        violation("request", i, std::string("threw: ") + e.what(), input);
      }
    }
  }

  // ---- target: serve::deserialize_controller ----
  {
    util::SplitMix64 rng(result.seed ^ 0x636f6465ull);  // "code"
    for (int i = 0; i < options.count && !expired(); ++i) {
      const std::string input = next_input(codec_base, rng);
      ++result.cases_run;
      try {
        std::string error;
        const auto ctrl = serve::deserialize_controller(input, &error);
        if (ctrl) {
          ++result.accepted;
          // Round-trip law: anything accepted must reserialize to a
          // document the codec accepts again (the disk cache checksums
          // rendered bytes, so accept-but-unrenderable would poison it).
          const std::string again = serve::serialize_controller(*ctrl);
          std::string err2;
          if (!serve::deserialize_controller(again, &err2)) {
            violation("codec", i,
                      "accepted input whose reserialization fails: " + err2,
                      input);
          }
        } else if (error.empty()) {
          violation("codec", i, "rejected without a structured error", input);
        } else {
          ++result.rejected;
        }
      } catch (const std::exception& e) {
        violation("codec", i, std::string("threw: ") + e.what(), input);
      }
    }
  }

  result.truncated = expired();
  return result;
}

}  // namespace bb::fuzz
