// Greedy delta-debugging minimizers for fuzz counterexamples.
//
// Given a failing design and a predicate "does this candidate still
// fail the same way", the shrinkers repeatedly apply structure-reducing
// mutations (drop a composition child, hoist a loop/branch body,
// replace a command with `continue`, collapse an expression to a
// literal, drop unused declarations) and keep every mutation the
// predicate confirms.  The result is a local minimum: no single
// remaining reduction preserves the failure.  Predicate calls are the
// expensive part (each one typically runs the full differential
// oracle), so both shrinkers take a hard call budget.
#pragma once

#include <functional>

#include "src/balsa/ast.hpp"
#include "src/fuzz/gen.hpp"

namespace bb::fuzz {

/// Returns true when the candidate still exhibits the original failure.
using ProcedurePredicate = std::function<bool(const balsa::Procedure&)>;

/// Minimizes a failing procedure.  The returned procedure satisfies the
/// predicate and is printer-round-trip clean (no single-child
/// compositions).  `max_tests` bounds predicate invocations.
balsa::Procedure shrink_procedure(const balsa::Procedure& seed,
                                  const ProcedurePredicate& still_fails,
                                  int max_tests = 400);

using RecipePredicate = std::function<bool(const RecipeNode&)>;

/// Minimizes a failing netlist recipe the same way.
RecipeNode shrink_recipe(const RecipeNode& seed,
                         const RecipePredicate& still_fails,
                         int max_tests = 200);

}  // namespace bb::fuzz
