// The two soundness oracles of the differential fuzzer.
//
// Simulation agreement: one design is pushed through the full flow
// twice — clustering on (FlowOptions::optimized) and off
// (FlowOptions::unoptimized) — and both gate-level circuits run against
// the same deterministic testbench (seeded per-channel value streams).
// The observable behaviour must agree: completion, the value sequence
// on every output channel, and the handshake counts on every sync and
// input channel.  Because generated designs are race-free by
// construction, every per-channel sequence is determined by program
// order alone, so any disagreement is a soundness bug in the
// optimization or synthesis pipeline (or a flow crash on one side
// only).
//
// Conformance: every clustered controller the optimizer produces is
// checked against the composition of the original member programs with
// the internalized channels hidden (trace::verify_composition, the
// Section 4.3 check), and against the trace language of its own
// compiled Burst-Mode machine (trace::bm_spec_lts).  Counterexamples
// are minimal by construction (BFS product walk).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/flow/flow.hpp"
#include "src/hsnet/netlist.hpp"

namespace bb::fuzz {

/// What one flow + simulation run of a design observed.
struct SimObservation {
  bool flow_error = false;      ///< the flow threw before simulation
  std::string flow_error_text;  ///< what() of the failure
  bool completed = false;       ///< activation handshake finished, quiescent
  std::string status;           ///< sim::run_status_name of the run
  /// Values pushed on every external output channel, in arrival order.
  std::map<std::string, std::vector<std::uint64_t>> outputs;
  /// Completed handshakes per external sync channel.
  std::map<std::string, int> sync_counts;
  /// Values served per external input channel.
  std::map<std::string, int> pull_counts;

  std::string describe() const;
};

struct SimLimits {
  double max_ns = 200000.0;
  std::uint64_t max_events = 4'000'000;
};

/// Flow + simulate one design variant.  `value_seed` drives the
/// per-channel input value streams (FNV-mixed with the channel name, so
/// every channel has its own deterministic stream).
SimObservation observe(const hsnet::Netlist& netlist,
                       const flow::FlowOptions& options,
                       std::uint64_t value_seed, const SimLimits& limits = {});

/// "" when the observations agree; otherwise a one-line description of
/// the first difference.
std::string compare_observations(const SimObservation& optimized,
                                 const SimObservation& baseline);

enum class Verdict {
  kPass,          ///< oracle satisfied
  kDiscrepancy,   ///< soundness violation: optimized != reference
  kRejected,      ///< both variants rejected the design identically
  kSkipped,       ///< oracle could not decide (state explosion etc.)
};

std::string_view verdict_name(Verdict verdict);

struct OracleResult {
  Verdict verdict = Verdict::kPass;
  std::string oracle;      ///< "sim" or "conformance"
  std::string detail;      ///< human-readable description
  std::string controller;  ///< conformance: offending clustered controller
  std::vector<std::string> counterexample;  ///< minimal trace, if any
};

/// Runs the differential-simulation oracle on one design.
OracleResult differential_check(const hsnet::Netlist& netlist,
                                std::uint64_t value_seed,
                                const SimLimits& limits = {});

/// Runs the conformance oracle: re-derives the clustering for the
/// design's control partition and checks every multi-member controller
/// against its composed members, plus every controller against its BM
/// machine's trace language.  `state_limit` bounds each reachability
/// exploration; blowing it yields kSkipped, never a silent pass.
OracleResult conformance_check(const hsnet::Netlist& netlist,
                               int max_states = 40,
                               std::size_t state_limit = 1u << 14);

}  // namespace bb::fuzz
