#include "src/fuzz/campaign.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "src/balsa/compile.hpp"
#include "src/balsa/printer.hpp"
#include "src/fuzz/shrink.hpp"
#include "src/util/io.hpp"
#include "src/util/json.hpp"
#include "src/util/prng.hpp"
#include "src/util/strings.hpp"

namespace bb::fuzz {

namespace {

/// FNV-1a over a case tag, so every case has an independent stream.
std::uint64_t mix_case(std::uint64_t seed, const std::string& tag) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return seed ^ h;
}

std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

/// Coarse failure signature the shrinker must preserve: the oracle
/// plus the *kind* of failure, with case-specific payloads (observed
/// values, controller names whose component ids shift as the design
/// shrinks) stripped.  Matching on the oracle alone would let a
/// "output values differ" case drift into an unrelated hang.
std::string failure_class(const OracleResult& outcome) {
  if (outcome.oracle == "conformance") {
    return outcome.detail.find("never allows") != std::string::npos
               ? "conformance/bm-containment"
               : "conformance/composition";
  }
  return outcome.oracle + "/" + outcome.detail.substr(0, outcome.detail.find(':'));
}

void read_vars(const balsa::Expr& e, std::set<std::string>& out) {
  if (e.kind == balsa::Expr::Kind::kVar) out.insert(e.var);
  if (e.lhs) read_vars(*e.lhs, out);
  if (e.rhs) read_vars(*e.rhs, out);
}

bool writes_any(const balsa::Command& c, const std::set<std::string>& vars) {
  if ((c.kind == balsa::Command::Kind::kAssign ||
       c.kind == balsa::Command::Kind::kReceive) &&
      vars.count(c.var)) {
    return true;
  }
  for (const balsa::CommandPtr& child : c.children) {
    if (writes_any(*child, vars)) return true;
  }
  if (c.body && writes_any(*c.body, vars)) return true;
  if (c.else_body && writes_any(*c.else_body, vars)) return true;
  for (const balsa::CaseAlt& alt : c.alts) {
    if (writes_any(*alt.body, vars)) return true;
  }
  return false;
}

/// Static termination discipline every generated program satisfies:
/// each while guard reads at least one variable its body writes.  The
/// shrinker must not step outside it — a candidate that loops forever
/// "fails" any timeout-shaped predicate for reasons unrelated to the
/// bug being minimized.
bool plausibly_terminating(const balsa::Command& c) {
  if (c.kind == balsa::Command::Kind::kLoop) return false;
  if (c.kind == balsa::Command::Kind::kWhile) {
    if (!c.guard || !c.body) return false;
    std::set<std::string> vars;
    read_vars(*c.guard, vars);
    if (vars.empty() || !writes_any(*c.body, vars)) return false;
  }
  for (const balsa::CommandPtr& child : c.children) {
    if (!plausibly_terminating(*child)) return false;
  }
  if (c.body && !plausibly_terminating(*c.body)) return false;
  if (c.else_body && !plausibly_terminating(*c.else_body)) return false;
  for (const balsa::CaseAlt& alt : c.alts) {
    if (!plausibly_terminating(*alt.body)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t effective_seed(const FuzzOptions& options) {
  if (options.seed != 0) return options.seed;
  if (const char* env = std::getenv("BB_SEED")) {
    if (const auto n = util::parse_ll(env); n.has_value() && *n > 0) {
      return static_cast<std::uint64_t>(*n);
    }
  }
  return 1;
}

OracleResult check_design(const hsnet::Netlist& netlist,
                          const FuzzOptions& options,
                          std::uint64_t value_seed) {
  OracleResult worst;
  worst.verdict = Verdict::kPass;
  const auto merge = [&worst](OracleResult next) {
    const auto rank = [](Verdict v) {
      switch (v) {
        case Verdict::kDiscrepancy: return 3;
        case Verdict::kSkipped: return 2;
        case Verdict::kRejected: return 1;
        case Verdict::kPass: return 0;
      }
      return 0;
    };
    if (rank(next.verdict) > rank(worst.verdict)) worst = std::move(next);
  };
  if (options.sim_oracle) {
    merge(differential_check(netlist, value_seed, options.sim_limits));
    if (worst.verdict == Verdict::kDiscrepancy) return worst;
    // A design both flows reject has no circuits to check conformance
    // on either; classify it once and stop.
    if (worst.verdict == Verdict::kRejected) return worst;
  }
  if (options.conformance_oracle) {
    merge(conformance_check(netlist, options.max_states, options.state_limit));
  }
  return worst;
}

namespace {

class CampaignRunner {
 public:
  explicit CampaignRunner(const FuzzOptions& options)
      : options_(options),
        seed_(effective_seed(options)),
        deadline_set_(options.time_budget_ms > 0),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options.time_budget_ms)) {}

  FuzzResult run() {
    FuzzResult result;
    result.seed = seed_;
    if (options_.balsa_mode) run_mode(result, "balsa");
    if (options_.netlist_mode && !result.truncated) {
      run_mode(result, "netlist");
    }
    return result;
  }

 private:
  bool out_of_time() const {
    return deadline_set_ && std::chrono::steady_clock::now() >= deadline_;
  }

  void run_mode(FuzzResult& result, const std::string& mode) {
    for (int i = 0; i < options_.count; ++i) {
      if (out_of_time()) {
        result.truncated = true;
        return;
      }
      const std::uint64_t case_seed =
          mix_case(seed_, mode + ":" + std::to_string(i));
      if (mode == "balsa") {
        run_balsa_case(result, i, case_seed);
      } else {
        run_netlist_case(result, i, case_seed);
      }
      ++result.cases_run;
    }
  }

  void tally(FuzzResult& result, const OracleResult& outcome) {
    switch (outcome.verdict) {
      case Verdict::kPass: ++result.passed; break;
      case Verdict::kRejected: ++result.rejected; break;
      case Verdict::kSkipped: ++result.skipped; break;
      case Verdict::kDiscrepancy: ++result.discrepancies; break;
    }
  }

  void record(FuzzResult& result, const std::string& mode, int index,
              const OracleResult& outcome, std::string design,
              const std::string& extension) {
    tally(result, outcome);
    if (outcome.verdict != Verdict::kDiscrepancy &&
        outcome.verdict != Verdict::kSkipped) {
      return;
    }
    CaseReport report;
    report.mode = mode;
    report.index = index;
    report.oracle = outcome.oracle;
    report.verdict = std::string(verdict_name(outcome.verdict));
    report.detail = one_line(outcome.detail);
    report.controller = outcome.controller;
    report.counterexample = outcome.counterexample;
    report.design = std::move(design);
    if (outcome.verdict == Verdict::kDiscrepancy &&
        !options_.repro_dir.empty()) {
      Reproducer repro;
      repro.mode = mode;
      repro.oracle = outcome.oracle;
      repro.expect = "known-bad";
      repro.note = report.detail;
      repro.design = report.design;
      const std::string name = "s" + std::to_string(seed_) + "-" + mode +
                               std::to_string(index) + extension;
      std::filesystem::create_directories(options_.repro_dir);
      const std::string path = options_.repro_dir + "/" + name;
      util::write_file_atomic(
          path, format_reproducer(repro, seed_, index, report.detail));
      report.repro_path = path;
    }
    result.reports.push_back(std::move(report));
  }

  void run_balsa_case(FuzzResult& result, int index, std::uint64_t case_seed) {
    GenOptions gen_options;
    gen_options.max_commands = options_.size;
    util::SplitMix64 rng(case_seed);
    const balsa::Procedure proc = generate_procedure(rng, gen_options);

    const auto check = [&](const balsa::Procedure& p) -> OracleResult {
      try {
        return check_design(balsa::compile(p), options_, case_seed);
      } catch (const std::exception& e) {
        // The generator promises compilable programs; a compile crash
        // is itself a finding.
        OracleResult r;
        r.verdict = Verdict::kDiscrepancy;
        r.oracle = "compile";
        r.detail = std::string("compiler rejected a legal program: ") +
                   e.what();
        return r;
      }
    };
    OracleResult outcome = check(proc);
    std::string design = balsa::to_source(proc);
    if (outcome.verdict == Verdict::kDiscrepancy) {
      const std::string wanted = failure_class(outcome);
      const balsa::Procedure minimized = shrink_procedure(
          proc,
          [&](const balsa::Procedure& candidate) {
            if (!plausibly_terminating(*candidate.body)) return false;
            const OracleResult r = check(candidate);
            return r.verdict == Verdict::kDiscrepancy &&
                   failure_class(r) == wanted;
          },
          options_.shrink_tests);
      outcome = check(minimized);
      design = balsa::to_source(minimized);
    }
    record(result, "balsa", index, outcome, std::move(design), ".balsa");
  }

  void run_netlist_case(FuzzResult& result, int index,
                        std::uint64_t case_seed) {
    GenOptions gen_options;
    gen_options.max_commands = options_.size;
    util::SplitMix64 rng(case_seed);
    const RecipeNode recipe = generate_recipe(rng, gen_options);

    const auto check = [&](const RecipeNode& node) {
      return check_design(build_recipe(node), options_, case_seed);
    };
    OracleResult outcome = check(recipe);
    std::string design = recipe_to_text(recipe);
    if (outcome.verdict == Verdict::kDiscrepancy) {
      const std::string wanted = failure_class(outcome);
      const RecipeNode minimized = shrink_recipe(
          recipe,
          [&](const RecipeNode& candidate) {
            const OracleResult r = check(candidate);
            return r.verdict == Verdict::kDiscrepancy &&
                   failure_class(r) == wanted;
          },
          options_.shrink_tests);
      outcome = check(minimized);
      design = recipe_to_text(minimized);
    }
    record(result, "netlist", index, outcome, std::move(design), ".recipe");
  }

  const FuzzOptions& options_;
  std::uint64_t seed_;
  bool deadline_set_;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

FuzzResult run_fuzz_campaign(const FuzzOptions& options) {
  return CampaignRunner(options).run();
}

std::string FuzzResult::to_text() const {
  std::string out = "fuzz campaign: seed " + std::to_string(seed) + ", " +
                    std::to_string(cases_run) + " case(s)";
  if (truncated) out += " (truncated by time budget)";
  out += "\n  passed " + std::to_string(passed) + ", rejected " +
         std::to_string(rejected) + ", skipped " + std::to_string(skipped) +
         ", discrepancies " + std::to_string(discrepancies) + "\n";
  for (const CaseReport& report : reports) {
    out += "  [" + report.verdict + "] " + report.mode + " case " +
           std::to_string(report.index) + " (" + report.oracle +
           "): " + report.detail + "\n";
    if (!report.design.empty() && report.verdict == "discrepancy") {
      out += "    minimized: " + one_line(report.design) + "\n";
    }
    if (!report.repro_path.empty()) {
      out += "    reproducer: " + report.repro_path + "\n";
    }
  }
  return out;
}

std::string FuzzResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kFuzzCampaignSchemaVersion);
  w.member("seed", seed);
  w.member("cases_run", cases_run);
  w.member("passed", passed);
  w.member("rejected", rejected);
  w.member("skipped", skipped);
  w.member("discrepancies", discrepancies);
  w.member("truncated", truncated);
  w.key("reports");
  w.begin_array();
  for (const CaseReport& report : reports) {
    w.begin_object();
    w.member("mode", report.mode);
    w.member("index", report.index);
    w.member("oracle", report.oracle);
    w.member("verdict", report.verdict);
    w.member("detail", report.detail);
    if (!report.controller.empty()) {
      w.member("controller", report.controller);
    }
    w.member("design", report.design);
    if (!report.repro_path.empty()) {
      w.member("reproducer", report.repro_path);
    }
    if (!report.counterexample.empty()) {
      w.key("counterexample");
      w.begin_array();
      for (const std::string& label : report.counterexample) w.value(label);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string format_reproducer(const Reproducer& repro, std::uint64_t seed,
                              int index, const std::string& detail) {
  std::string out = "-- bb-fuzz reproducer (minimized)\n";
  out += "-- seed: " + std::to_string(seed) +
         " case: " + std::to_string(index) + "\n";
  out += "-- mode: " + repro.mode + "\n";
  out += "-- oracle: " + repro.oracle + "\n";
  if (repro.expect == "clean") {
    out += "-- expect: clean\n";
  } else {
    out += "-- expect: known-bad: " + one_line(repro.note.empty() ? detail
                                                                  : repro.note) +
           "\n";
  }
  out += repro.design;
  if (out.empty() || out.back() != '\n') out += "\n";
  return out;
}

Reproducer parse_reproducer(const std::string& path,
                            const std::string& content) {
  Reproducer repro;
  repro.path = path;
  std::size_t pos = 0;
  std::size_t body_start = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string_view line(content.data() + pos,
                                (eol == std::string::npos ? content.size()
                                                          : eol) -
                                    pos);
    const std::string_view trimmed = util::trim(line);
    if (!util::starts_with(trimmed, "--")) break;
    const std::string_view header = util::trim(trimmed.substr(2));
    const auto take = [&](std::string_view key) -> std::string {
      if (!util::starts_with(header, key)) return "";
      return std::string(util::trim(header.substr(key.size())));
    };
    if (std::string v = take("mode:"); !v.empty()) repro.mode = v;
    if (std::string v = take("oracle:"); !v.empty()) repro.oracle = v;
    if (std::string v = take("expect:"); !v.empty()) {
      if (util::starts_with(v, "known-bad")) {
        repro.expect = "known-bad";
        const std::size_t colon = v.find(':');
        if (colon != std::string::npos) {
          repro.note = std::string(util::trim(
              std::string_view(v).substr(colon + 1)));
        }
      } else {
        repro.expect = v;
      }
    }
    if (eol == std::string::npos) {
      pos = content.size();
    } else {
      pos = eol + 1;
    }
    body_start = pos;
  }
  repro.design = content.substr(body_start);
  if (repro.mode.empty()) {
    throw std::runtime_error(path + ": missing '-- mode:' header");
  }
  if (repro.expect.empty()) {
    throw std::runtime_error(path + ": missing '-- expect:' header");
  }
  if (util::trim(repro.design).empty()) {
    throw std::runtime_error(path + ": empty design body");
  }
  return repro;
}

}  // namespace bb::fuzz
