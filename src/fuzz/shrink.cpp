#include "src/fuzz/shrink.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace bb::fuzz {

namespace {

using balsa::Command;
using balsa::CommandPtr;
using balsa::Expr;
using balsa::ExprPtr;

CommandPtr make_continue() {
  auto c = std::make_unique<Command>();
  c->kind = Command::Kind::kContinue;
  return c;
}

ExprPtr make_literal(std::uint64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = value;
  return e;
}

/// Every owning CommandPtr slot in the tree, parents before children,
/// so structural replacements try the biggest cuts first.
void collect_command_slots(CommandPtr& slot, std::vector<CommandPtr*>& out) {
  out.push_back(&slot);
  Command& c = *slot;
  for (CommandPtr& child : c.children) collect_command_slots(child, out);
  if (c.body) collect_command_slots(c.body, out);
  if (c.else_body) collect_command_slots(c.else_body, out);
  for (balsa::CaseAlt& alt : c.alts) collect_command_slots(alt.body, out);
}

void collect_expr_slots(ExprPtr& slot, std::vector<ExprPtr*>& out) {
  out.push_back(&slot);
  if (slot->lhs) collect_expr_slots(slot->lhs, out);
  if (slot->rhs) collect_expr_slots(slot->rhs, out);
}

void guard_vars(const Expr& e, std::set<std::string>& out) {
  if (e.kind == Expr::Kind::kVar) out.insert(e.var);
  if (e.lhs) guard_vars(*e.lhs, out);
  if (e.rhs) guard_vars(*e.rhs, out);
}

/// Collects expression slots that are safe to mutate.  While guards
/// and updates of variables an enclosing while guard reads are left
/// alone: collapsing either to a constant can turn a bounded loop into
/// an infinite one, and a shrink step must never manufacture a
/// non-termination the original design did not have.
void collect_command_exprs(Command& c, const std::set<std::string>& counters,
                           std::vector<ExprPtr*>& out) {
  if (c.guard && c.kind != Command::Kind::kWhile) {
    collect_expr_slots(c.guard, out);
  }
  if (c.value &&
      !(c.kind == Command::Kind::kAssign && counters.count(c.var))) {
    collect_expr_slots(c.value, out);
  }
  std::set<std::string> inner = counters;
  if (c.kind == Command::Kind::kWhile && c.guard) guard_vars(*c.guard, inner);
  for (CommandPtr& child : c.children) {
    collect_command_exprs(*child, inner, out);
  }
  if (c.body) collect_command_exprs(*c.body, inner, out);
  if (c.else_body) collect_command_exprs(*c.else_body, inner, out);
  for (balsa::CaseAlt& alt : c.alts) {
    collect_command_exprs(*alt.body, inner, out);
  }
}

/// Folds single-child compositions so the result stays printer
/// round-trip clean.
void normalize(CommandPtr& slot) {
  Command& c = *slot;
  for (CommandPtr& child : c.children) normalize(child);
  if (c.body) normalize(c.body);
  if (c.else_body) normalize(c.else_body);
  for (balsa::CaseAlt& alt : c.alts) normalize(alt.body);
  if ((c.kind == Command::Kind::kSeq || c.kind == Command::Kind::kPar) &&
      c.children.size() == 1) {
    slot = std::move(c.children.front());
  }
}

void used_names(const Command& c, std::set<std::string>& channels,
                std::set<std::string>& vars) {
  if (!c.channel.empty()) channels.insert(c.channel);
  if (!c.var.empty()) vars.insert(c.var);
  const auto scan_expr = [&vars](const Expr& e, const auto& self) -> void {
    if (e.kind == Expr::Kind::kVar) vars.insert(e.var);
    if (e.lhs) self(*e.lhs, self);
    if (e.rhs) self(*e.rhs, self);
  };
  if (c.guard) scan_expr(*c.guard, scan_expr);
  if (c.value) scan_expr(*c.value, scan_expr);
  for (const CommandPtr& child : c.children) used_names(*child, channels, vars);
  if (c.body) used_names(*c.body, channels, vars);
  if (c.else_body) used_names(*c.else_body, channels, vars);
  for (const balsa::CaseAlt& alt : c.alts) used_names(*alt.body, channels, vars);
}

class ProcedureShrinker {
 public:
  ProcedureShrinker(const ProcedurePredicate& predicate, int max_tests)
      : predicate_(predicate), budget_(max_tests) {}

  balsa::Procedure run(const balsa::Procedure& seed) {
    balsa::Procedure best = balsa::clone(seed);
    bool progress = true;
    while (progress && budget_ > 0) {
      progress =
          shrink_commands(best) || shrink_exprs(best) || shrink_decls(best);
    }
    normalize(best.body);
    return best;
  }

 private:
  bool test(const balsa::Procedure& candidate) {
    if (budget_ <= 0) return false;
    --budget_;
    return predicate_(candidate);
  }

  /// Every reduction of one command node, as a fresh replacement
  /// subtree.  Candidates are round-trip clean by construction: a
  /// composition that would drop to a single child is folded into it.
  static std::vector<CommandPtr> candidates_for(const Command& node) {
    std::vector<CommandPtr> out;
    if (node.kind != Command::Kind::kContinue) out.push_back(make_continue());
    // Hoist any descendant body over the node.
    for (const CommandPtr& child : node.children) {
      out.push_back(balsa::clone(*child));
    }
    if (node.body) out.push_back(balsa::clone(*node.body));
    if (node.else_body) out.push_back(balsa::clone(*node.else_body));
    for (const balsa::CaseAlt& alt : node.alts) {
      out.push_back(balsa::clone(*alt.body));
    }
    // Drop one composition child.
    if ((node.kind == Command::Kind::kSeq ||
         node.kind == Command::Kind::kPar) &&
        node.children.size() > 2) {
      for (std::size_t skip = 0; skip < node.children.size(); ++skip) {
        CommandPtr reduced = balsa::clone(node);
        reduced->children.erase(reduced->children.begin() +
                                static_cast<std::ptrdiff_t>(skip));
        out.push_back(std::move(reduced));
      }
    }
    // Drop the else branch.
    if (node.else_body) {
      CommandPtr reduced = balsa::clone(node);
      reduced->else_body.reset();
      out.push_back(std::move(reduced));
    }
    // Drop one case alternative.
    if (node.kind == Command::Kind::kCase && node.alts.size() >= 2) {
      for (std::size_t skip = 0; skip < node.alts.size(); ++skip) {
        CommandPtr reduced = balsa::clone(node);
        reduced->alts.erase(reduced->alts.begin() +
                            static_cast<std::ptrdiff_t>(skip));
        out.push_back(std::move(reduced));
      }
    }
    return out;
  }

  bool shrink_commands(balsa::Procedure& best) {
    std::vector<CommandPtr*> slots;
    collect_command_slots(best.body, slots);
    for (CommandPtr* slot : slots) {
      std::vector<CommandPtr> candidates = candidates_for(**slot);
      for (CommandPtr& candidate : candidates) {
        if (budget_ <= 0) return false;
        CommandPtr saved = std::move(*slot);
        *slot = std::move(candidate);
        if (test(best)) return true;  // slots are stale; restart
        *slot = std::move(saved);
      }
    }
    return false;
  }

  bool shrink_exprs(balsa::Procedure& best) {
    std::vector<ExprPtr*> slots;
    collect_command_exprs(*best.body, {}, slots);
    for (ExprPtr* slot : slots) {
      if ((*slot)->kind == Expr::Kind::kLiteral) continue;
      for (const std::uint64_t value : {0ull, 1ull}) {
        if (budget_ <= 0) return false;
        ExprPtr saved = std::move(*slot);
        *slot = make_literal(value);
        if (test(best)) return true;
        *slot = std::move(saved);
      }
    }
    return false;
  }

  bool shrink_decls(balsa::Procedure& best) {
    std::set<std::string> channels, vars;
    used_names(*best.body, channels, vars);
    for (std::size_t i = 0; i < best.ports.size(); ++i) {
      if (channels.count(best.ports[i].name)) continue;
      if (budget_ <= 0) return false;
      balsa::Port saved = best.ports[i];
      best.ports.erase(best.ports.begin() + static_cast<std::ptrdiff_t>(i));
      if (test(best)) return true;
      best.ports.insert(best.ports.begin() + static_cast<std::ptrdiff_t>(i),
                        saved);
    }
    for (std::size_t i = 0; i < best.variables.size(); ++i) {
      if (vars.count(best.variables[i].name)) continue;
      if (budget_ <= 0) return false;
      balsa::VariableDecl saved = best.variables[i];
      best.variables.erase(best.variables.begin() +
                           static_cast<std::ptrdiff_t>(i));
      if (test(best)) return true;
      best.variables.insert(
          best.variables.begin() + static_cast<std::ptrdiff_t>(i), saved);
    }
    return false;
  }

  const ProcedurePredicate& predicate_;
  int budget_;
};

// ---- recipes ----

void collect_recipe_slots(RecipeNode& node, std::vector<RecipeNode*>& out) {
  out.push_back(&node);
  for (RecipeNode& child : node.children) collect_recipe_slots(child, out);
}

class RecipeShrinker {
 public:
  RecipeShrinker(const RecipePredicate& predicate, int max_tests)
      : predicate_(predicate), budget_(max_tests) {}

  RecipeNode run(const RecipeNode& seed) {
    RecipeNode best = seed;
    bool progress = true;
    while (progress && budget_ > 0) {
      progress = step(best);
    }
    return best;
  }

 private:
  bool test(const RecipeNode& candidate) {
    if (budget_ <= 0) return false;
    --budget_;
    return predicate_(candidate);
  }

  bool step(RecipeNode& best) {
    std::vector<RecipeNode*> slots;
    collect_recipe_slots(best, slots);
    for (RecipeNode* slot : slots) {
      // Replace the subtree with skip or with one of its children.
      std::vector<RecipeNode> candidates;
      if (slot->kind != RecipeNode::Kind::kSkip) {
        RecipeNode skip;
        skip.kind = RecipeNode::Kind::kSkip;
        candidates.push_back(std::move(skip));
      }
      for (const RecipeNode& child : slot->children) {
        candidates.push_back(child);
      }
      for (RecipeNode& candidate : candidates) {
        if (budget_ <= 0) return false;
        RecipeNode saved = std::move(*slot);
        *slot = std::move(candidate);
        if (test(best)) return true;  // slots stale; restart
        *slot = std::move(saved);
      }
      // Drop one child, folding single-child compositions.
      if (slot->children.size() >= 2) {
        for (std::size_t i = 0; i < slot->children.size(); ++i) {
          if (budget_ <= 0) return false;
          RecipeNode saved = std::move(slot->children[i]);
          slot->children.erase(slot->children.begin() +
                               static_cast<std::ptrdiff_t>(i));
          if (test(best)) return true;
          slot->children.insert(slot->children.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                std::move(saved));
        }
      }
    }
    return false;
  }

  const RecipePredicate& predicate_;
  int budget_;
};

}  // namespace

balsa::Procedure shrink_procedure(const balsa::Procedure& seed,
                                  const ProcedurePredicate& still_fails,
                                  int max_tests) {
  return ProcedureShrinker(still_fails, max_tests).run(seed);
}

RecipeNode shrink_recipe(const RecipeNode& seed,
                         const RecipePredicate& still_fails, int max_tests) {
  return RecipeShrinker(still_fails, max_tests).run(seed);
}

}  // namespace bb::fuzz
