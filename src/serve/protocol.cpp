#include "src/serve/protocol.hpp"

#include <limits>

#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"

namespace bb::serve {

namespace {

/// Starts a reply object with the members every status shares.
void reply_head(util::JsonWriter& w, const ReplyIds& ids,
                const char* status) {
  w.begin_object();
  w.member("schema_version", kProtocolVersion);
  if (!ids.id.empty()) w.member("id", ids.id);
  if (!ids.trace_id.empty()) w.member("trace_id", ids.trace_id);
  w.member("status", status);
}

void reply_timings(util::JsonWriter& w, const ReplyTimings& timings) {
  w.key("timings_ms").begin_object();
  w.member("queue", timings.queue_ms);
  w.member("run", timings.run_ms);
  w.member("total", timings.queue_ms + timings.run_ms);
  w.end_object();
}

std::optional<int> int_member(const util::JsonValue& obj,
                              std::string_view key, std::string* error) {
  const util::JsonValue* v = obj.get(key);
  if (v == nullptr) return std::nullopt;
  if (!v->is_number() || !v->is_integer ||
      v->integer < std::numeric_limits<int>::min() ||
      v->integer > std::numeric_limits<int>::max()) {
    *error = "member '" + std::string(key) + "' must be an integer";
    return std::nullopt;
  }
  return static_cast<int>(v->integer);
}

std::optional<bool> bool_member(const util::JsonValue& obj,
                                std::string_view key, std::string* error) {
  const util::JsonValue* v = obj.get(key);
  if (v == nullptr) return std::nullopt;
  if (!v->is_bool()) {
    *error = "member '" + std::string(key) + "' must be a boolean";
    return std::nullopt;
  }
  return v->bool_value;
}

}  // namespace

bool parse_request(const std::string& line, Request* request,
                   std::string* error) {
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc) {
    *error = "invalid JSON: " + parse_error;
    return false;
  }
  if (!doc->is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  const std::int64_t version = doc->get_int("schema_version", -1);
  if (version != kProtocolVersion) {
    *error = "unsupported schema_version (expected " +
             std::to_string(kProtocolVersion) + ")";
    return false;
  }

  Request req;
  req.id = doc->get_string("id");
  req.op = doc->get_string("op");
  if (req.op != "ping" && req.op != "stats" && req.op != "metrics" &&
      req.op != "trace" && req.op != "shutdown" && req.op != "synthesize" &&
      req.op != "synthesize_bm" && req.op != "analyze" &&
      req.op != "synthesize_incremental") {
    *error = "unknown op '" + req.op + "'";
    return false;
  }
  req.trace_id = doc->get_string("trace_id");
  req.design = doc->get_string("design");
  req.source = doc->get_string("source");
  req.bms = doc->get_string("bms");
  req.mode = doc->get_string("mode", "speed");
  if (req.mode != "speed" && req.mode != "area") {
    *error = "mode must be \"speed\" or \"area\"";
    return false;
  }
  req.format = doc->get_string("format", "json");
  if (req.format != "json" && req.format != "prometheus" &&
      req.format != "both") {
    *error = "format must be \"json\", \"prometheus\" or \"both\"";
    return false;
  }
  req.filter = doc->get_string("filter");
  {
    std::string member_error;
    if (const std::optional<int> last = int_member(*doc, "last",
                                                  &member_error)) {
      if (*last < 0) {
        *error = "member 'last' must be non-negative";
        return false;
      }
      req.last = *last;
    }
    if (!member_error.empty()) {
      *error = member_error;
      return false;
    }
  }
  if ((req.op == "synthesize" || req.op == "analyze") &&
      req.design.empty() == req.source.empty()) {
    *error = req.op + " needs exactly one of 'design' or 'source'";
    return false;
  }
  if (req.op == "synthesize_bm" && req.bms.empty()) {
    *error = "synthesize_bm needs 'bms'";
    return false;
  }
  if (req.op == "synthesize_incremental") {
    if (req.source.empty()) {
      *error = "synthesize_incremental needs 'source'";
      return false;
    }
    req.project = doc->get_string("project", "default");
    for (const char c : req.project) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
      if (!ok) {
        *error = "'project' must match [A-Za-z0-9_-]+";
        return false;
      }
    }
    if (req.project.empty() || req.project.size() > 64) {
      *error = "'project' must be 1..64 characters";
      return false;
    }
  }

  if (const util::JsonValue* opts = doc->get("options")) {
    if (!opts->is_object()) {
      *error = "'options' must be an object";
      return false;
    }
    std::string member_error;
    req.options.unoptimized = opts->get_bool("unoptimized", false);
    req.options.max_states = int_member(*opts, "max_states", &member_error);
    req.options.jobs = int_member(*opts, "jobs", &member_error);
    req.options.cache = bool_member(*opts, "cache", &member_error);
    req.options.strict = bool_member(*opts, "strict", &member_error);
    req.options.lint = bool_member(*opts, "lint", &member_error);
    if (const util::JsonValue* budget = opts->get("work_budget")) {
      if (!budget->is_number() || !budget->is_integer) {
        member_error = "member 'work_budget' must be an integer";
      } else {
        req.options.work_budget = budget->integer;
      }
    }
    req.options.verilog = opts->get_bool("verilog", false);
    req.options.sarif = opts->get_bool("sarif", false);
    req.options.no_analyze = opts->get_bool("no_analyze", false);
    if (!member_error.empty()) {
      *error = member_error;
      return false;
    }
  }
  *request = std::move(req);
  return true;
}

flow::FlowOptions apply_options(const RequestOptions& overrides,
                                long long default_work_budget) {
  flow::FlowOptions options = overrides.unoptimized
                                  ? flow::FlowOptions::unoptimized()
                                  : flow::FlowOptions::optimized();
  if (overrides.max_states) options.max_states = *overrides.max_states;
  if (overrides.jobs) options.jobs = *overrides.jobs;
  if (overrides.cache) options.cache = *overrides.cache;
  if (overrides.strict) options.strict = *overrides.strict;
  if (overrides.lint) options.lint = *overrides.lint;
  options.work_budget =
      overrides.work_budget ? *overrides.work_budget : default_work_budget;
  return options;
}

std::string reply_ok_ping(const ReplyIds& ids) {
  util::JsonWriter w;
  reply_head(w, ids, "ok");
  w.member("op", "ping");
  w.end_object();
  return w.str();
}

std::string reply_ok_stats(const ReplyIds& ids,
                           const std::string& raw_json) {
  util::JsonWriter w;
  reply_head(w, ids, "ok");
  w.member("op", "stats");
  w.key("stats").raw(raw_json);
  w.end_object();
  return w.str();
}

std::string reply_ok_metrics(const ReplyIds& ids,
                             const std::string* metrics_json,
                             const std::string* prometheus_text) {
  util::JsonWriter w;
  reply_head(w, ids, "ok");
  w.member("op", "metrics");
  if (metrics_json != nullptr) w.key("metrics").raw(*metrics_json);
  if (prometheus_text != nullptr) w.member("prometheus", *prometheus_text);
  w.end_object();
  return w.str();
}

std::string reply_ok_trace(const ReplyIds& ids,
                           const std::string& trace_json) {
  util::JsonWriter w;
  reply_head(w, ids, "ok");
  w.member("op", "trace");
  w.key("trace").raw(trace_json);
  w.end_object();
  return w.str();
}

std::string reply_ok_shutdown(const ReplyIds& ids) {
  util::JsonWriter w;
  reply_head(w, ids, "ok");
  w.member("op", "shutdown");
  w.member("draining", true);
  w.end_object();
  return w.str();
}

std::string reply_ok_result(const ReplyIds& ids,
                            const std::string& result_json,
                            const ReplyTimings& timings) {
  util::JsonWriter w;
  reply_head(w, ids, "ok");
  w.key("result").raw(result_json);
  reply_timings(w, timings);
  w.end_object();
  return w.str();
}

std::string reply_error(const ReplyIds& ids, const std::string& stage,
                        const std::string& rule, const std::string& message,
                        const ReplyTimings* timings) {
  util::JsonWriter w;
  reply_head(w, ids, "error");
  w.key("error").begin_object();
  w.member("stage", stage);
  w.member("rule", rule);
  w.member("message", message);
  w.end_object();
  if (timings != nullptr) reply_timings(w, *timings);
  w.end_object();
  return w.str();
}

std::string reply_overloaded(const ReplyIds& ids) {
  util::JsonWriter w;
  reply_head(w, ids, "overloaded");
  w.member("message", "admission queue full, retry later");
  w.end_object();
  return w.str();
}

std::string reply_bad_request(const ReplyIds& ids,
                              const std::string& message) {
  util::JsonWriter w;
  reply_head(w, ids, "bad_request");
  w.member("message", message);
  w.end_object();
  return w.str();
}

}  // namespace bb::serve
