// On-disk content-addressed controller store: the persistent second tier
// behind minimalist::SynthCache, built crash-only — any sequence of
// crashes (SIGKILL, power loss, full disk) leaves a directory the next
// open fully repairs.
//
// Each entry is one file under the root directory, named by a 128-bit
// hash of the cache key (two independent FNV-1a streams), written
// atomically+durably via util::write_file_atomic so a concurrent reader
// — in this process or another one sharing the directory — either sees a
// complete entry or none.  The entry embeds a format version, a
// monotonic access counter (the LRU clock), the full key (guarding
// against hash collisions) and a checksum over the payload; anything
// that fails validation on load is treated as a miss and dropped, so a
// corrupt or stale cache heals itself instead of poisoning results.
//
// Opening the store runs a generation-stamped recovery pass:
//   * the generation stamp (file "generation") is bumped, so every
//     repair artifact is attributable to the open that produced it;
//   * orphaned write temporaries (*.tmp.* older than a grace window,
//     the residue of a writer killed mid-write) are scavenged;
//   * every entry is fully validated — version, checksum, embedded key
//     vs file name — and entries that disagree are QUARANTINED (moved
//     to quarantine/, never silently trusted or deleted), because after
//     a crash the mtime/LRU state cannot be trusted to say which copy
//     is live;
//   * an interrupted eviction is completed from its journal (below).
//
// The store is size-capped: after a store pushes the directory past
// `max_bytes`, the least recently used entries — by persisted access
// counter, not mtime, whose 1-second granularity breaks ordering under
// concurrent hits — are evicted.  Eviction first publishes an intent
// journal ("evict.journal", atomic) listing victims with the access
// counter each decision was based on; files are unlinked only while
// their counter still matches, and recovery replays the same rule, so a
// crash mid-eviction can never drop an entry that was touched after the
// eviction decision.
//
// Entry format (text, see DESIGN.md §15):
//   bbdc <entry-version>
//   <16-hex checksum of everything after this line>
//   <access counter>
//   <key byte count>
//   <key bytes>
//   <serialized controller (serve/codec.hpp)>
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/minimalist/cache.hpp"

namespace bb::serve {

/// Format revision of a cache entry's framing (the payload inside
/// carries its own codec version).  v2 added the access-counter line.
inline constexpr int kDiskEntryVersion = 2;

/// Default size cap when BB_CACHE_MAX_MB is unset: 256 MiB.
inline constexpr std::uint64_t kDefaultCacheMaxBytes = 256ull << 20;

struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_errors = 0;     ///< failed writes (cache disabled? disk full?)
  std::uint64_t corrupt_dropped = 0;  ///< load-path checksum/version/parse failures deleted
  std::uint64_t evictions = 0;        ///< entries removed by the size cap
  // ---- recovery pass (the open that constructed this instance) ----
  std::uint64_t recovered_tmp = 0;    ///< orphaned write temporaries scavenged
  std::uint64_t quarantined = 0;      ///< invalid entries moved to quarantine/
  std::uint64_t journal_applied = 0;  ///< evictions completed from the journal
};

class DiskCache : public minimalist::SynthCache::BackingStore {
 public:
  /// Opens (creating if needed) the store rooted at `root` and runs the
  /// crash-recovery pass described above.  Throws std::runtime_error
  /// when the directory cannot be created.
  explicit DiskCache(std::string root,
                     std::uint64_t max_bytes = kDefaultCacheMaxBytes);

  /// The BB_CACHE_DIR-configured store: nullptr when the variable is
  /// unset or empty (the persistent tier is off by default).
  /// BB_CACHE_MAX_MB overrides the size cap.
  static std::unique_ptr<DiskCache> from_env();

  std::optional<minimalist::SynthesizedController> load(
      const std::string& key) override;
  void store(const std::string& key,
             const minimalist::SynthesizedController& ctrl) override;

  DiskCacheStats stats() const;
  const std::string& root() const { return root_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// The recovery generation this open stamped (monotonic across opens
  /// of one directory; quarantine files carry it in their names).
  std::uint64_t generation() const { return generation_; }

  /// Current on-disk entry count (directory scan; test/stats use).
  std::size_t entry_count() const;

  /// The file an entry for `key` lives in (exposed for tests).
  std::string entry_path(const std::string& key) const;

  /// Full integrity audit: re-validates every entry (version, checksum,
  /// embedded key vs file name, payload parse) without mutating
  /// anything.  The chaos harness asserts bad == 0 after every
  /// crash-restart cycle.
  struct VerifyReport {
    std::size_t entries = 0;  ///< files examined
    std::size_t ok = 0;
    std::size_t bad = 0;
    std::string first_bad;  ///< path of the first failing entry
  };
  VerifyReport verify_all() const;

 private:
  struct ParsedEntry {
    std::uint64_t access = 0;
    std::string_view key;
    std::string_view payload;
  };
  /// Validates one raw entry image; nullopt on any framing defect.
  static std::optional<ParsedEntry> parse_entry(std::string_view data);
  /// Renders the entry image for (key, payload) at `access`.
  static std::string render_entry(const std::string& key,
                                  std::string_view payload,
                                  std::uint64_t access);

  /// Deletes a failed entry and counts it; missing files are fine.
  void drop_corrupt(const std::string& path);
  /// Evicts least-recently-used entries (journal-first) until the
  /// directory fits the size cap.  Called after stores, under mu_.
  void evict_to_cap();
  /// The open-time repair pass (see the header comment).
  void recover();

  std::string root_;
  std::uint64_t max_bytes_;
  std::uint64_t generation_ = 0;
  mutable std::mutex mu_;  ///< serializes eviction scans and counters
  std::uint64_t access_counter_ = 0;  ///< LRU clock, persisted in entries
  DiskCacheStats stats_;
};

}  // namespace bb::serve
