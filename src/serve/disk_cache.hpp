// On-disk content-addressed controller store: the persistent second tier
// behind minimalist::SynthCache.
//
// Each entry is one file under the root directory, named by a 128-bit
// hash of the cache key (two independent FNV-1a streams), written
// atomically+durably via util::write_file_atomic so a concurrent reader
// — in this process or another one sharing the directory — either sees a
// complete entry or none.  The entry embeds a format version, the full
// key (guarding against hash collisions) and a checksum over the
// payload; anything that fails validation is treated as a miss and the
// file is deleted, so a corrupt or stale cache heals itself instead of
// poisoning results.
//
// The store is size-capped: after a store pushes the directory past
// `max_bytes`, the least recently *used* entries are evicted (loads bump
// the file mtime, so recency survives process restarts).
//
// Entry format (text, see DESIGN.md):
//   bbdc <entry-version>
//   <16-hex checksum of everything after this line>
//   <key byte count>
//   <key bytes>
//   <serialized controller (serve/codec.hpp)>
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/minimalist/cache.hpp"

namespace bb::serve {

/// Format revision of a cache entry's framing (the payload inside
/// carries its own codec version).
inline constexpr int kDiskEntryVersion = 1;

/// Default size cap when BB_CACHE_MAX_MB is unset: 256 MiB.
inline constexpr std::uint64_t kDefaultCacheMaxBytes = 256ull << 20;

struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_errors = 0;     ///< failed writes (cache disabled? disk full?)
  std::uint64_t corrupt_dropped = 0;  ///< checksum/version/parse failures deleted
  std::uint64_t evictions = 0;        ///< entries removed by the size cap
};

class DiskCache : public minimalist::SynthCache::BackingStore {
 public:
  /// Opens (creating if needed) the store rooted at `root`.  Throws
  /// std::runtime_error when the directory cannot be created.
  explicit DiskCache(std::string root,
                     std::uint64_t max_bytes = kDefaultCacheMaxBytes);

  /// The BB_CACHE_DIR-configured store: nullptr when the variable is
  /// unset or empty (the persistent tier is off by default).
  /// BB_CACHE_MAX_MB overrides the size cap.
  static std::unique_ptr<DiskCache> from_env();

  std::optional<minimalist::SynthesizedController> load(
      const std::string& key) override;
  void store(const std::string& key,
             const minimalist::SynthesizedController& ctrl) override;

  DiskCacheStats stats() const;
  const std::string& root() const { return root_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Current on-disk entry count (directory scan; test/stats use).
  std::size_t entry_count() const;

  /// The file an entry for `key` lives in (exposed for tests).
  std::string entry_path(const std::string& key) const;

 private:
  /// Deletes a failed entry and counts it; missing files are fine.
  void drop_corrupt(const std::string& path);
  /// Evicts least-recently-used entries until the directory fits the
  /// size cap.  Called after stores, under mu_.
  void evict_to_cap();

  std::string root_;
  std::uint64_t max_bytes_;
  mutable std::mutex mu_;  ///< serializes eviction scans and counters
  DiskCacheStats stats_;
};

}  // namespace bb::serve
