#include "src/serve/codec.hpp"

#include <cstdio>

#include "src/util/hash.hpp"
#include "src/util/strings.hpp"

namespace bb::serve {

namespace {

/// Renders a bit vector as a '0'/'1' string, "-" when empty (so every
/// record occupies exactly one line even for state-free controllers).
std::string bits_to_string(const std::vector<bool>& bits) {
  if (bits.empty()) return "-";
  std::string s;
  s.reserve(bits.size());
  for (const bool b : bits) s += b ? '1' : '0';
  return s;
}

bool bits_from_string(std::string_view s, std::vector<bool>& out) {
  out.clear();
  if (s == "-") return true;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '0') {
      out.push_back(false);
    } else if (c == '1') {
      out.push_back(true);
    } else {
      return false;
    }
  }
  return true;
}

/// Line-by-line reader over the serialized text.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  /// Next line without its newline; nullopt at end of input.
  std::optional<std::string_view> next() {
    if (pos_ > text_.size()) return std::nullopt;
    if (pos_ == text_.size()) {
      pos_ = text_.size() + 1;
      return std::nullopt;
    }
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      std::string_view line = text_.substr(pos_);
      pos_ = text_.size() + 1;
      return line;
    }
    std::string_view line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// "<keyword> <rest>" split; rest may be empty.
bool keyword_line(std::string_view line, std::string_view keyword,
                  std::string_view& rest) {
  if (!util::starts_with(line, keyword)) return false;
  if (line.size() == keyword.size()) {
    rest = "";
    return true;
  }
  if (line[keyword.size()] != ' ') return false;
  rest = line.substr(keyword.size() + 1);
  return true;
}

std::optional<std::size_t> count_field(std::string_view s) {
  const auto v = util::parse_ll(s);
  if (!v || *v < 0) return std::nullopt;
  // An absurd count means a corrupt entry; reject before any reserve().
  if (*v > 1000000) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  return util::fnv1a64(data, seed);
}

std::string hex64(std::uint64_t value) { return util::hex64(value); }

std::string serialize_controller(
    const minimalist::SynthesizedController& ctrl) {
  std::string s;
  s += "bbctrl " + std::to_string(kCodecVersion) + "\n";
  s += "name " + ctrl.name + "\n";
  const auto name_block = [&s](const char* keyword,
                               const std::vector<std::string>& names) {
    s += std::string(keyword) + " " + std::to_string(names.size()) + "\n";
    for (const std::string& n : names) s += n + "\n";
  };
  name_block("inputs", ctrl.inputs);
  name_block("outputs", ctrl.outputs);
  name_block("state_bits", ctrl.state_bits);
  s += "num_vars " + std::to_string(ctrl.num_vars) + "\n";
  s += "functions " + std::to_string(ctrl.functions.size()) + "\n";
  for (const minimalist::SolvedFunction& fn : ctrl.functions) {
    s += "fn " + std::string(fn.is_state_bit ? "1" : "0") + " " +
         std::to_string(fn.products.num_vars()) + " " +
         std::to_string(fn.products.size()) + " " + fn.name + "\n";
    for (const logic::Cube& cube : fn.products.cubes()) {
      s += cube.to_string() + "\n";
    }
  }
  s += "state_codes " + std::to_string(ctrl.state_codes.size()) + "\n";
  for (const std::vector<bool>& code : ctrl.state_codes) {
    s += bits_to_string(code) + "\n";
  }
  s += "initial " + bits_to_string(ctrl.initial_state_code) + "\n";
  s += "end\n";
  return s;
}

std::optional<minimalist::SynthesizedController> deserialize_controller(
    std::string_view text, std::string* error) {
  const auto fail = [error](const char* reason)
      -> std::optional<minimalist::SynthesizedController> {
    if (error != nullptr) *error = reason;
    return std::nullopt;
  };

  Reader reader(text);
  std::string_view rest;

  auto line = reader.next();
  if (!line || !keyword_line(*line, "bbctrl", rest)) {
    return fail("missing bbctrl header");
  }
  if (util::parse_ll(rest).value_or(-1) != kCodecVersion) {
    return fail("unsupported codec version");
  }

  minimalist::SynthesizedController ctrl;
  line = reader.next();
  if (!line || !keyword_line(*line, "name", rest)) return fail("missing name");
  ctrl.name = std::string(rest);

  const auto read_names = [&](const char* keyword,
                              std::vector<std::string>& out) -> bool {
    auto header = reader.next();
    std::string_view r;
    if (!header || !keyword_line(*header, keyword, r)) return false;
    const auto n = count_field(r);
    if (!n) return false;
    out.reserve(*n);
    for (std::size_t i = 0; i < *n; ++i) {
      auto entry = reader.next();
      if (!entry) return false;
      out.emplace_back(*entry);
    }
    return true;
  };
  if (!read_names("inputs", ctrl.inputs)) return fail("bad inputs block");
  if (!read_names("outputs", ctrl.outputs)) return fail("bad outputs block");
  if (!read_names("state_bits", ctrl.state_bits)) {
    return fail("bad state_bits block");
  }

  line = reader.next();
  if (!line || !keyword_line(*line, "num_vars", rest)) {
    return fail("missing num_vars");
  }
  const auto num_vars = count_field(rest);
  if (!num_vars) return fail("bad num_vars");
  ctrl.num_vars = *num_vars;

  line = reader.next();
  if (!line || !keyword_line(*line, "functions", rest)) {
    return fail("missing functions header");
  }
  const auto num_fns = count_field(rest);
  if (!num_fns) return fail("bad function count");
  ctrl.functions.reserve(*num_fns);
  for (std::size_t f = 0; f < *num_fns; ++f) {
    line = reader.next();
    if (!line || !keyword_line(*line, "fn", rest)) {
      return fail("missing fn header");
    }
    // "fn <is_state_bit> <num_vars> <num_cubes> <name>"; the name is the
    // remainder of the line (it can in principle contain spaces).
    std::string_view r = rest;
    const auto take_field = [&r]() -> std::string_view {
      const std::size_t sp = r.find(' ');
      std::string_view field = sp == std::string_view::npos ? r
                                                            : r.substr(0, sp);
      r = sp == std::string_view::npos ? std::string_view()
                                       : r.substr(sp + 1);
      return field;
    };
    const std::string_view state_bit_field = take_field();
    const auto fn_vars = count_field(take_field());
    const auto fn_cubes = count_field(take_field());
    if ((state_bit_field != "0" && state_bit_field != "1") || !fn_vars ||
        !fn_cubes) {
      return fail("bad fn header");
    }
    minimalist::SolvedFunction fn;
    fn.name = std::string(r);
    fn.is_state_bit = state_bit_field == "1";
    std::vector<logic::Cube> cubes;
    cubes.reserve(*fn_cubes);
    for (std::size_t c = 0; c < *fn_cubes; ++c) {
      line = reader.next();
      if (!line || line->size() != *fn_vars) return fail("bad cube line");
      try {
        cubes.push_back(logic::Cube::parse(*line));
      } catch (const std::exception&) {
        return fail("bad cube literal");
      }
    }
    fn.products = logic::Cover(*fn_vars, std::move(cubes));
    ctrl.functions.push_back(std::move(fn));
  }

  line = reader.next();
  if (!line || !keyword_line(*line, "state_codes", rest)) {
    return fail("missing state_codes header");
  }
  const auto num_codes = count_field(rest);
  if (!num_codes) return fail("bad state_codes count");
  ctrl.state_codes.reserve(*num_codes);
  for (std::size_t i = 0; i < *num_codes; ++i) {
    line = reader.next();
    std::vector<bool> code;
    if (!line || !bits_from_string(*line, code)) {
      return fail("bad state code row");
    }
    ctrl.state_codes.push_back(std::move(code));
  }

  line = reader.next();
  if (!line || !keyword_line(*line, "initial", rest) ||
      !bits_from_string(rest, ctrl.initial_state_code)) {
    return fail("bad initial state code");
  }
  line = reader.next();
  if (!line || *line != "end") return fail("missing end marker");
  if (reader.next().has_value()) return fail("trailing data after end");
  return ctrl;
}

}  // namespace bb::serve
