#include "src/serve/disk_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/serve/codec.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/io.hpp"
#include "src/util/strings.hpp"

namespace bb::serve {

namespace fs = std::filesystem;

namespace {

/// Generation stamp and eviction-intent journal, both living in the
/// store root next to the entries.
constexpr const char* kGenerationFile = "generation";
constexpr const char* kJournalFile = "evict.journal";
constexpr const char* kQuarantineDir = "quarantine";
constexpr const char* kJournalHeader = "bbdj 1";

/// Orphaned write temporaries younger than this are left alone: they
/// may belong to a live writer in another process sharing the
/// directory.  A writer holds its temp for milliseconds, so anything
/// past the window is the residue of a crash.
constexpr std::chrono::seconds kTmpGraceWindow{10};

/// Reads a whole file; nullopt when it cannot be opened (racing delete,
/// permissions) — always a miss, never an error.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buf.str();
}

obs::Counter& counter(const char* name) {
  return obs::Registry::global().counter(name);
}

bool is_entry_file(const fs::path& p) { return p.extension() == ".bbc"; }

bool is_orphan_tmp(const std::string& filename) {
  return filename.find(".tmp.") != std::string::npos;
}

}  // namespace

std::optional<DiskCache::ParsedEntry> DiskCache::parse_entry(
    std::string_view data) {
  // Frame: "bbdc <version>\n<checksum>\n<access>\n<keylen>\n<key>\n<payload>".
  std::string_view rest(data);
  const auto take_line = [&rest]() -> std::optional<std::string_view> {
    const std::size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) return std::nullopt;
    std::string_view line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
    return line;
  };

  const auto header = take_line();
  if (!header || !util::starts_with(*header, "bbdc ")) return std::nullopt;
  if (util::parse_ll(header->substr(5)).value_or(-1) != kDiskEntryVersion) {
    return std::nullopt;
  }
  const auto checksum_line = take_line();
  if (!checksum_line) return std::nullopt;
  // The checksum covers the access counter, the key and the payload
  // exactly as stored, so any torn or bit-flipped byte is caught here.
  if (hex64(fnv1a64(rest)) != *checksum_line) return std::nullopt;
  const auto access_line = take_line();
  const auto keylen_line = take_line();
  if (!access_line || !keylen_line) return std::nullopt;
  const auto access = util::parse_ll(*access_line);
  const auto keylen = util::parse_ll(*keylen_line);
  if (!access || *access < 0 || !keylen || *keylen < 0 ||
      static_cast<std::size_t>(*keylen) + 1 > rest.size()) {
    return std::nullopt;
  }
  ParsedEntry entry;
  entry.access = static_cast<std::uint64_t>(*access);
  entry.key = rest.substr(0, static_cast<std::size_t>(*keylen));
  if (rest[static_cast<std::size_t>(*keylen)] != '\n') return std::nullopt;
  entry.payload = rest.substr(static_cast<std::size_t>(*keylen) + 1);
  return entry;
}

std::string DiskCache::render_entry(const std::string& key,
                                    std::string_view payload,
                                    std::uint64_t access) {
  std::string body = std::to_string(access) + "\n" +
                     std::to_string(key.size()) + "\n" + key + "\n" +
                     std::string(payload);
  return "bbdc " + std::to_string(kDiskEntryVersion) + "\n" +
         hex64(fnv1a64(body)) + "\n" + std::move(body);
}

DiskCache::DiskCache(std::string root, std::uint64_t max_bytes)
    : root_(std::move(root)), max_bytes_(max_bytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec || !fs::is_directory(root_)) {
    throw std::runtime_error("DiskCache: cannot create cache directory '" +
                             root_ + "'" + (ec ? ": " + ec.message() : ""));
  }
  recover();
}

std::unique_ptr<DiskCache> DiskCache::from_env() {
  const char* dir = std::getenv("BB_CACHE_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  std::uint64_t max_bytes = kDefaultCacheMaxBytes;
  if (const char* mb = std::getenv("BB_CACHE_MAX_MB")) {
    const auto parsed = util::parse_ll(mb);
    if (parsed && *parsed > 0) {
      max_bytes = static_cast<std::uint64_t>(*parsed) << 20;
    }
  }
  return std::make_unique<DiskCache>(dir, max_bytes);
}

std::string DiskCache::entry_path(const std::string& key) const {
  // Two independent FNV-1a streams give a 128-bit address; the embedded
  // key is still verified on load, so even a collision only costs a miss.
  return root_ + "/" + hex64(fnv1a64(key)) +
         hex64(fnv1a64(key, 0x9e3779b97f4a7c15ull)) + ".bbc";
}

void DiskCache::recover() {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;

  // 1. Bump the generation stamp, so every repair artifact from this
  // open (quarantine files) names the pass that produced it.  A store
  // on a read-only filesystem keeps working with the in-memory stamp.
  const std::string gen_path = root_ + "/" + kGenerationFile;
  if (const auto gen = slurp(gen_path)) {
    generation_ =
        static_cast<std::uint64_t>(util::parse_ll(util::trim(*gen)).value_or(0));
  }
  ++generation_;
  try {
    util::write_file_atomic(gen_path, std::to_string(generation_) + "\n");
  } catch (const std::exception&) {
    // Recovery must not fail the open; the stamp is advisory.
  }

  const auto quarantine = [&](const fs::path& path) {
    const fs::path qdir = fs::path(root_) / kQuarantineDir;
    std::error_code qec;
    fs::create_directories(qdir, qec);
    const fs::path target =
        qdir / ("g" + std::to_string(generation_) + "." +
                path.filename().string());
    fs::rename(path, target, qec);
    if (qec) fs::remove(path, qec);  // quarantine dir unwritable: drop
    ++stats_.quarantined;
    counter("serve.disk_cache.quarantined").add();
  };

  // 2. Complete (or safely abandon) an interrupted eviction.  The
  // journal records each victim with the access counter the eviction
  // decision saw; a file whose counter moved on was touched after the
  // decision and must survive — that is the "never drop a live entry"
  // invariant.  The journal file itself is written atomically, so it is
  // either absent, or complete and trustworthy.
  const std::string journal_path = root_ + "/" + kJournalFile;
  if (const auto journal = slurp(journal_path)) {
    std::istringstream lines(*journal);
    std::string line;
    bool header_ok = std::getline(lines, line) && line == kJournalHeader;
    while (header_ok && std::getline(lines, line)) {
      const std::size_t space = line.find(' ');
      if (space == std::string::npos) continue;
      const auto access = util::parse_ll(line.substr(0, space));
      const std::string filename = line.substr(space + 1);
      if (!access || filename.empty() ||
          filename.find('/') != std::string::npos) {
        continue;
      }
      const fs::path victim = fs::path(root_) / filename;
      const auto data = slurp(victim.string());
      if (!data) continue;  // already unlinked before the crash
      const auto entry = parse_entry(*data);
      if (!entry) {
        quarantine(victim);
        continue;
      }
      if (entry->access <= static_cast<std::uint64_t>(*access)) {
        if (fs::remove(victim, ec)) {
          ++stats_.journal_applied;
          ++stats_.evictions;
          counter("serve.disk_cache.journal_applied").add();
          counter("serve.disk_cache.evictions").add();
        }
      }
    }
    fs::remove(journal_path, ec);
  }

  // 3. Scavenge crash residue and validate every surviving entry.  The
  // access-counter clock resumes past the highest persisted value, so
  // recency ordering survives the restart.
  const auto now = fs::file_time_type::clock::now();
  std::vector<fs::path> to_quarantine;
  for (const auto& it : fs::directory_iterator(root_, ec)) {
    if (!it.is_regular_file(ec)) continue;
    const fs::path& path = it.path();
    const std::string filename = path.filename().string();
    if (filename == kGenerationFile || filename == kJournalFile) continue;
    if (is_orphan_tmp(filename)) {
      const auto mtime = fs::last_write_time(path, ec);
      if (!ec && now - mtime > kTmpGraceWindow) {
        std::error_code rm_ec;
        if (fs::remove(path, rm_ec)) {
          ++stats_.recovered_tmp;
          counter("serve.disk_cache.recovered_tmp").add();
        }
      }
      continue;
    }
    if (!is_entry_file(path)) continue;
    const auto data = slurp(path.string());
    if (!data) continue;
    const auto entry = parse_entry(*data);
    if (!entry || entry_path(std::string(entry->key)) != path.string()) {
      // Version, checksum, or key-embedding disagrees with the file
      // name: quarantine rather than trust or silently delete it.
      to_quarantine.push_back(path);
      continue;
    }
    access_counter_ = std::max(access_counter_, entry->access);
  }
  for (const fs::path& path : to_quarantine) quarantine(path);
}

std::optional<minimalist::SynthesizedController> DiskCache::load(
    const std::string& key) {
  const auto miss = [this]() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    counter("serve.disk_cache.misses").add();
  };
  if (util::failpoint("serve.disk_cache.load")) {
    miss();
    return std::nullopt;
  }
  const std::string path = entry_path(key);
  const auto data = slurp(path);
  if (!data) {
    miss();
    return std::nullopt;
  }

  const auto reject = [&]() -> std::optional<
                              minimalist::SynthesizedController> {
    drop_corrupt(path);
    return std::nullopt;
  };
  const auto entry = parse_entry(*data);
  if (!entry || entry->key != key) return reject();

  auto ctrl = deserialize_controller(entry->payload);
  if (!ctrl) return reject();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    counter("serve.disk_cache.hits").add();
    // Bump recency for the LRU evictor by rewriting the entry with the
    // next clock tick.  Atomic and crash-safe (a crash leaves either
    // the old or the new image); best effort on a read-only or full
    // disk, exactly like the mtime bump it replaces — except the
    // counter is monotonic and survives coarse filesystem timestamps.
    ++access_counter_;
    try {
      util::write_file_atomic(
          path, render_entry(key, entry->payload, access_counter_));
    } catch (const std::exception&) {
    }
  }
  return ctrl;
}

void DiskCache::store(const std::string& key,
                      const minimalist::SynthesizedController& ctrl) {
  const std::string payload = serialize_controller(ctrl);
  std::uint64_t access = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    access = ++access_counter_;
  }
  bool injected = static_cast<bool>(util::failpoint("serve.disk_cache.store"));
  if (!injected) {
    try {
      util::write_file_atomic(entry_path(key),
                              render_entry(key, payload, access));
    } catch (const std::exception&) {
      injected = true;  // a full or read-only disk degrades the cache,
                        // never the synthesis
    }
  }
  if (injected) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_errors;
    counter("serve.disk_cache.store_errors").add();
    return;
  }
  // Crash site between the entry landing on disk and the cache-tier
  // bookkeeping that follows — the classic "crash between cache-tier
  // updates" window the recovery pass must make harmless.
  (void)util::failpoint("serve.disk_cache.store.crash");
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  counter("serve.disk_cache.stores").add();
  evict_to_cap();
}

void DiskCache::drop_corrupt(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.corrupt_dropped;
  ++stats_.misses;
  counter("serve.disk_cache.corrupt_dropped").add();
  counter("serve.disk_cache.misses").add();
}

void DiskCache::evict_to_cap() {
  struct EntryFile {
    fs::path path;
    std::uint64_t access = 0;
    std::uint64_t size = 0;
  };
  std::error_code ec;
  std::vector<EntryFile> files;
  std::uint64_t total = 0;
  for (const auto& it : fs::directory_iterator(root_, ec)) {
    if (!it.is_regular_file(ec)) continue;
    if (!is_entry_file(it.path())) continue;
    const auto data = slurp(it.path().string());
    if (!data) continue;
    const auto entry = parse_entry(*data);
    EntryFile f;
    f.path = it.path();
    f.size = data->size();
    // An unparseable entry sorts first (access 0): it is dead weight
    // the size cap should reclaim before any live entry.
    f.access = entry ? entry->access : 0;
    total += f.size;
    files.push_back(std::move(f));
  }
  if (total <= max_bytes_) return;
  std::sort(files.begin(), files.end(),
            [](const EntryFile& a, const EntryFile& b) {
              return a.access < b.access;  // least recently used first
            });

  // Publish the eviction intent before unlinking anything: recovery can
  // then complete (or veto, entry by entry) an interrupted pass.
  std::vector<EntryFile> victims;
  std::uint64_t reclaimed = 0;
  for (const EntryFile& f : files) {
    if (total - reclaimed <= max_bytes_) break;
    victims.push_back(f);
    reclaimed += f.size;
  }
  if (victims.empty()) return;
  std::string journal = std::string(kJournalHeader) + "\n";
  for (const EntryFile& f : victims) {
    journal += std::to_string(f.access) + " " + f.path.filename().string() +
               "\n";
  }
  const std::string journal_path = root_ + "/" + kJournalFile;
  try {
    util::write_file_atomic(journal_path, journal);
  } catch (const std::exception&) {
    return;  // cannot journal ⇒ do not evict; the cap is advisory
  }
  // Crash site in the window the journal exists for: intent published,
  // victims not yet (all) unlinked.
  (void)util::failpoint("serve.disk_cache.evict.crash");
  for (const EntryFile& f : victims) {
    // Re-check the victim's clock right before the unlink: another
    // process sharing the directory may have re-stored or touched it
    // since the scan, and a touched entry is live, not evictable.
    const auto data = slurp(f.path.string());
    if (!data) continue;
    const auto entry = parse_entry(*data);
    if (entry && entry->access > f.access) continue;
    std::error_code remove_ec;
    if (fs::remove(f.path, remove_ec)) {
      ++stats_.evictions;
      counter("serve.disk_cache.evictions").add();
    }
  }
  fs::remove(journal_path, ec);
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DiskCache::entry_count() const {
  std::error_code ec;
  std::size_t n = 0;
  for (const auto& it : fs::directory_iterator(root_, ec)) {
    if (it.is_regular_file(ec) && is_entry_file(it.path())) ++n;
  }
  return n;
}

DiskCache::VerifyReport DiskCache::verify_all() const {
  VerifyReport report;
  std::error_code ec;
  for (const auto& it : fs::directory_iterator(root_, ec)) {
    if (!it.is_regular_file(ec) || !is_entry_file(it.path())) continue;
    ++report.entries;
    const auto data = slurp(it.path().string());
    const auto entry = data ? parse_entry(*data) : std::nullopt;
    const bool valid =
        entry && entry_path(std::string(entry->key)) == it.path().string() &&
        deserialize_controller(entry->payload).has_value();
    if (valid) {
      ++report.ok;
    } else {
      ++report.bad;
      if (report.first_bad.empty()) report.first_bad = it.path().string();
    }
  }
  return report;
}

}  // namespace bb::serve
