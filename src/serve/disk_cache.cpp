#include "src/serve/disk_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/serve/codec.hpp"
#include "src/util/io.hpp"
#include "src/util/strings.hpp"

namespace bb::serve {

namespace fs = std::filesystem;

namespace {

/// Reads a whole file; nullopt when it cannot be opened (racing delete,
/// permissions) — always a miss, never an error.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buf.str();
}

obs::Counter& counter(const char* name) {
  return obs::Registry::global().counter(name);
}

}  // namespace

DiskCache::DiskCache(std::string root, std::uint64_t max_bytes)
    : root_(std::move(root)), max_bytes_(max_bytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec || !fs::is_directory(root_)) {
    throw std::runtime_error("DiskCache: cannot create cache directory '" +
                             root_ + "'" + (ec ? ": " + ec.message() : ""));
  }
}

std::unique_ptr<DiskCache> DiskCache::from_env() {
  const char* dir = std::getenv("BB_CACHE_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  std::uint64_t max_bytes = kDefaultCacheMaxBytes;
  if (const char* mb = std::getenv("BB_CACHE_MAX_MB")) {
    const auto parsed = util::parse_ll(mb);
    if (parsed && *parsed > 0) {
      max_bytes = static_cast<std::uint64_t>(*parsed) << 20;
    }
  }
  return std::make_unique<DiskCache>(dir, max_bytes);
}

std::string DiskCache::entry_path(const std::string& key) const {
  // Two independent FNV-1a streams give a 128-bit address; the embedded
  // key is still verified on load, so even a collision only costs a miss.
  return root_ + "/" + hex64(fnv1a64(key)) +
         hex64(fnv1a64(key, 0x9e3779b97f4a7c15ull)) + ".bbc";
}

std::optional<minimalist::SynthesizedController> DiskCache::load(
    const std::string& key) {
  const std::string path = entry_path(key);
  const auto data = slurp(path);
  if (!data) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    counter("serve.disk_cache.misses").add();
    return std::nullopt;
  }

  // Frame: "bbdc <version>\n<checksum>\n<keylen>\n<key>\n<payload>".
  const auto reject = [&]() -> std::optional<
                              minimalist::SynthesizedController> {
    drop_corrupt(path);
    return std::nullopt;
  };
  std::string_view rest(*data);
  const auto take_line = [&rest]() -> std::optional<std::string_view> {
    const std::size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) return std::nullopt;
    std::string_view line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
    return line;
  };

  const auto header = take_line();
  if (!header || !util::starts_with(*header, "bbdc ")) return reject();
  if (util::parse_ll(header->substr(5)).value_or(-1) != kDiskEntryVersion) {
    return reject();
  }
  const auto checksum_line = take_line();
  const auto keylen_line = take_line();
  if (!checksum_line || !keylen_line) return reject();
  const auto keylen = util::parse_ll(*keylen_line);
  if (!keylen || *keylen < 0 ||
      static_cast<std::size_t>(*keylen) + 1 > rest.size()) {
    return reject();
  }
  // The checksum covers the key and payload exactly as stored, so any
  // torn or bit-flipped byte below this line is caught here.
  if (hex64(fnv1a64(rest)) != *checksum_line) return reject();
  const std::string_view stored_key = rest.substr(0, *keylen);
  if (stored_key != key || rest[*keylen] != '\n') return reject();
  const std::string_view payload = rest.substr(*keylen + 1);

  auto ctrl = deserialize_controller(payload);
  if (!ctrl) return reject();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    counter("serve.disk_cache.hits").add();
  }
  // Bump recency for the LRU evictor; best effort (another process may
  // have evicted the file between the read and here).
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return ctrl;
}

void DiskCache::store(const std::string& key,
                      const minimalist::SynthesizedController& ctrl) {
  const std::string payload = serialize_controller(ctrl);
  std::string body = key + "\n" + payload;
  std::string entry = "bbdc " + std::to_string(kDiskEntryVersion) + "\n" +
                      hex64(fnv1a64(body)) + "\n" +
                      std::to_string(key.size()) + "\n" + std::move(body);
  try {
    util::write_file_atomic(entry_path(key), entry);
  } catch (const std::exception&) {
    // A full or read-only disk degrades the cache, never the synthesis.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_errors;
    counter("serve.disk_cache.store_errors").add();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  counter("serve.disk_cache.stores").add();
  evict_to_cap();
}

void DiskCache::drop_corrupt(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.corrupt_dropped;
  ++stats_.misses;
  counter("serve.disk_cache.corrupt_dropped").add();
  counter("serve.disk_cache.misses").add();
}

void DiskCache::evict_to_cap() {
  struct EntryFile {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::error_code ec;
  std::vector<EntryFile> files;
  std::uint64_t total = 0;
  for (const auto& it : fs::directory_iterator(root_, ec)) {
    if (!it.is_regular_file(ec)) continue;
    if (it.path().extension() != ".bbc") continue;
    EntryFile f;
    f.path = it.path();
    f.mtime = fs::last_write_time(f.path, ec);
    if (ec) continue;
    f.size = static_cast<std::uint64_t>(fs::file_size(f.path, ec));
    if (ec) continue;
    total += f.size;
    files.push_back(std::move(f));
  }
  if (total <= max_bytes_) return;
  std::sort(files.begin(), files.end(),
            [](const EntryFile& a, const EntryFile& b) {
              return a.mtime < b.mtime;  // oldest (least recently used) first
            });
  for (const EntryFile& f : files) {
    if (total <= max_bytes_) break;
    std::error_code remove_ec;
    if (fs::remove(f.path, remove_ec)) {
      total -= std::min(total, f.size);
      ++stats_.evictions;
      counter("serve.disk_cache.evictions").add();
    }
  }
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DiskCache::entry_count() const {
  std::error_code ec;
  std::size_t n = 0;
  for (const auto& it : fs::directory_iterator(root_, ec)) {
    if (it.is_regular_file(ec) && it.path().extension() == ".bbc") ++n;
  }
  return n;
}

}  // namespace bb::serve
