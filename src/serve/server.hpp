// The synthesis service daemon core: a Unix-domain-socket server that
// executes flow requests on the shared util::ThreadPool, in front of the
// tiered synthesis cache (in-memory minimalist::SynthCache backed by an
// optional serve::DiskCache).
//
// Concurrency model: one lightweight reader thread per connection parses
// newline-delimited requests; cheap ops (ping/stats/metrics/trace/
// shutdown) are answered inline, synthesis ops are admitted into a
// bounded in-flight set and executed on the pool.  When the set is full the server sheds
// load with an immediate "overloaded" reply instead of queueing without
// bound.  Replies are written per-connection under a write mutex in
// completion order (each carries the request id).
//
// Idempotent retries: a synthesis request that carries an id is
// remembered in a bounded dedupe table.  A duplicate id — a client
// retrying after a timeout or a dropped connection — is answered from
// the table (or attached to the in-flight original) instead of being
// re-executed, so retries always observe the payload the first
// execution produced.
//
// Shutdown is graceful: stop() (async-signal-safe; the bb-served signal
// handler calls it directly) makes the accept loop close the listener,
// connection readers stop accepting new requests, in-flight work drains
// through the pool, replies are flushed, and run() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/minimalist/cache.hpp"
#include "src/serve/disk_cache.hpp"

namespace bb::serve {

struct ServerOptions {
  std::string socket_path;
  /// Worker threads executing synthesis requests; 0 = one per hardware
  /// thread (BB_JOBS honored via util::ThreadPool::recommended_jobs()).
  int jobs = 0;
  /// Maximum synthesis requests in flight (queued + running) before the
  /// server sheds load with "overloaded" replies.
  int max_inflight = 64;
  /// Persistent cache directory; empty = memory tier only.  (bb-served
  /// defaults this from BB_CACHE_DIR.)
  std::string cache_dir;
  std::uint64_t cache_max_bytes = kDefaultCacheMaxBytes;
  /// Work-budget deadline applied to requests that do not carry their
  /// own (0 = unlimited).
  long long default_work_budget = 0;
  /// In-memory tier entry cap (SynthCache::set_max_entries).
  std::size_t memory_cache_entries = minimalist::SynthCache::kDefaultMaxEntries;
  /// Slow-trickle guard: a connection holding an incomplete request
  /// line longer than this is answered with a structured bad_request
  /// and closed, instead of pinning a reader thread forever
  /// (0 = no deadline).
  int line_timeout_ms = 30000;
  /// JSONL operational event log: one per-request completion record per
  /// line.  Empty = no log.  (bb-served defaults this from BB_LOG.)
  std::string log_path;
  /// Slow-request threshold in milliseconds: a request at least this
  /// slow gets its spans attached to its event-log record as an
  /// exemplar.  Negative = off.  (bb-served defaults from BB_SLOW_MS.)
  int slow_ms = -1;
  /// Keep the span tracer enabled for the life of the server so the
  /// `trace` op always has live data (a tracer someone else already
  /// enabled is left alone and left running).
  bool live_trace = true;
  /// Per-thread span-ring capacity in events, applied before enabling
  /// the tracer (clamped by obs::Tracer; see DESIGN.md §16).
  std::size_t span_ring = 16384;
  /// Root directory for incremental-build projects (src/incr); each
  /// request's "project" name becomes a subdirectory holding that
  /// project's manifest and artifacts.  Empty = the
  /// synthesize_incremental op is disabled.  (bb-served defaults this
  /// from BB_PROJECT_DIR.)
  std::string project_dir;
};

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;       ///< requests parsed (any op)
  std::uint64_t completed = 0;      ///< synthesis requests answered "ok"
  std::uint64_t errors = 0;         ///< synthesis requests answered "error"
  std::uint64_t bad_requests = 0;   ///< unparseable / unsupported requests
  std::uint64_t overloaded = 0;     ///< requests shed by admission control
  std::uint64_t deduped = 0;        ///< duplicate ids answered from the
                                    ///< idempotency table (client retries)
  std::uint64_t line_timeouts = 0;  ///< slow-trickle connections closed
};

class Server {
 public:
  /// Binds and listens on options.socket_path (an existing socket file
  /// is replaced).  Throws std::runtime_error on bind failure.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until stop() is called (or a "shutdown" request arrives),
  /// then drains in-flight work and returns.
  void run();

  /// Requests shutdown.  Only touches an atomic flag, so it is safe to
  /// call from a signal handler; run() notices within its poll interval.
  void stop() noexcept;

  bool stopping() const noexcept;

  const ServerOptions& options() const;

  ServerStats stats() const;
  /// Stats + cache tiers as a deterministic JSON object fragment (the
  /// "stats" op reply body).
  std::string stats_json() const;

  minimalist::SynthCache& cache();
  DiskCache* disk_cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bb::serve
