#include "src/serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/util/prng.hpp"

namespace bb::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("serve::Client: " + what);
}

}  // namespace

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    fail("socket path empty or too long: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) fail(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("cannot connect to '" + socket_path + "': " + reason);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::recv_line(int timeout_ms) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) {
      throw ClientTimeout("serve::Client: timed out waiting for a reply");
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) fail("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::roundtrip(const std::string& line, int timeout_ms) {
  send_line(line);
  return recv_line(timeout_ms);
}

std::string Client::request_idempotent(const std::string& socket_path,
                                       const std::string& line,
                                       const RetryOptions& opts,
                                       RetryStats* stats) {
  const int attempts = std::max(1, opts.attempts);
  util::SplitMix64 jitter(opts.jitter_seed);
  std::string last_error;
  bool last_was_timeout = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff with up to +50% seeded jitter, so a
      // herd of retrying clients spreads out instead of stampeding the
      // restarting daemon in lockstep.
      std::uint64_t delay = static_cast<std::uint64_t>(
          std::max(1, opts.backoff_ms));
      for (int i = 1; i < attempt; ++i) delay *= 2;
      delay = std::min(delay,
                       static_cast<std::uint64_t>(
                           std::max(1, opts.backoff_cap_ms)));
      delay += jitter.below(delay / 2 + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    if (stats != nullptr) stats->attempts = attempt + 1;
    try {
      // Fresh connection per attempt: after a daemon crash the old
      // socket is gone, and a half-written request line on a reused
      // connection would corrupt framing.
      Client client(socket_path);
      return client.roundtrip(line, opts.timeout_ms);
    } catch (const ClientTimeout& e) {
      last_error = e.what();
      last_was_timeout = true;
    } catch (const std::runtime_error& e) {
      last_error = e.what();
      last_was_timeout = false;
    }
  }
  const std::string what = "serve::Client: request failed after " +
                           std::to_string(attempts) +
                           " attempt(s): " + last_error;
  // Preserve the failure class so callers can tell "the last attempt
  // timed out (the request may still run)" from a dead transport.
  if (last_was_timeout) throw ClientTimeout(what);
  throw std::runtime_error(what);
}

}  // namespace bb::serve
