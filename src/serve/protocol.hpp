// The synthesis service wire protocol: newline-delimited JSON over a
// Unix-domain stream socket.
//
// Every request is one JSON object on one line, tagged with
// "schema_version"; every reply is one JSON object on one line.  Ops:
//
//   ping           liveness probe                     -> status "ok"
//   stats          server + cache statistics          -> status "ok"
//   metrics        live obs::Registry snapshot        -> JSON and/or
//                  ("format": json|prometheus|both)      Prometheus text
//   trace          live span-ring query ("last" N     -> Chrome trace
//                  spans, "filter" by trace id)          JSON document
//   shutdown       graceful drain + exit              -> status "ok"
//   synthesize     full flow over "source" (mini-     -> report, area,
//                  Balsa text) or "design" (built-in)    timings, cache
//   synthesize_bm  one Burst-Mode spec ("bms" text)   -> .sol logic
//   analyze        every lint + semantic pass over    -> lint JSON (and
//                  "source"/"design", never aborting     SARIF on request)
//   synthesize_incremental
//                  incremental build of a whole        -> spliced report,
//                  program ("source", one or more         dirty/reused
//                  procedures) against the named          unit counts,
//                  "project" under the server's           timings (and
//                  --project-dir (src/incr)               Verilog opt-in)
//
// Replies echo the request "id" (when given) and carry one of the
// statuses: "ok", "error" (structured stage/rule/message), "overloaded"
// (admission queue full — retry later), "bad_request" (unparseable or
// unsupported request).  Request decoding is strict about shape but
// lenient about unknown members, so the schema can grow compatibly.
//
// Trace context: a request may carry "trace_id" naming the distributed
// trace it belongs to; the server mints one ("srv-<seq>") when absent.
// Either way the reply echoes the effective id as "trace_id", and every
// span recorded while the request executes — including per-controller
// synthesis on pool workers — is tagged with it, so the `trace` op can
// pull one request's spans out of the ring with "filter".
#pragma once

#include <optional>
#include <string>

#include "src/flow/flow.hpp"

namespace bb::serve {

/// Wire format revision; requests with a different schema_version are
/// rejected with bad_request.
inline constexpr int kProtocolVersion = 1;

/// FlowOptions overrides a request may carry (absent members keep the
/// server-side defaults).
struct RequestOptions {
  bool unoptimized = false;
  std::optional<int> max_states;
  std::optional<int> jobs;
  std::optional<bool> cache;
  std::optional<bool> strict;
  std::optional<bool> lint;
  /// Per-request synthesis deadline in abstract work operations
  /// (util::WorkBudget); overrides the server default.
  std::optional<long long> work_budget;
  /// Include structural Verilog of the mapped control netlist in the
  /// reply (synthesize only).
  bool verilog = false;
  /// Include a SARIF 2.1.0 rendering of the findings in the reply
  /// (analyze only).
  bool sarif = false;
  /// Skip the deep semantic passes (AN/PN/NL005+) and run only the
  /// per-layer lint passes (analyze only).
  bool no_analyze = false;
};

struct Request {
  std::string id;        ///< echoed verbatim in the reply; may be empty
  std::string op;        ///< ping / stats / metrics / trace / shutdown /
                         ///< synthesize / synthesize_bm / analyze
  std::string trace_id;  ///< client-supplied trace context; server mints
                         ///< one when empty
  std::string design;    ///< built-in design name (synthesize)
  std::string source;    ///< inline mini-Balsa text (synthesize)
  std::string bms;       ///< inline .bms text (synthesize_bm)
  std::string project;   ///< project name under the server's project dir
                         ///< (synthesize_incremental; [A-Za-z0-9_-]+,
                         ///< default "default")
  std::string mode = "speed";   ///< "speed" | "area" (synthesize_bm)
  std::string format = "json";  ///< "json" | "prometheus" | "both" (metrics)
  std::string filter;           ///< trace-id filter (trace)
  int last = 0;                 ///< newest-N span cap, 0 = all (trace)
  RequestOptions options;
};

/// Parses one request line.  Returns false and fills `error` on any
/// defect (bad JSON, wrong schema_version, unknown op, missing input).
bool parse_request(const std::string& line, Request* request,
                   std::string* error);

/// Applies a request's overrides on top of the server's base options.
flow::FlowOptions apply_options(const RequestOptions& overrides,
                                long long default_work_budget);

// ---- reply rendering (every function returns one line, no newline) ----

/// Envelope identity echoed in every reply: the request "id" and the
/// effective "trace_id" (either may be empty, in which case the member
/// is omitted).
struct ReplyIds {
  std::string id;
  std::string trace_id;
};

struct ReplyTimings {
  double queue_ms = 0.0;  ///< admission to execution start
  double run_ms = 0.0;    ///< execution
};

std::string reply_ok_ping(const ReplyIds& ids);
std::string reply_ok_stats(const ReplyIds& ids, const std::string& raw_json);
/// Either rendering may be null to omit it ("format" selects).
std::string reply_ok_metrics(const ReplyIds& ids,
                             const std::string* metrics_json,
                             const std::string* prometheus_text);
/// `trace_json` is the Chrome trace-event document from the span ring.
std::string reply_ok_trace(const ReplyIds& ids, const std::string& trace_json);
std::string reply_ok_shutdown(const ReplyIds& ids);
/// `result_json` is a pre-rendered JSON object fragment.
std::string reply_ok_result(const ReplyIds& ids,
                            const std::string& result_json,
                            const ReplyTimings& timings);
std::string reply_error(const ReplyIds& ids, const std::string& stage,
                        const std::string& rule, const std::string& message,
                        const ReplyTimings* timings = nullptr);
std::string reply_overloaded(const ReplyIds& ids);
std::string reply_bad_request(const ReplyIds& ids,
                              const std::string& message);

}  // namespace bb::serve
