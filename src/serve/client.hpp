// Minimal blocking client for the bb-served wire protocol: one
// connection, newline-delimited request/reply lines.  Used by bb-client
// and the bench_serve load generator; each instance is single-threaded,
// open one Client per concurrent connection.
#pragma once

#include <string>

namespace bb::serve {

class Client {
 public:
  /// Connects to the daemon's Unix-domain socket.  Throws
  /// std::runtime_error when the socket does not exist or refuses.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (the trailing newline is added here).
  /// Throws std::runtime_error on a broken connection.
  void send_line(const std::string& line);

  /// Reads the next reply line.  `timeout_ms` < 0 waits forever.
  /// Throws std::runtime_error on EOF, error, or timeout.
  std::string recv_line(int timeout_ms = -1);

  /// send_line + recv_line.  Correct for one-request-at-a-time use;
  /// pipelined callers must match ids themselves.
  std::string roundtrip(const std::string& line, int timeout_ms = -1);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace bb::serve
