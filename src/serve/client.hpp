// Minimal blocking client for the bb-served wire protocol: one
// connection, newline-delimited request/reply lines.  Used by bb-client
// and the bench_serve load generator; each instance is single-threaded,
// open one Client per concurrent connection.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace bb::serve {

/// Thrown by recv_line/roundtrip when the reply deadline passes (the
/// request may still execute server-side).  A subclass of the generic
/// transport runtime_error so existing catch sites keep working, but
/// distinguishable where timeout and transport failure mean different
/// things — bb-client maps them to different exit codes.
class ClientTimeout : public std::runtime_error {
 public:
  explicit ClientTimeout(const std::string& what)
      : std::runtime_error(what) {}
};

/// Tuning for Client::request_idempotent.
struct RetryOptions {
  int attempts = 5;          ///< total tries (1 = no retry)
  int timeout_ms = 30000;    ///< per-attempt reply deadline (-1 = forever)
  int backoff_ms = 50;       ///< first retry delay
  int backoff_cap_ms = 2000; ///< exponential backoff ceiling
  std::uint64_t jitter_seed = 1;  ///< seeds the deterministic jitter stream
};

/// What request_idempotent actually did (for logs and the chaos harness).
struct RetryStats {
  int attempts = 0;  ///< connections tried (1 = first try succeeded)
};

class Client {
 public:
  /// Connects to the daemon's Unix-domain socket.  Throws
  /// std::runtime_error when the socket does not exist or refuses.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (the trailing newline is added here).
  /// Throws std::runtime_error on a broken connection.
  void send_line(const std::string& line);

  /// Reads the next reply line.  `timeout_ms` < 0 waits forever.
  /// Throws std::runtime_error on EOF, error, or timeout.
  std::string recv_line(int timeout_ms = -1);

  /// send_line + recv_line.  Correct for one-request-at-a-time use;
  /// pipelined callers must match ids themselves.
  std::string roundtrip(const std::string& line, int timeout_ms = -1);

  /// Resilient request: opens a fresh connection per attempt, sends
  /// `line`, and waits up to opts.timeout_ms for the reply.  A refused
  /// connection, broken socket, or timeout triggers a capped
  /// exponential backoff (with jitter drawn from opts.jitter_seed) and
  /// a retry.  `line` MUST carry a request id — the server's
  /// idempotency key — so a retry whose original actually executed is
  /// answered with the original's reply instead of re-running.  Throws
  /// std::runtime_error after the final attempt fails.
  static std::string request_idempotent(const std::string& socket_path,
                                        const std::string& line,
                                        const RetryOptions& opts = {},
                                        RetryStats* stats = nullptr);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace bb::serve
