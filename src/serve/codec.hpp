// Versioned serialization of SynthesizedController for the persistent
// cache tier, plus the hashing primitives the disk cache addresses
// entries with.
//
// The format is line-oriented text: deterministic by construction (no
// floats, no pointers, no maps with unstable order), so
// serialize(deserialize(s)) == s holds for every valid document, which
// is what lets the disk cache checksum entries byte-for-byte.  Signal
// names are stored verbatim; the rebinding that adapts a cached
// controller to a requesting spec's names happens in
// minimalist::SynthCache, above this layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/minimalist/synth.hpp"

namespace bb::serve {

/// Format revision of the controller serialization; bump on any layout
/// change so old cache entries are treated as misses, not misparsed.
inline constexpr int kCodecVersion = 1;

/// 64-bit FNV-1a over `data`.  `seed` selects independent streams (the
/// disk cache derives a 128-bit file name from two seeds).
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// 16-hex-digit rendering of a 64-bit hash.
std::string hex64(std::uint64_t value);

/// Renders `ctrl` in the versioned text format.
std::string serialize_controller(const minimalist::SynthesizedController& ctrl);

/// Parses a serialized controller.  Returns nullopt on *any* defect —
/// unknown version, truncation, malformed counts or cubes — and stores a
/// one-line reason in `error` when non-null.  Never throws: the disk
/// cache treats a failed parse as a corrupt entry and deletes it.
std::optional<minimalist::SynthesizedController> deserialize_controller(
    std::string_view text, std::string* error = nullptr);

}  // namespace bb::serve
