#include "src/serve/chaos.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/bm/parse.hpp"
#include "src/minimalist/synth.hpp"
#include "src/serve/client.hpp"
#include "src/serve/disk_cache.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"
#include "src/util/prng.hpp"

namespace bb::serve {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---- the fault catalog the seed draws from ----

struct FaultSite {
  const char* spec_head;  ///< "name=" prefix of the BB_FAILPOINTS entry
  bool parametric;        ///< takes a crash(N) hit count
  bool expects_crash;
};

constexpr FaultSite kSites[] = {
    // Crash inside write_file_atomic: temp file written, rename not yet
    // issued — recovery must scavenge the orphan.
    {"io.wfa.crash_before_rename=crash", true, true},
    // Crash after the rename, before the directory fsync — the entry
    // may or may not survive; either way it must validate.
    {"io.wfa.crash_after_rename=crash", true, true},
    // Crash between a store's durable write and its in-memory
    // bookkeeping (eviction scan never ran).
    {"serve.disk_cache.store.crash=crash", true, true},
    // Crash between journal publication and victim unlinking: recovery
    // must finish the eviction without dropping any touched entry.
    {"serve.disk_cache.evict.crash=crash", false, true},
    // Dropped reply mid-send: the client's retry must be deduped.
    {"serve.send=once", false, false},
    // Dropped connection mid-read.
    {"serve.recv=once", false, false},
};

/// One synthesize_bm request with its precomputed ground truth.
struct Job {
  std::string id;
  std::string request;       ///< full request line
  std::string expected_sol;  ///< minimalist::synthesize, in-process
  bool verified = false;
};

/// Structurally unique burst-mode spec for global job index `g`: one
/// 2-state handshake driving `g+1` outputs.  The cache key is built
/// from the machine's *structure* (names are canonicalized away), so
/// the width is what makes every cycle's keys fresh — every cycle
/// exercises the store path, not just warm hits.
std::string job_bms(int g) {
  const int width = g + 1;
  std::string bms = "name g" + std::to_string(g) + "\ninput r 0\n";
  for (int j = 0; j < width; ++j) {
    bms += "output a" + std::to_string(j) + " 0\n";
  }
  std::string rising = "0 1 r+ |";
  std::string falling = "1 0 r- |";
  for (int j = 0; j < width; ++j) {
    rising += " a" + std::to_string(j) + "+";
    falling += " a" + std::to_string(j) + "-";
  }
  bms += rising + "\n" + falling + "\n";
  return bms;
}

Job make_job(int cycle, int k, int g) {
  Job job;
  job.id = "c" + std::to_string(cycle) + "-" + std::to_string(k);
  const std::string bms = job_bms(g);
  job.expected_sol = minimalist::synthesize(bm::parse_bms(bms)).to_sol();
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", 1);
  w.member("id", job.id);
  w.member("op", "synthesize_bm");
  w.member("bms", bms);
  w.end_object();
  job.request = w.str();
  return job;
}

// ---- daemon supervision ----

pid_t spawn_daemon(const ChaosOptions& options, const std::string& socket,
                   const std::string& cache_dir,
                   const std::string& fail_spec) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("chaos: fork failed");
  if (pid == 0) {
    if (fail_spec.empty()) {
      ::unsetenv("BB_FAILPOINTS");
    } else {
      ::setenv("BB_FAILPOINTS", fail_spec.c_str(), 1);
    }
    // The daemon's startup/drain chatter would swamp the campaign log.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 2);
      ::close(devnull);
    }
    const std::string max_mb = std::to_string(options.cache_max_mb);
    ::execl(options.served_path.c_str(), options.served_path.c_str(),
            "--socket", socket.c_str(), "--cache-dir", cache_dir.c_str(),
            "--cache-max-mb", max_mb.c_str(), "--jobs", "2",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  return pid;
}

/// True when the child has exited (status stored in *status, reaped).
bool reap_if_exited(pid_t pid, int* status) {
  return ::waitpid(pid, status, WNOHANG) == pid;
}

/// Polls until the daemon answers a ping, it exits, or the budget runs
/// out.  Returns true when ready.
bool wait_ready(const std::string& socket, pid_t pid, long long budget_ms,
                bool* exited, int* status) {
  const auto t0 = Clock::now();
  while (ms_since(t0) < static_cast<double>(budget_ms)) {
    if (reap_if_exited(pid, status)) {
      *exited = true;
      return false;
    }
    try {
      Client client(socket);
      client.roundtrip(R"({"schema_version":1,"op":"ping"})", 500);
      return true;
    } catch (const std::runtime_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return false;
}

void stop_daemon(pid_t pid, int sig, int* status) {
  if (!reap_if_exited(pid, status)) {
    ::kill(pid, sig);
    ::waitpid(pid, status, 0);
  }
}

/// Checks one reply against the job's ground truth.  Returns true when
/// the job is now verified; a wrong "ok" payload poisons `wrong`.
bool check_reply(const std::string& reply, Job* job, std::atomic<bool>* wrong,
                 std::mutex* detail_mu, std::string* detail) {
  const auto doc = util::parse_json(reply);
  if (!doc || doc->get_string("status") != "ok") return false;
  const util::JsonValue* result = doc->get("result");
  const std::string sol =
      result != nullptr ? result->get_string("sol") : std::string();
  if (sol == job->expected_sol) {
    job->verified = true;
    return true;
  }
  wrong->store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(*detail_mu);
  if (detail->empty()) {
    *detail = "wrong result for id " + job->id;
  }
  return false;
}

}  // namespace

std::string ChaosResult::to_text() const {
  std::string out =
      "chaos: seed=" + std::to_string(seed) +
      " cycles=" + std::to_string(cycles) +
      (passed ? " PASSED" : " FAILED") +
      "\n  crashes_observed=" + std::to_string(crashes_observed) +
      " fallback_kills=" + std::to_string(fallback_kills) +
      " client_retries=" + std::to_string(client_retries) +
      " replies_verified=" + std::to_string(replies_verified) +
      "\n  recovered_tmp=" + std::to_string(recovered_tmp) +
      " quarantined=" + std::to_string(quarantined) +
      " journal_applied=" + std::to_string(journal_applied) +
      " max_recovery_ms=" + std::to_string(max_recovery_ms) + "\n";
  for (const ChaosCycleReport& r : reports) {
    if (r.integrity_ok && r.results_ok && r.recovery_ok) continue;
    out += "  cycle " + std::to_string(r.index) + " [" + r.fail_spec + "]:" +
           (r.integrity_ok ? "" : " INTEGRITY") +
           (r.results_ok ? "" : " RESULTS") +
           (r.recovery_ok ? "" : " RECOVERY") + "\n";
  }
  return out;
}

std::string ChaosResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kChaosSchemaVersion);
  w.member("kind", "chaos");
  w.member("seed", seed);
  w.member("cycles", cycles);
  w.member("failpoints_compiled", util::Failpoints::compiled_in());
  w.member("passed", passed);
  w.key("reports").begin_array();
  for (const ChaosCycleReport& r : reports) {
    w.begin_object();
    w.member("index", r.index);
    w.member("fail_spec", r.fail_spec);
    w.member("expected_crash", r.expected_crash);
    w.member("integrity_ok", r.integrity_ok);
    w.member("results_ok", r.results_ok);
    w.member("recovery_ok", r.recovery_ok);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

ChaosResult run_chaos(const ChaosOptions& options) {
  if (options.served_path.empty() || !fs::exists(options.served_path)) {
    throw std::runtime_error("chaos: bb-served binary not found at '" +
                             options.served_path + "'");
  }
  fs::create_directories(options.work_dir);
  const std::string socket = options.work_dir + "/bb.sock";
  const std::string cache_dir = options.work_dir + "/cache";

  ChaosResult result;
  result.seed = options.seed;
  result.cycles = options.cycles;
  util::SplitMix64 rng(options.seed);

  const int jobs_per_cycle =
      std::max(1, options.clients) * std::max(1, options.requests_per_client);
  bool all_ok = true;

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    ChaosCycleReport report;
    report.index = cycle;

    // ---- seed-derived fault plan ----
    const FaultSite& site = kSites[rng.below(std::size(kSites))];
    report.expected_crash = site.expects_crash;
    std::string spec = site.spec_head;
    if (site.parametric) {
      spec += "(" + std::to_string(1 + rng.below(4)) + ")";
    }
    if (rng.below(4) == 0) {
      // Stack a torn-write fault on top: every atomic write is cut
      // short, so stores fail while the service keeps answering.
      spec += ";io.wfa.write=short(" + std::to_string(16 + rng.below(64)) + ")";
    }
    report.fail_spec = spec;

    // ---- ground-truth jobs (fresh cache keys every cycle) ----
    std::vector<Job> jobs;
    jobs.reserve(static_cast<std::size_t>(jobs_per_cycle));
    for (int k = 0; k < jobs_per_cycle; ++k) {
      jobs.push_back(make_job(cycle, k, cycle * jobs_per_cycle + k));
    }

    // ---- phase 1: faulted daemon under concurrent load ----
    pid_t pid = spawn_daemon(options, socket, cache_dir, spec);
    int status = 0;
    bool exited = false;
    wait_ready(socket, pid, options.recovery_budget_ms, &exited, &status);

    std::atomic<bool> wrong{false};
    std::mutex detail_mu;
    std::string detail;
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> verified{0};
    if (!exited) {
      std::vector<std::thread> load;
      const int per = std::max(1, options.requests_per_client);
      for (int c = 0; c < std::max(1, options.clients); ++c) {
        load.emplace_back([&, c] {
          for (int k = c * per; k < (c + 1) * per; ++k) {
            Job& job = jobs[static_cast<std::size_t>(k)];
            RetryOptions ro;
            ro.attempts = 3;
            ro.timeout_ms = 20000;
            ro.backoff_ms = 25;
            ro.jitter_seed = options.seed ^ static_cast<std::uint64_t>(k + 1);
            RetryStats rs;
            try {
              const std::string reply =
                  Client::request_idempotent(socket, job.request, ro, &rs);
              if (check_reply(reply, &job, &wrong, &detail_mu, &detail)) {
                verified.fetch_add(1, std::memory_order_relaxed);
              }
            } catch (const std::runtime_error&) {
              // Daemon (probably) crashed mid-request: phase 3 resends
              // this id against the recovered daemon.
            }
            retries.fetch_add(static_cast<std::uint64_t>(rs.attempts - 1),
                              std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& t : load) t.join();
    }
    result.client_retries += retries.load();

    // ---- phase 2: ensure the daemon is dead, then restart clean ----
    if (!exited) exited = reap_if_exited(pid, &status);
    if (!exited) {
      if (site.expects_crash) {
        // The armed site never fired (e.g. no eviction this cycle):
        // the parent plays power-loss itself.
        ::kill(pid, SIGKILL);
        ++result.fallback_kills;
      } else {
        ::kill(pid, SIGTERM);
      }
      ::waitpid(pid, &status, 0);
    }
    if (WIFEXITED(status) &&
        WEXITSTATUS(status) == util::Failpoints::kCrashExitCode) {
      ++result.crashes_observed;
    }

    const auto restart_t0 = Clock::now();
    pid = spawn_daemon(options, socket, cache_dir, "");
    bool restart_exited = false;
    const bool ready = wait_ready(socket, pid, options.recovery_budget_ms,
                                  &restart_exited, &status);
    const double recovery_ms = ms_since(restart_t0);
    report.recovery_ok = ready;
    if (recovery_ms > result.max_recovery_ms) {
      result.max_recovery_ms = recovery_ms;
    }

    // ---- phase 3: resend every unanswered id; all must verify ----
    if (ready) {
      for (Job& job : jobs) {
        if (job.verified) continue;
        RetryOptions ro;
        ro.attempts = 5;
        ro.timeout_ms = 30000;
        ro.backoff_ms = 50;
        ro.jitter_seed = options.seed + static_cast<std::uint64_t>(cycle);
        RetryStats rs;
        try {
          const std::string reply =
              Client::request_idempotent(socket, job.request, ro, &rs);
          if (check_reply(reply, &job, &wrong, &detail_mu, &detail)) {
            verified.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::runtime_error&) {
        }
        result.client_retries += static_cast<std::uint64_t>(rs.attempts - 1);
      }
      stop_daemon(pid, SIGTERM, &status);
    } else if (!restart_exited) {
      stop_daemon(pid, SIGKILL, &status);
    }

    bool all_verified = true;
    for (const Job& job : jobs) all_verified &= job.verified;
    report.results_ok = all_verified && !wrong.load();
    result.replies_verified += verified.load();

    // ---- phase 4: full integrity audit of the shared cache dir ----
    try {
      DiskCache audit(cache_dir, static_cast<std::uint64_t>(
                                     options.cache_max_mb) << 20);
      const auto rep = audit.verify_all();
      report.integrity_ok = rep.bad == 0;
      const auto stats = audit.stats();
      result.recovered_tmp += stats.recovered_tmp;
      result.quarantined += stats.quarantined;
      result.journal_applied += stats.journal_applied;
    } catch (const std::exception&) {
      report.integrity_ok = false;
    }

    all_ok &= report.integrity_ok && report.results_ok && report.recovery_ok;
    result.reports.push_back(std::move(report));
  }

  result.passed = all_ok;
  return result;
}

}  // namespace bb::serve
