// Crash-restart chaos campaign for the service path: the executable
// proof of the crash-consistency story in disk_cache.hpp.
//
// One campaign runs `cycles` seeded crash-restart loops.  Each cycle:
//
//   1. forks a real bb-served daemon with a seed-chosen BB_FAILPOINTS
//      spec arming one crash site (mid-atomic-write, post-rename,
//      store path, eviction path) or connection fault (dropped
//      send/recv), sometimes stacked with a torn-write fault;
//   2. drives concurrent client load (synthesize_bm requests with
//      request ids, fresh cache keys every cycle so the store path
//      actually runs) through Client::request_idempotent;
//   3. lets the failpoint kill the daemon — or SIGKILLs it from the
//      parent when the armed site never fired — mid-load;
//   4. restarts the daemon clean and asserts it recovers within the
//      budget (the open-time recovery pass runs before listening);
//   5. re-sends every unanswered request with its original id and
//      asserts every reply — in both phases — matches a ground-truth
//      solution computed in-process with minimalist::synthesize;
//   6. stops the daemon and runs DiskCache::verify_all() on the shared
//      cache directory, asserting zero invalid entries.
//
// The JSON artifact carries only seed-derived choices and pass
// booleans, so two same-seed runs of a passing campaign are
// byte-identical; nondeterministic runtime counts (observed crashes,
// retries, recovery repairs) appear in the text report only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bb::serve {

/// Schema of ChaosResult::to_json.
inline constexpr int kChaosSchemaVersion = 1;

struct ChaosOptions {
  /// Path to the bb-served binary to fork (required).
  std::string served_path;
  /// Scratch directory (created if missing): socket + cache dir live
  /// here.  The cache directory persists across the campaign's cycles —
  /// surviving corruption is exactly what the campaign is hunting.
  std::string work_dir;
  std::uint64_t seed = 1;
  int cycles = 50;
  int clients = 2;             ///< concurrent load threads per cycle
  int requests_per_client = 2;
  /// Restart-to-ready bound, covering the disk cache recovery pass.
  long long recovery_budget_ms = 10000;
  /// Disk tier size cap in MiB (small, so evictions happen mid-campaign
  /// and the eviction crash site has something to hit).
  int cache_max_mb = 1;
};

struct ChaosCycleReport {
  int index = 0;
  std::string fail_spec;      ///< seed-derived BB_FAILPOINTS value
  bool expected_crash = false;  ///< the armed site is a crash site
  bool integrity_ok = false;  ///< verify_all found zero bad entries
  bool results_ok = false;    ///< every reply matched ground truth
  bool recovery_ok = false;   ///< restart was ready within the budget
};

struct ChaosResult {
  std::uint64_t seed = 0;
  int cycles = 0;
  bool passed = false;
  std::vector<ChaosCycleReport> reports;

  // ---- nondeterministic campaign stats: text report only ----
  int crashes_observed = 0;  ///< daemon exits with the failpoint code
  int fallback_kills = 0;    ///< parent SIGKILLs (armed site never fired)
  std::uint64_t client_retries = 0;
  std::uint64_t replies_verified = 0;
  std::uint64_t recovered_tmp = 0;   ///< summed over recovery passes
  std::uint64_t quarantined = 0;
  std::uint64_t journal_applied = 0;
  double max_recovery_ms = 0.0;

  std::string to_text() const;
  /// Deterministic artifact: a passing campaign renders byte-identically
  /// for one seed (only seed-derived fields and pass booleans).
  std::string to_json() const;
};

/// Runs the campaign.  Throws std::runtime_error when the daemon binary
/// cannot be spawned at all; per-cycle failures are reported, not thrown.
ChaosResult run_chaos(const ChaosOptions& options);

}  // namespace bb::serve
