#include "src/serve/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/balsa/compile.hpp"
#include "src/bm/parse.hpp"
#include "src/bm/validate.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/analyze.hpp"
#include "src/flow/flow.hpp"
#include "src/incr/build.hpp"
#include "src/lint/sarif.hpp"
#include "src/netlist/verilog.hpp"
#include "src/obs/eventlog.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/protocol.hpp"
#include "src/techmap/cells.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/io.hpp"
#include "src/util/json.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/workbudget.hpp"

namespace bb::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// One request line above this is hostile, not a workload.
constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Poll interval: the latency bound on noticing stop().
constexpr int kPollMs = 100;

/// Replies remembered for idempotent retry, beyond which the oldest
/// completed ids are forgotten (a forgotten retry re-executes, which is
/// safe: synthesis is deterministic).
constexpr std::size_t kMaxDedupedReplies = 1024;

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {
    if (!options.cache_dir.empty()) {
      disk = std::make_unique<DiskCache>(options.cache_dir,
                                         options.cache_max_bytes);
      cache.set_backing_store(disk.get());
    }
    cache.set_max_entries(options.memory_cache_entries);
    cache.set_library_version(techmap::CellLibrary::ams035().fingerprint());
    jobs = options.jobs > 0
               ? static_cast<std::size_t>(options.jobs)
               : util::ThreadPool::recommended_jobs();
    if (!options.log_path.empty()) {
      event_log = std::make_unique<obs::EventLog>(options.log_path);
    }
    if (options.live_trace) {
      obs::Tracer::set_ring_capacity(options.span_ring);
      if (!obs::tracing_enabled()) {
        obs::Tracer::instance().enable();
        owns_tracer = true;
      }
    }
    listen_and_bind();
    pool = std::make_unique<util::ThreadPool>(jobs);
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (!options.socket_path.empty()) ::unlink(options.socket_path.c_str());
    if (owns_tracer) obs::Tracer::instance().disable();
  }

  // ---- state shared across connection threads ----
  ServerOptions options;
  std::size_t jobs = 1;
  minimalist::SynthCache cache;
  std::unique_ptr<DiskCache> disk;
  std::unique_ptr<util::ThreadPool> pool;
  int listen_fd = -1;
  std::atomic<bool> stop{false};
  std::atomic<int> inflight{0};
  std::unique_ptr<obs::EventLog> event_log;
  bool owns_tracer = false;
  /// Sequence behind server-minted trace ids ("srv-<seq>").
  std::atomic<std::uint64_t> trace_seq{0};

  /// Serializes incremental builds (manifest read-modify-write).
  std::mutex incr_mu;

  mutable std::mutex stats_mu;
  ServerStats stats;

  /// Per-connection state shared between the reader thread and the pool
  /// tasks answering its requests.
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
  };

  /// The idempotency table behind request-id dedupe.  `done` remembers
  /// the reply line of completed synthesis requests (bounded,
  /// oldest-forgotten); `pending` collects connections waiting on an
  /// id that is still executing, so a retry racing its original gets
  /// the original's reply instead of a second execution.
  struct DedupeTable {
    std::mutex mu;
    std::unordered_map<std::string, std::string> done;
    std::deque<std::string> done_order;
    std::unordered_map<std::string, std::vector<Conn*>> pending;
  };
  DedupeTable dedupe;

  void listen_and_bind() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.socket_path.empty() ||
        options.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve: socket path empty or longer than " +
                               std::to_string(sizeof(addr.sun_path) - 1) +
                               " bytes: '" + options.socket_path + "'");
    }
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      throw std::runtime_error("serve: cannot create socket: " +
                               std::string(std::strerror(errno)));
    }
    ::unlink(options.socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 64) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("serve: cannot listen on '" +
                               options.socket_path + "': " + reason);
    }
  }

  /// One increment, two sinks: the per-instance ServerStats snapshot
  /// (the "stats" op; tests assert exact per-server counts) and the
  /// process-wide registry counter (the "metrics" op / Prometheus).
  void bump(std::uint64_t ServerStats::* field, std::string_view counter) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats.*field += 1;
    }
    obs::Registry::global().counter(counter).add();
  }

  /// Latency histogram for one op.  `op` comes from the validated op
  /// set, so the name space is bounded.
  static obs::Histogram& op_histogram(const std::string& op) {
    return obs::Registry::global().histogram("serve.op." + op + ".us");
  }

  /// Appends one completion record to the JSONL event log (no-op when
  /// logging is off).  A request at least `slow_ms` slow gets its spans
  /// attached as a Chrome-trace exemplar.
  void log_request(const Request& req, std::string_view outcome,
                   const std::string& cache, double total_ms) {
    if (event_log == nullptr) return;
    std::string f = "\"trace_id\":\"" + util::json_escape(req.trace_id) + "\"";
    if (!req.id.empty()) {
      f += ",\"id\":\"" + util::json_escape(req.id) + "\"";
    }
    f += ",\"op\":\"" + util::json_escape(req.op) + "\"";
    f += ",\"outcome\":\"";
    f += outcome;
    f += '"';
    if (!cache.empty()) f += ",\"cache\":\"" + cache + "\"";
    f += ",\"duration_us\":" +
         std::to_string(static_cast<std::uint64_t>(total_ms * 1000.0));
    if (options.slow_ms >= 0 &&
        total_ms >= static_cast<double>(options.slow_ms) &&
        !req.trace_id.empty()) {
      f += ",\"slow\":true,\"spans\":";
      f += obs::Tracer::instance().collect_json(0, req.trace_id);
    }
    event_log->log(f);
  }

  void write_reply(Conn& conn, const std::string& line) {
    std::lock_guard<std::mutex> lock(conn.write_mu);
    util::send_all(conn.fd, line + "\n");
  }

  /// Finishes one pool task's bookkeeping on `conn`: the reader thread
  /// destroys the Conn as soon as outstanding hits 0, so the cv must
  /// not be touched after the mutex is released.
  void release_outstanding(Conn& conn) {
    std::lock_guard<std::mutex> lock(conn.mu);
    --conn.outstanding;
    conn.cv.notify_all();
  }

  // ---- request execution (runs on pool workers) ----

  /// What a synthesis op produced; rendered into a reply only after the
  /// run time has been measured, so timings_ms.run covers the execution.
  struct Outcome {
    bool ok = false;
    std::string result_json;           ///< when ok
    std::string cache;                 ///< cache-tier summary for the log
    std::string stage, rule, message;  ///< when !ok
  };

  Outcome execute(const Request& req) {
    Outcome out;
    try {
      out.result_json =
          req.op == "synthesize"
              ? execute_synthesize(req, &out.cache)
              : req.op == "synthesize_bm"
                    ? execute_synthesize_bm(req, &out.cache)
                    : req.op == "synthesize_incremental"
                          ? execute_synthesize_incremental(req, &out.cache)
                          : execute_analyze(req);
      out.ok = true;
      bump(&ServerStats::completed, "serve.completed");
      return out;
    } catch (const flow::LintError& e) {
      out.stage = "lint";
      out.rule = "LINT";
      out.message = e.what();
    } catch (const flow::FlowError& e) {
      out.stage = std::string(flow_stage_name(e.stage()));
      out.rule = e.diagnostic().rule;
      out.message = e.what();
    } catch (const bm::BmsParseError& e) {
      out.stage = "parse";
      out.rule = "BMS";
      out.message = e.what();
    } catch (const util::WorkBudgetExceeded& e) {
      out.stage = "synthesis";
      out.rule = "FL002";
      out.message = e.what();
    } catch (const std::exception& e) {
      out.stage = "internal";
      out.rule = "EX";
      out.message = e.what();
    }
    bump(&ServerStats::errors, "serve.errors");
    return out;
  }

  std::string execute_synthesize(const Request& req, std::string* cache_tier) {
    std::string source = req.source;
    if (!req.design.empty()) {
      try {
        source = designs::design(req.design).source;
      } catch (const std::out_of_range&) {
        throw std::runtime_error("unknown design '" + req.design + "'");
      }
    }
    const auto net = balsa::compile_source(source);
    flow::FlowOptions options =
        apply_options(req.options, this->options.default_work_budget);
    options.cache_instance = &cache;
    const auto result = flow::synthesize_control(net, options);
    // Whole-request cache summary for the event log: a flow touches one
    // cache entry per controller, so "hit"/"miss" are the pure cases and
    // "partial" the mix; "none" means the flow had nothing to look up.
    const std::uint64_t hits =
        result.timings.cache_hits + result.timings.cache_disk_hits;
    *cache_tier = result.timings.cache_misses == 0
                      ? (hits > 0 ? "hit" : "none")
                      : (hits > 0 ? "partial" : "miss");

    util::JsonWriter w;
    w.begin_object();
    if (!req.design.empty()) w.member("design", req.design);
    w.member("controllers",
             static_cast<std::uint64_t>(result.controllers.size()));
    w.member("area", result.area);
    w.member("degraded", static_cast<std::uint64_t>(result.failures.size()));
    w.key("cache").begin_object();
    w.member("hits", result.timings.cache_hits);
    w.member("disk_hits", result.timings.cache_disk_hits);
    w.member("misses", result.timings.cache_misses);
    w.end_object();
    w.member("report", flow::report(result));
    if (req.options.verilog) {
      w.member("verilog", netlist::to_verilog(result.gates));
    }
    w.key("timings").raw(result.timings.to_json());
    w.end_object();
    return w.str();
  }

  std::string execute_synthesize_bm(const Request& req,
                                    std::string* cache_tier) {
    const bm::Spec spec = bm::parse_bms(req.bms);
    const auto check = bm::validate(spec);
    if (!check.ok) {
      throw flow::FlowError(flow::FlowStage::kBmCompile, "FL001", spec.name,
                            "BM validation failed: " + check.errors[0]);
    }
    const auto mode = req.mode == "area" ? minimalist::SynthMode::kArea
                                         : minimalist::SynthMode::kSpeed;
    const long long budget_ops = req.options.work_budget
                                     ? *req.options.work_budget
                                     : options.default_work_budget;
    std::optional<util::WorkBudget> budget;
    if (budget_ops > 0) {
      budget.emplace(static_cast<std::uint64_t>(budget_ops));
    }
    minimalist::CacheTier tier = minimalist::CacheTier::kMiss;
    const bool use_cache = req.options.cache.value_or(true);
    const minimalist::SynthesizedController ctrl =
        use_cache ? minimalist::synthesize_cached(
                        spec, mode, cache, nullptr,
                        budget ? &*budget : nullptr, &tier)
                  : minimalist::synthesize(spec, mode,
                                           budget ? &*budget : nullptr);

    const char* tier_name = tier == minimalist::CacheTier::kMemory ? "hit"
                            : tier == minimalist::CacheTier::kDisk ? "disk-hit"
                            : use_cache                            ? "miss"
                                                                   : "off";
    *cache_tier = tier_name;

    util::JsonWriter w;
    w.begin_object();
    w.member("name", ctrl.name);
    w.member("products", static_cast<std::uint64_t>(ctrl.num_products()));
    w.member("literals", static_cast<std::uint64_t>(ctrl.num_literals()));
    w.member("cache", tier_name);
    w.member("sol", ctrl.to_sol());
    w.end_object();
    return w.str();
  }

  std::string execute_synthesize_incremental(const Request& req,
                                             std::string* cache_tier) {
    if (options.project_dir.empty()) {
      throw std::runtime_error(
          "incremental builds are disabled (start bb-served with "
          "--project-dir or BB_PROJECT_DIR)");
    }
    flow::FlowOptions fopts =
        apply_options(req.options, options.default_work_budget);
    fopts.cache_instance = &cache;
    // Builds serialize: a build is a read-modify-write of the project
    // manifest, and two concurrent builds of one project would race the
    // dirty-set computation.  One mutex across projects keeps it simple;
    // dirty-unit synthesis inside the build still fans out on the pool.
    incr::BuildResult result;
    {
      std::lock_guard<std::mutex> lock(incr_mu);
      result = incr::build(req.source,
                           options.project_dir + "/" + req.project, fopts);
    }
    *cache_tier = result.units_rebuilt == 0
                      ? "hit"
                      : (result.units_reused > 0 ? "partial" : "miss");

    util::JsonWriter w;
    w.begin_object();
    w.member("project", req.project);
    w.key("incremental").raw(result.to_json());
    w.member("report", result.report);
    if (req.options.verilog) w.member("verilog", result.verilog);
    w.end_object();
    return w.str();
  }

  std::string execute_analyze(const Request& req) {
    std::string source = req.source;
    std::string name = req.design;
    if (!req.design.empty()) {
      try {
        source = designs::design(req.design).source;
      } catch (const std::out_of_range&) {
        throw std::runtime_error("unknown design '" + req.design + "'");
      }
    }
    const auto net = balsa::compile_source(source);
    flow::FlowOptions options =
        apply_options(req.options, this->options.default_work_budget);
    options.analyze = !req.options.no_analyze;
    const flow::AnalyzeResult analyzed = flow::analyze_control(net, options);

    util::JsonWriter w;
    w.begin_object();
    if (!name.empty()) w.member("design", name);
    w.member("errors", static_cast<std::uint64_t>(
                           analyzed.report.count(lint::Severity::kError)));
    w.member("warnings", static_cast<std::uint64_t>(
                             analyzed.report.count(lint::Severity::kWarning)));
    w.key("skipped").begin_array();
    for (const std::string& s : analyzed.skipped) w.value(s);
    w.end_array();
    w.key("lint").raw(analyzed.report.to_json());
    if (req.options.sarif) {
      w.member("sarif", lint::to_sarif(analyzed.report, name));
    }
    w.end_object();
    return w.str();
  }

  // ---- per-connection reader ----

  void handle_line(Conn& conn, const std::string& line) {
    bump(&ServerStats::requests, "serve.requests");

    Request req;
    std::string error;
    if (!parse_request(line, &req, &error)) {
      bump(&ServerStats::bad_requests, "serve.bad_requests");
      log_request(req, "bad_request", {}, 0.0);
      write_reply(conn, reply_bad_request({req.id, req.trace_id}, error));
      return;
    }
    // Every request carries a trace context: the client's id when
    // supplied, a server-minted one otherwise.  The reply echoes it.
    if (req.trace_id.empty()) {
      req.trace_id =
          "srv-" + std::to_string(
                       trace_seq.fetch_add(1, std::memory_order_relaxed) + 1);
    }
    const ReplyIds ids{req.id, req.trace_id};

    // Cheap ops are answered inline on the reader thread, through the
    // same trace-context / per-op-histogram / event-log path as the
    // pool-executed synthesis ops.
    if (req.op == "ping" || req.op == "stats" || req.op == "metrics" ||
        req.op == "trace" || req.op == "shutdown") {
      obs::TraceContextScope trace_scope(req.trace_id);
      const auto inline_start = Clock::now();
      std::string reply;
      if (req.op == "ping") {
        reply = reply_ok_ping(ids);
      } else if (req.op == "stats") {
        reply = reply_ok_stats(ids, stats_json());
      } else if (req.op == "metrics") {
        std::string json, prometheus;
        const std::string* json_p = nullptr;
        const std::string* prometheus_p = nullptr;
        // One snapshot feeds both renderings so they cannot disagree.
        const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
        if (req.format != "prometheus") {
          json = obs::Registry::to_json(snap);
          json_p = &json;
        }
        if (req.format != "json") {
          prometheus = obs::Registry::to_prometheus(snap);
          prometheus_p = &prometheus;
        }
        reply = reply_ok_metrics(ids, json_p, prometheus_p);
      } else if (req.op == "trace") {
        reply = reply_ok_trace(
            ids, obs::Tracer::instance().collect_json(
                     static_cast<std::size_t>(req.last), req.filter));
      } else {
        reply = reply_ok_shutdown(ids);
        stop.store(true, std::memory_order_relaxed);
      }
      const double total_ms = ms_between(inline_start, Clock::now());
      op_histogram(req.op).record(
          static_cast<std::uint64_t>(total_ms * 1000.0));
      log_request(req, "ok", {}, total_ms);
      write_reply(conn, reply);
      return;
    }

    // Idempotent retry: a synthesis request carrying an id the server
    // has already answered (or is still executing) is served the
    // original's reply, never re-executed.  The check runs before
    // admission so a retry can never be shed while its original is in
    // flight.
    if (!req.id.empty()) {
      std::string replay;
      bool attached = false;
      {
        std::lock_guard<std::mutex> lock(dedupe.mu);
        const auto done_it = dedupe.done.find(req.id);
        if (done_it != dedupe.done.end()) {
          replay = done_it->second;
        } else if (const auto pending_it = dedupe.pending.find(req.id);
                   pending_it != dedupe.pending.end()) {
          pending_it->second.push_back(&conn);
          attached = true;
          std::lock_guard<std::mutex> conn_lock(conn.mu);
          ++conn.outstanding;
        }
      }
      if (!replay.empty() || attached) {
        bump(&ServerStats::deduped, "serve.deduped");
        log_request(req, "deduped", {}, 0.0);
        if (!replay.empty()) write_reply(conn, replay);
        return;
      }
    }

    // Synthesis ops go through admission control onto the pool.
    int expected = inflight.load(std::memory_order_relaxed);
    do {
      if (expected >= options.max_inflight) {
        bump(&ServerStats::overloaded, "serve.overloaded");
        log_request(req, "overloaded", {}, 0.0);
        write_reply(conn, reply_overloaded(ids));
        return;
      }
    } while (!inflight.compare_exchange_weak(expected, expected + 1,
                                             std::memory_order_relaxed));
    obs::Registry::global().gauge("serve.inflight").set(expected + 1);
    obs::Registry::global().gauge("serve.inflight_peak").update_max(
        expected + 1);

    {
      std::lock_guard<std::mutex> lock(conn.mu);
      ++conn.outstanding;
    }
    if (!req.id.empty()) {
      // Publish the id as in-flight so a retry arriving while this
      // execution runs attaches instead of re-executing.  (Two
      // originals racing the same id both execute — synthesis is
      // deterministic, so both produce the same reply.)
      std::lock_guard<std::mutex> lock(dedupe.mu);
      dedupe.pending.try_emplace(req.id);
    }
    const auto admitted = Clock::now();
    // The task owns a copy of the request; `conn` outlives it because
    // the reader thread waits for outstanding == 0 before closing.
    pool->submit([this, &conn, req = std::move(req), admitted] {
      const auto started = Clock::now();
      ReplyTimings timings;
      timings.queue_ms = ms_between(admitted, started);
      Outcome out;
      {
        // The request's trace context covers everything execute() does —
        // including per-controller spans on other pool workers, which
        // re-capture it at their own submit sites (see flow.cpp).  The
        // span adds its elapsed ms to run_ms at scope exit, before the
        // reply (which embeds the timings) is rendered below.
        obs::TraceContextScope trace_scope(req.trace_id);
        obs::Span span("serve.request", obs::kCatFlow, &timings.run_ms);
        span.arg("op", req.op);
        if (!req.design.empty()) span.arg("design", req.design);
        out = execute(req);
      }
      const ReplyIds ids{req.id, req.trace_id};
      const std::string reply =
          out.ok ? reply_ok_result(ids, out.result_json, timings)
                 : reply_error(ids, out.stage, out.rule, out.message,
                               &timings);
      obs::Registry::global().histogram("serve.queue_us").record(
          static_cast<std::uint64_t>(timings.queue_ms * 1000.0));
      obs::Registry::global().histogram("serve.run_us").record(
          static_cast<std::uint64_t>(timings.run_ms * 1000.0));
      op_histogram(req.op).record(static_cast<std::uint64_t>(
          (timings.queue_ms + timings.run_ms) * 1000.0));
      log_request(req, out.ok ? "ok" : "error", out.cache,
                  timings.queue_ms + timings.run_ms);
      // Idempotency bookkeeping: remember the reply for late retries
      // (bounded, oldest-forgotten) and hand it to every retry that
      // attached while this execution ran.
      std::vector<Conn*> waiters;
      if (!req.id.empty()) {
        std::lock_guard<std::mutex> lock(dedupe.mu);
        if (const auto it = dedupe.pending.find(req.id);
            it != dedupe.pending.end()) {
          waiters = std::move(it->second);
          dedupe.pending.erase(it);
        }
        if (dedupe.done.emplace(req.id, reply).second) {
          dedupe.done_order.push_back(req.id);
          while (dedupe.done_order.size() > kMaxDedupedReplies) {
            dedupe.done.erase(dedupe.done_order.front());
            dedupe.done_order.pop_front();
          }
        }
      }
      write_reply(conn, reply);
      for (Conn* waiter : waiters) write_reply(*waiter, reply);
      obs::Registry::global().gauge("serve.inflight").set(
          inflight.fetch_sub(1, std::memory_order_relaxed) - 1);
      // Release waiters before the owning conn: each waiter's reader
      // destroys its Conn as soon as its outstanding count hits 0.
      for (Conn* waiter : waiters) release_outstanding(*waiter);
      release_outstanding(conn);
    });
  }

  void serve_connection(int fd) {
    Conn conn;
    conn.fd = fd;
    std::string buffer;
    bool overflow = false;
    // Slow-trickle guard: the deadline by which the partial line held in
    // `buffer` must complete.  Re-armed whenever the buffer empties.
    Clock::time_point line_deadline{};
    while (!stop.load(std::memory_order_relaxed)) {
      pollfd pfd{fd, POLLIN, 0};
      const int ready = util::retry_poll(&pfd, 1, kPollMs);
      if (ready < 0) break;
      if (!buffer.empty() && options.line_timeout_ms > 0 &&
          Clock::now() >= line_deadline) {
        bump(&ServerStats::line_timeouts, "serve.line_timeouts");
        write_reply(conn,
                    reply_bad_request({}, "incomplete request line: no "
                                          "newline within the line timeout"));
        break;
      }
      if (ready == 0) continue;
      char chunk[65536];
      ssize_t n = util::retry_recv(fd, chunk, sizeof(chunk), 0);
      if (util::failpoint("serve.recv").kind != util::FailpointHit::Kind::kNone) {
        n = -1;  // injected connection fault
      }
      if (n <= 0) break;  // EOF or error: client is done
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = buffer.find('\n', start);
           nl != std::string::npos; nl = buffer.find('\n', start)) {
        const std::string line = buffer.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty()) handle_line(conn, line);
      }
      buffer.erase(0, start);
      if (buffer.empty()) {
        line_deadline = Clock::time_point{};
      } else if (start > 0 || line_deadline == Clock::time_point{}) {
        // A fresh partial line just started: arm its deadline.  A
        // trickler that never completes a line keeps the original arm.
        line_deadline =
            Clock::now() + std::chrono::milliseconds(options.line_timeout_ms);
      }
      if (buffer.size() > kMaxLineBytes) {
        write_reply(conn, reply_bad_request({}, "request line too large"));
        overflow = true;
        break;
      }
    }
    // Drain: every admitted request must flush its reply before the
    // socket closes, including during shutdown.
    {
      std::unique_lock<std::mutex> lock(conn.mu);
      conn.cv.wait(lock, [&conn] { return conn.outstanding == 0; });
    }
    (void)overflow;
    ::close(fd);
  }

  void run() {
    obs::Registry::global()
        .gauge("serve.max_inflight")
        .set(options.max_inflight);
    std::vector<std::thread> readers;
    while (!stop.load(std::memory_order_relaxed)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, kPollMs);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      if (util::failpoint("serve.accept").kind !=
          util::FailpointHit::Kind::kNone) {
        ::close(fd);  // injected accept fault: drop the connection
        continue;
      }
      bump(&ServerStats::connections, "serve.connections");
      readers.emplace_back([this, fd] { serve_connection(fd); });
    }
    // Graceful drain: stop accepting, let every connection finish its
    // in-flight work (readers wait on their own outstanding counts).
    ::close(listen_fd);
    listen_fd = -1;
    for (std::thread& t : readers) t.join();
    // Destroying the pool joins its workers after the queue drains; by
    // now every task has already run (readers waited), so this is quick.
    pool.reset();
  }

  std::string stats_json() const {
    ServerStats s;
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      s = stats;
    }
    const auto cache_stats = cache.stats();
    util::JsonWriter w;
    w.begin_object();
    w.key("server").begin_object();
    w.member("connections", s.connections);
    w.member("requests", s.requests);
    w.member("completed", s.completed);
    w.member("errors", s.errors);
    w.member("bad_requests", s.bad_requests);
    w.member("overloaded", s.overloaded);
    w.member("deduped", s.deduped);
    w.member("line_timeouts", s.line_timeouts);
    w.member("max_inflight", options.max_inflight);
    w.member("jobs", static_cast<std::uint64_t>(jobs));
    w.end_object();
    w.key("cache").begin_object();
    w.member("hits", cache_stats.hits);
    w.member("disk_hits", cache_stats.disk_hits);
    w.member("misses", cache_stats.misses);
    w.member("evictions", cache_stats.evictions);
    w.member("entries", static_cast<std::uint64_t>(cache_stats.entries));
    w.member("max_entries",
             static_cast<std::uint64_t>(cache_stats.max_entries));
    w.end_object();
    if (disk != nullptr) {
      const auto d = disk->stats();
      w.key("disk_cache").begin_object();
      w.member("root", disk->root());
      w.member("hits", d.hits);
      w.member("misses", d.misses);
      w.member("stores", d.stores);
      w.member("store_errors", d.store_errors);
      w.member("corrupt_dropped", d.corrupt_dropped);
      w.member("evictions", d.evictions);
      w.member("recovered_tmp", d.recovered_tmp);
      w.member("quarantined", d.quarantined);
      w.member("journal_applied", d.journal_applied);
      w.member("generation", disk->generation());
      w.member("entries", static_cast<std::uint64_t>(disk->entry_count()));
      w.member("max_bytes", disk->max_bytes());
      w.end_object();
    }
    w.end_object();
    return w.str();
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() = default;

void Server::run() { impl_->run(); }

void Server::stop() noexcept {
  impl_->stop.store(true, std::memory_order_relaxed);
}

bool Server::stopping() const noexcept {
  return impl_->stop.load(std::memory_order_relaxed);
}

const ServerOptions& Server::options() const { return impl_->options; }

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->stats;
}

std::string Server::stats_json() const { return impl_->stats_json(); }

minimalist::SynthCache& Server::cache() { return impl_->cache; }

DiskCache* Server::disk_cache() { return impl_->disk.get(); }

}  // namespace bb::serve
