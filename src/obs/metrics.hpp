// Process-wide metrics registry: named counters, gauges and log-bucketed
// histograms with a deterministic JSON snapshot.
//
// Instruments are cheap enough to leave permanently enabled: recording is
// one relaxed atomic RMW, and hot loops batch into a local counter and
// publish once at the end.  References returned by the registry are
// stable for the life of the process (reset() zeroes values but never
// destroys instruments), so call sites cache them:
//
//   static obs::Counter& hits =
//       obs::Registry::global().counter("minimalist.cache.hits");
//   hits.add();
//
// The snapshot is deterministic by construction: instruments render in
// name order and values are integers, so two runs that perform the same
// work (e.g. two same-seed serial flows) produce byte-identical
// snapshots.  Wall-clock-derived values (thread-pool wait/run times) only
// ever come from the parallel path, which the determinism contract
// excludes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bb::obs {

/// Format revision of the metrics snapshot (and of the trace artifact,
/// which shares the constant): bump when a field changes meaning.
inline constexpr int kSchemaVersion = 1;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value / high-water-mark instrument.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is higher than the current value.
  void update_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram over non-negative integers.  Bucket 0 holds the
/// value 0; bucket i >= 1 holds [2^(i-1), 2^i).  65 buckets cover the
/// whole uint64 range.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// A self-consistent point-in-time copy of one histogram.  `count` is
  /// derived from the bucket counts (never read separately), so it
  /// always equals their sum even when the capture races record() or
  /// reset(); `sum`/`min`/`max` are read after the buckets and may lag
  /// them by whatever record() calls were in flight.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t buckets[kBuckets] = {};

    /// Quantile estimate for q in [0, 1] by linear interpolation inside
    /// the log2 bucket holding the rank, clamped to the observed
    /// min/max.  Error bound: the estimate lies in the same
    /// power-of-two bucket as the true order statistic, so it is within
    /// a factor of 2 of the true value (exact for q at the extremes,
    /// which clamp to min/max, and exact when the bucket holds one
    /// distinct value); the interpolation assumes values are uniformly
    /// spread inside their bucket.
    double quantile(double q) const;
  };

  void record(std::uint64_t v);

  /// One-pass copy for snapshots and quantile math.
  Snapshot capture() const;
  /// capture().quantile(q) convenience for call sites that need one
  /// quantile; take one capture() when deriving several.
  double quantile(double q) const { return capture().quantile(q); }

  /// The bucket a value lands in: 0 for 0, otherwise std::bit_width(v).
  static std::size_t bucket_index(std::uint64_t v);
  /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_lower(std::size_t i);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  std::uint64_t min() const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// A point-in-time copy of every instrument, captured in one pass (see
/// Registry::snapshot for the consistency contract).  Both renderings —
/// deterministic JSON and Prometheus text exposition — derive from this
/// one structure, so they can never disagree about the values.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Named-instrument registry.  Lookup takes a mutex (cache the reference
/// in hot paths); recording is lock-free.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Captures every instrument in one pass under the registry mutex —
  /// the same mutex reset() takes — in name order.
  ///
  /// Consistency contract: a snapshot never observes a half-applied
  /// reset() (the two fully serialize on the mutex).  Recording is
  /// lock-free, so an add()/record() concurrent with the capture may
  /// appear in a later-read instrument but not an earlier one; within
  /// one histogram the bucket counts are authoritative (`count` is
  /// their sum by construction) and only `sum`/`min`/`max` can lag by
  /// the racing calls.  Values never move backwards between two
  /// snapshots unless reset() ran in between.
  RegistrySnapshot snapshot() const;

  /// Deterministic JSON rendering of a snapshot:
  /// {"schema_version":N,"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names in sorted order; histograms carry
  /// count/sum/min/max, p50/p90/p99 estimates, and the non-empty
  /// buckets.
  static std::string to_json(const RegistrySnapshot& snapshot);

  /// Prometheus text-exposition rendering of the same snapshot: names
  /// are prefixed "bb_" with non-alphanumerics mapped to '_';
  /// histograms become cumulative le-bucket series (+Inf, _sum,
  /// _count) with exact integer upper bounds.
  static std::string to_prometheus(const RegistrySnapshot& snapshot);

  /// to_json(snapshot()).
  std::string snapshot_json() const;
  /// to_prometheus(snapshot()).
  std::string prometheus_text() const;

  /// Zeroes every instrument (references stay valid).
  void reset();

  /// The process-wide registry all instrumentation records into.
  static Registry& global();

 private:
  struct Impl;
  Registry();
  ~Registry();
  Impl* impl_;
};

}  // namespace bb::obs
