#include "src/obs/trace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "src/util/io.hpp"
#include "src/util/json.hpp"
#include "src/obs/metrics.hpp"

namespace bb::obs {

namespace internal {
std::atomic<bool> g_tracing{false};
}  // namespace internal

namespace {

using Clock = Tracer::Clock;

/// Ring growth cap, adjustable via Tracer::set_ring_capacity.
std::atomic<std::size_t> g_ring_capacity{65536};

/// The thread's ambient trace context (see TraceContextScope).
thread_local std::string g_trace_id;  // NOLINT(cert-err58-cpp)

struct Event {
  const char* name;
  const char* cat;
  double ts_us;
  double dur_us;
  std::uint32_t tid;
  std::string trace_id;  ///< ambient context at record time; may be empty
  std::string args_json;
};

/// Per-thread ring.  Only the owning thread records; the flush thread
/// copies under the same mutex, so a record racing a flush is safe (the
/// uncontended lock is a few nanoseconds, far below span granularity).
struct ThreadRing {
  std::mutex mu;
  std::vector<Event> events;  ///< grows to the capacity cap, then wraps
  std::size_t next = 0;       ///< overwrite cursor once full
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;

  void push(Event e) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < g_ring_capacity.load(std::memory_order_relaxed)) {
      events.push_back(std::move(e));
    } else {
      events[next] = std::move(e);
      next = (next + 1) % events.size();
      ++dropped;
    }
  }
};

struct TracerState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 0;
  Clock::time_point epoch = Clock::now();
};

TracerState& state() {
  static TracerState s;
  return s;
}

ThreadRing& local_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    TracerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    r->tid = ++s.next_tid;
    s.rings.push_back(r);
    return r;
  }();
  return *ring;
}

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Renders one Chrome trace-event document from already-merged events
/// (the single emitter behind flush_json and collect_json).
std::string render_trace_json(const std::vector<Event>& merged,
                              std::uint64_t dropped) {
  std::vector<std::uint32_t> tids;
  for (const Event& e : merged) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());

  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kSchemaVersion);
  w.member("displayTimeUnit", "ms");
  w.member("dropped_events", dropped);
  w.key("traceEvents").begin_array();
  w.begin_object()
      .member("ph", "M")
      .member("name", "process_name")
      .member("pid", 1)
      .member("tid", std::uint64_t{0})
      .key("args")
      .begin_object()
      .member("name", "bb")
      .end_object()
      .end_object();
  for (const std::uint32_t tid : tids) {
    w.begin_object()
        .member("ph", "M")
        .member("name", "thread_name")
        .member("pid", 1)
        .member("tid", std::uint64_t{tid})
        .key("args")
        .begin_object()
        .member("name", "thread " + std::to_string(tid))
        .end_object()
        .end_object();
  }
  for (const Event& e : merged) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.cat);
    w.member("ph", "X");
    w.member("ts", e.ts_us);
    w.member("dur", e.dur_us);
    w.member("pid", 1);
    w.member("tid", std::uint64_t{e.tid});
    if (!e.args_json.empty() || !e.trace_id.empty()) {
      std::string args = e.args_json;
      if (!e.trace_id.empty()) {
        if (!args.empty()) args += ',';
        args += "\"trace_id\":\"" + util::json_escape(e.trace_id) + "\"";
      }
      w.key("args").raw("{" + args + "}");
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace

const std::string& current_trace_id() { return g_trace_id; }

TraceContextScope::TraceContextScope(std::string trace_id)
    : previous_(std::move(g_trace_id)) {
  g_trace_id = std::move(trace_id);
}

TraceContextScope::~TraceContextScope() { g_trace_id = std::move(previous_); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  TracerState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (internal::g_tracing.load(std::memory_order_relaxed)) return;
    for (auto& ring : s.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      ring->events.clear();
      ring->next = 0;
      ring->dropped = 0;
    }
    s.epoch = Clock::now();
  }
  internal::g_tracing.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  internal::g_tracing.store(false, std::memory_order_relaxed);
}

double Tracer::to_us(Clock::time_point tp) const {
  return us_between(state().epoch, tp);
}

void Tracer::record(const char* name, const char* cat,
                    Clock::time_point start, Clock::time_point end,
                    std::string args_json) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ts_us = to_us(start);
  e.dur_us = us_between(start, end);
  ThreadRing& ring = local_ring();
  e.tid = ring.tid;
  e.trace_id = g_trace_id;
  e.args_json = std::move(args_json);
  ring.push(std::move(e));
}

std::string Tracer::flush_json() {
  std::vector<Event> merged;
  std::uint64_t dropped = 0;
  {
    TracerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& ring : s.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      // Ring order: oldest first (the slice [next, end) precedes
      // [0, next) once the ring has wrapped).
      for (std::size_t i = 0; i < ring->events.size(); ++i) {
        const std::size_t at = (ring->next + i) % ring->events.size();
        merged.push_back(std::move(ring->events[at]));
      }
      dropped += ring->dropped;
      ring->events.clear();
      ring->next = 0;
      ring->dropped = 0;
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  return render_trace_json(merged, dropped);
}

std::string Tracer::collect_json(std::size_t last, std::string_view trace_id) {
  std::vector<Event> merged;
  std::uint64_t dropped = 0;
  {
    TracerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& ring : s.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      for (std::size_t i = 0; i < ring->events.size(); ++i) {
        const std::size_t at = (ring->next + i) % ring->events.size();
        const Event& e = ring->events[at];
        if (!trace_id.empty() && e.trace_id != trace_id) continue;
        merged.push_back(e);  // copy: the ring keeps its events
      }
      dropped += ring->dropped;
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  if (last > 0 && merged.size() > last) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<std::ptrdiff_t>(last));
  }
  return render_trace_json(merged, dropped);
}

void Tracer::set_ring_capacity(std::size_t events) {
  events = std::min<std::size_t>(std::max<std::size_t>(events, 1024),
                                 1u << 20);
  g_ring_capacity.store(events, std::memory_order_relaxed);
}

std::size_t Tracer::ring_capacity() {
  return g_ring_capacity.load(std::memory_order_relaxed);
}

void Tracer::write(const std::string& path) {
  util::write_file_atomic(path, flush_json() + "\n");
}

Span::Span(const char* name, const char* cat, double* accumulate_ms)
    : name_(name), cat_(cat), accumulate_ms_(accumulate_ms) {
  tracing_ = tracing_enabled();
  timing_ = tracing_ || accumulate_ms_ != nullptr;
  if (timing_) start_ = Tracer::Clock::now();
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!tracing_ || done_) return;
  if (!args_json_.empty()) args_json_ += ',';
  args_json_ += '"';
  args_json_ += util::json_escape(key);
  args_json_ += "\":\"";
  args_json_ += util::json_escape(value);
  args_json_ += '"';
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (!tracing_ || done_) return;
  if (!args_json_.empty()) args_json_ += ',';
  args_json_ += '"';
  args_json_ += util::json_escape(key);
  args_json_ += "\":";
  args_json_ += std::to_string(value);
}

double Span::finish() {
  if (done_) return 0.0;
  done_ = true;
  if (!timing_) return 0.0;
  const auto end = Tracer::Clock::now();
  const double ms = us_between(start_, end) / 1000.0;
  if (accumulate_ms_ != nullptr) *accumulate_ms_ += ms;
  if (tracing_) {
    Tracer::instance().record(name_, cat_, start_, end,
                              std::move(args_json_));
  }
  return ms;
}

}  // namespace bb::obs
