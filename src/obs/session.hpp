// Process-level wiring for the observability subsystem: one RAII object
// that turns the tracer on, hooks the thread pool, and writes the trace
// and metrics artifacts when it goes out of scope.
//
// Tools construct a Session near the top of main():
//
//   obs::Session session(obs::env_or(trace_flag, "BB_TRACE"),
//                        obs::env_or(metrics_flag, "BB_METRICS"));
//
// Empty paths disable the corresponding artifact.  Sessions nest: only
// the session that actually enabled tracing writes and disables it, so a
// library call that opens its own Session (e.g. synthesize_control with
// FlowOptions::trace_path) is inert when an outer session already owns
// the trace.
#pragma once

#include <string>

namespace bb::obs {

/// `value` when non-empty, otherwise the environment variable `env_var`
/// (empty when unset).
std::string env_or(std::string value, const char* env_var);

/// Registers the util::ThreadPool task observer that feeds the pool.*
/// metrics and per-task trace spans.  Idempotent.
void install_thread_pool_instrumentation();

class Session {
 public:
  /// Enables tracing when `trace_path` is non-empty and no other session
  /// owns the trace.  `metrics_path` selects where the metrics snapshot
  /// goes at destruction (empty = nowhere).
  Session(std::string trace_path, std::string metrics_path);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// True when this session enabled tracing (and will write the trace).
  bool owns_trace() const { return owns_trace_; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool owns_trace_ = false;
};

}  // namespace bb::obs
