#include "src/obs/session.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/io.hpp"
#include "src/util/thread_pool.hpp"

namespace bb::obs {

namespace {

void pool_task_observer(const util::ThreadPool::TaskStats& stats) {
  Registry& registry = Registry::global();
  static Counter& tasks = registry.counter("pool.tasks");
  static Histogram& wait_us = registry.histogram("pool.queue_wait_us");
  static Histogram& run_us = registry.histogram("pool.run_us");
  const double waited =
      std::chrono::duration<double, std::micro>(stats.run_start -
                                                stats.enqueued)
          .count();
  const double ran = std::chrono::duration<double, std::micro>(
                         stats.run_end - stats.run_start)
                         .count();
  tasks.add();
  wait_us.record(waited <= 0 ? 0 : static_cast<std::uint64_t>(waited));
  run_us.record(ran <= 0 ? 0 : static_cast<std::uint64_t>(ran));
  if (tracing_enabled()) {
    Tracer::instance().record(
        "pool.task", kCatPool, stats.run_start, stats.run_end,
        "\"queue_wait_us\":" + std::to_string(static_cast<std::uint64_t>(
                                   waited <= 0 ? 0 : waited)));
  }
}

}  // namespace

std::string env_or(std::string value, const char* env_var) {
  if (!value.empty()) return value;
  if (const char* env = std::getenv(env_var)) return env;
  return {};
}

void install_thread_pool_instrumentation() {
  util::ThreadPool::set_task_observer(&pool_task_observer);
}

Session::Session(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  install_thread_pool_instrumentation();
  if (!trace_path_.empty() && !tracing_enabled()) {
    Tracer::instance().enable();
    owns_trace_ = true;
  }
}

Session::~Session() {
  // Artifact writes must not throw out of a destructor; a failed write
  // is reported and swallowed (the run's primary outputs still matter).
  if (owns_trace_) {
    Tracer::instance().disable();
    try {
      Tracer::instance().write(trace_path_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "obs: cannot write trace '%s': %s\n",
                   trace_path_.c_str(), e.what());
    }
  }
  if (!metrics_path_.empty()) {
    try {
      util::write_file_atomic(metrics_path_,
                              Registry::global().snapshot_json() + "\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "obs: cannot write metrics '%s': %s\n",
                   metrics_path_.c_str(), e.what());
    }
  }
}

}  // namespace bb::obs
