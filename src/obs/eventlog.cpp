#include "src/obs/eventlog.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "src/util/io.hpp"

namespace bb::obs {

struct EventLog::Impl {
  std::mutex mu;
  int fd = -1;
  std::atomic<std::uint64_t> write_errors{0};
};

EventLog::EventLog(const std::string& path) : path_(path), impl_(new Impl) {
  impl_->fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                     0644);
  if (impl_->fd < 0) {
    delete impl_;
    throw std::runtime_error("cannot open event log: " + path);
  }
}

EventLog::~EventLog() {
  if (impl_->fd >= 0) ::close(impl_->fd);
  delete impl_;
}

void EventLog::log(std::string_view fragment) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::string line = "{\"ts_ms\":" + std::to_string(ms);
  if (!fragment.empty()) {
    line += ',';
    line += fragment;
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(impl_->mu);
  const ssize_t n = util::retry_write(impl_->fd, line.data(), line.size());
  if (n != static_cast<ssize_t>(line.size())) {
    impl_->write_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t EventLog::write_errors() const {
  return impl_->write_errors.load(std::memory_order_relaxed);
}

}  // namespace bb::obs
