#include "src/obs/metrics.hpp"

#include <bit>
#include <map>
#include <memory>
#include <mutex>

#include "src/util/json.hpp"

namespace bb::obs {

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::size_t Histogram::bucket_index(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_lower(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: iteration in name order makes the snapshot deterministic;
  // unique_ptr keeps instrument addresses stable across rehash-free
  // inserts and reset().
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kSchemaVersion);

  w.key("counters").begin_object();
  for (const auto& [name, c] : impl_->counters) w.member(name, c->value());
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : impl_->gauges) w.member(name, g->value());
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : impl_->histograms) {
    w.key(name).begin_object();
    w.member("count", h->count());
    w.member("sum", h->sum());
    w.member("min", h->min());
    w.member("max", h->max());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      w.begin_object();
      w.member("ge", Histogram::bucket_lower(i));
      w.member("count", n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace bb::obs
