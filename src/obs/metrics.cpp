#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

#include "src/util/json.hpp"

namespace bb::obs {

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::size_t Histogram::bucket_index(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_lower(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

Histogram::Snapshot Histogram::capture() const {
  Snapshot s;
  // Buckets first: `count` is their sum, so it can never disagree with
  // them, whatever record()/reset() calls race this loop.
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min();
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Cumulative-count convention (as Prometheus histogram_quantile): the
  // quantile lives in the first bucket whose cumulative count reaches
  // q * count, so a p99 over two samples lands on the larger one
  // instead of rounding down to the smaller.
  const double target = q * static_cast<double>(count);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(below + n) >= target) {
      if (i == 0) return 0.0;  // bucket 0 holds exactly the value 0
      // Interpolate inside [lower, 2*lower) assuming uniform spread.
      const double lower = static_cast<double>(bucket_lower(i));
      const double frac =
          (target - static_cast<double>(below)) / static_cast<double>(n);
      double estimate = lower + frac * lower;
      // The observed extremes tighten the bucket bound: extreme q
      // become exact, single-value histograms collapse to the value.
      estimate = std::min(estimate, static_cast<double>(max));
      estimate = std::max(estimate, static_cast<double>(min));
      return estimate;
    }
    below += n;
  }
  return static_cast<double>(max);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: iteration in name order makes the snapshot deterministic;
  // unique_ptr keeps instrument addresses stable across rehash-free
  // inserts and reset().
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  RegistrySnapshot s;
  s.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) {
    s.gauges.emplace_back(name, g->value());
  }
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    s.histograms.emplace_back(name, h->capture());
  }
  return s;
}

std::string Registry::to_json(const RegistrySnapshot& snapshot) {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kSchemaVersion);

  w.key("counters").begin_object();
  for (const auto& [name, v] : snapshot.counters) w.member(name, v);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, v] : snapshot.gauges) w.member(name, v);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name).begin_object();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.member("min", h.min);
    w.member("max", h.max);
    w.member("p50", h.quantile(0.50));
    w.member("p90", h.quantile(0.90));
    w.member("p99", h.quantile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.buckets[i];
      if (n == 0) continue;
      w.begin_object();
      w.member("ge", Histogram::bucket_lower(i));
      w.member("count", n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

namespace {

/// Metric-name mangling for the Prometheus exposition: "serve.op.x.us"
/// -> "bb_serve_op_x_us".
std::string prometheus_name(std::string_view name) {
  std::string out = "bb_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string Registry::to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " histogram\n";
    // Bucket i holds integer values in [2^(i-1), 2^i), so the exact
    // inclusive upper bound of its cumulative series is 2^i - 1 (and 0
    // for bucket 0).  Empty tail buckets are elided; +Inf always closes
    // the series.
    std::size_t highest = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] != 0) highest = i;
    }
    std::uint64_t cumulative = 0;
    if (h.count > 0) {
      for (std::size_t i = 0; i <= highest; ++i) {
        cumulative += h.buckets[i];
        const std::uint64_t le =
            i == 0 ? 0
                   : (i >= 64 ? UINT64_MAX
                              : (std::uint64_t{1} << i) - 1);
        out += n + "_bucket{le=\"" + std::to_string(le) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string Registry::snapshot_json() const { return to_json(snapshot()); }

std::string Registry::prometheus_text() const {
  return to_prometheus(snapshot());
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace bb::obs
