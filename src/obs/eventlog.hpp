// Append-only JSONL operational event log for the service tier.
//
// One JSON object per line, written with a single O_APPEND write() so
// concurrent writers (multiple reader threads completing requests) never
// interleave mid-record — POSIX guarantees the append offset is applied
// atomically per write, and records are far below PIPE_BUF-scale sizes
// anyway because each write also holds the log mutex.  The log is an
// operational artifact, not a metrics store: every record carries a
// wall-clock `ts_ms` (unlike the monotonic trace clock) so entries can
// be correlated with external systems, plus whatever fragment the caller
// supplies (trace_id, op, outcome, cache tier, duration, slow-request
// span exemplars — see src/serve/server.cpp).
//
// Failure policy: the log must never take the service down.  Open errors
// throw (a bad --log path is an operator mistake caught at startup), but
// write errors after that are counted (`write_errors()`) and dropped.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bb::obs {

class EventLog {
 public:
  /// Opens (creating if needed) `path` for appending.  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit EventLog(const std::string& path);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one record: `{"ts_ms":<now>,<fragment>}\n`.  `fragment` is
  /// a pre-rendered JSON object fragment without braces, e.g.
  /// `"op":"ping","ok":true`.  Thread-safe; errors are dropped and
  /// counted.
  void log(std::string_view fragment);

  /// Writes dropped due to I/O errors since construction.
  std::uint64_t write_errors() const;

  const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::string path_;
  Impl* impl_;
};

}  // namespace bb::obs
