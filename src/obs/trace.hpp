// Low-overhead span tracer emitting Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Spans are RAII scopes recorded onto thread-local ring buffers; the
// flush merges every thread's ring, sorts by start time, and renders one
// "ph":"X" complete event per span.  When tracing is disabled the Span
// constructor is a single relaxed atomic load and a couple of pointer
// stores — no clock read, no allocation — so instrumentation can stay in
// every hot path permanently.  A span constructed with an accumulate
// pointer additionally adds its elapsed milliseconds to that double on
// completion regardless of whether tracing is on; the flow uses this to
// derive StageTimings directly from its spans.
//
// Ring buffers are bounded (ring_capacity() events per thread); once a
// ring wraps, the oldest events are overwritten and the flush reports how
// many were dropped.  Buffers outlive their threads (the tracer keeps
// them alive until the next flush), so pool workers can exit freely.
//
// Request-scoped tracing: a thread carries an ambient trace context (a
// trace id string installed with TraceContextScope).  Every span recorded
// while the scope is alive is tagged with that id, so all the work done
// on behalf of one service request — dispatch, cache lookups, the flow
// stages, per-controller synthesis on pool workers — shares its id and
// can be pulled out of the ring as one trace.  Propagation across
// threads is explicit and by value: capture current_trace_id() where the
// task is submitted, install a scope inside the worker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bb::obs {

namespace internal {
extern std::atomic<bool> g_tracing;
}  // namespace internal

/// True while a trace is being collected.  One relaxed atomic load.
inline bool tracing_enabled() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}

// ---- ambient trace context ----

/// The trace id installed on this thread by the innermost live
/// TraceContextScope (empty when none).  Spans recorded on this thread
/// carry it; capture it here when handing work to another thread.
const std::string& current_trace_id();

/// RAII scope installing `trace_id` as the thread's ambient trace
/// context; the previous value is restored on destruction, so nested
/// scopes (a request executing inside an instrumented batch) behave like
/// a stack.
class TraceContextScope {
 public:
  explicit TraceContextScope(std::string trace_id);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::string previous_;
};

/// Span categories (the "cat" field trace viewers group/filter by).
inline constexpr const char* kCatFlow = "flow";
inline constexpr const char* kCatSynth = "synth";
inline constexpr const char* kCatLogic = "logic";
inline constexpr const char* kCatSim = "sim";
inline constexpr const char* kCatPool = "pool";
inline constexpr const char* kCatFault = "fault";
inline constexpr const char* kCatIncr = "incr";

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts collecting (clears previous events, re-arms the epoch).
  /// No-op when already enabled.
  void enable();
  /// Stops collecting.  Events already recorded stay until flushed.
  void disable();
  bool enabled() const { return tracing_enabled(); }

  /// Drains every thread's ring and renders the Chrome trace-event
  /// document: {"schema_version":N,"displayTimeUnit":"ms",
  /// "dropped_events":N,"traceEvents":[...]}.
  std::string flush_json();

  /// Live, non-draining view of the rings for the service tier's
  /// `trace` op: copies the recorded spans (events stay in place for
  /// the next query or the final flush), keeps only those whose trace
  /// id equals `trace_id` when it is non-empty, and renders the newest
  /// `last` spans (0 = all) as the same Chrome trace-event document.
  std::string collect_json(std::size_t last = 0,
                           std::string_view trace_id = {});

  /// Per-thread ring capacity (events), clamped to [1024, 1M].  Applies
  /// to how much further any ring may grow — rings never shrink, a ring
  /// already past a lowered cap simply wraps at its current size.  The
  /// service tier sizes its span ring with this before enabling tracing
  /// (DESIGN.md §16 discusses the sizing tradeoff).
  static void set_ring_capacity(std::size_t events);
  static std::size_t ring_capacity();

  /// flush_json() written atomically to `path`.
  void write(const std::string& path);

  /// Records a completed span with explicit endpoints (used by observers
  /// that measure outside a scope, e.g. the thread-pool task hook).
  /// `args_json` is a pre-rendered JSON object fragment or empty.
  void record(const char* name, const char* cat, Clock::time_point start,
              Clock::time_point end, std::string args_json);

  /// Microseconds from the trace epoch to `tp`.
  double to_us(Clock::time_point tp) const;

  static Tracer& instance();

 private:
  Tracer() = default;
};

/// An RAII traced scope.  `name` and `cat` must be string literals (they
/// are stored as pointers).  When `accumulate_ms` is non-null the span
/// always measures time and adds its elapsed milliseconds to the target
/// on completion, even with tracing disabled.
class Span {
 public:
  explicit Span(const char* name, const char* cat = kCatFlow,
                double* accumulate_ms = nullptr);
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording a trace event (tracing was enabled
  /// at construction).
  bool recording() const { return tracing_; }

  /// Attaches a key/value pair to the trace event (up to four).  No-op —
  /// and allocation-free — unless the span is recording.
  void arg(std::string_view key, std::string_view value);
  /// Integer convenience overload.
  void arg(std::string_view key, std::uint64_t value);

  /// Ends the span now: records the trace event, updates the accumulate
  /// target, and returns the elapsed milliseconds (0.0 when the span was
  /// not timing).  Idempotent; the destructor calls it.
  double finish();

 private:
  const char* name_;
  const char* cat_;
  double* accumulate_ms_;
  Tracer::Clock::time_point start_;
  bool timing_ = false;   ///< clock was read at construction
  bool tracing_ = false;  ///< event will be recorded at finish
  bool done_ = false;
  std::string args_json_;  ///< accumulated fragment: "k":"v","k2":"v2"
};

}  // namespace bb::obs
