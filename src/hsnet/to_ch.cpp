#include "src/hsnet/to_ch.hpp"

#include <stdexcept>

namespace bb::hsnet {

namespace {

using ch::Activity;
using ch::ExprKind;
using ch::ExprPtr;

/// Right-nested sequencing of active channels: (seq c1 (seq c2 ... cn)).
ExprPtr seq_chain(const std::vector<std::string>& channels, std::size_t from) {
  if (from + 1 == channels.size()) {
    return ch::ptop(Activity::kActive, channels[from]);
  }
  return ch::seq(ch::ptop(Activity::kActive, channels[from]),
                 seq_chain(channels, from + 1));
}

/// Right-nested parallel composition via enc-middle (fork style).
ExprPtr par_chain(const std::vector<std::string>& channels, std::size_t from) {
  if (from + 1 == channels.size()) {
    return ch::ptop(Activity::kActive, channels[from]);
  }
  return ch::enc_middle(ch::ptop(Activity::kActive, channels[from]),
                        par_chain(channels, from + 1));
}

/// Right-nested mutex: (mutex e1 (mutex e2 ... en)), built bottom-up.
ExprPtr mutex_of(std::vector<ExprPtr> alternatives) {
  ExprPtr out = std::move(alternatives.back());
  for (std::size_t i = alternatives.size() - 1; i-- > 0;) {
    out = ch::mutex(std::move(alternatives[i]), std::move(out));
  }
  return out;
}

/// Right-nested synchronization of passive channels around a tail.
ExprPtr synch_chain(const std::vector<std::string>& passives,
                    std::size_t from, ExprPtr tail) {
  if (from == passives.size()) return tail;
  return ch::enc_middle(
      ch::ptop(Activity::kPassive, passives[from]),
      synch_chain(passives, from + 1, std::move(tail)));
}

}  // namespace

ch::Program to_ch(const Component& c) {
  switch (c.kind) {
    case ComponentKind::kLoop: {
      // Activated once; then handshakes the output forever.
      return ch::Program(
          c.display_name(),
          ch::enc_early(ch::ptop(Activity::kPassive, c.ports.at(0)),
                        ch::rep(ch::ptop(Activity::kActive, c.ports.at(1)))));
    }
    case ComponentKind::kSequence: {
      std::vector<std::string> outs(c.ports.begin() + 1, c.ports.end());
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_early(ch::ptop(Activity::kPassive, c.ports.at(0)),
                                seq_chain(outs, 0))));
    }
    case ComponentKind::kConcur: {
      std::vector<std::string> outs(c.ports.begin() + 1, c.ports.end());
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_middle(ch::ptop(Activity::kPassive, c.ports.at(0)),
                                 par_chain(outs, 0))));
    }
    case ComponentKind::kCall: {
      // n passive clients, one active server (Section 3.4).
      std::vector<ExprPtr> alts;
      for (std::size_t i = 0; i + 1 < c.ports.size(); ++i) {
        alts.push_back(
            ch::enc_early(ch::ptop(Activity::kPassive, c.ports[i]),
                          ch::ptop(Activity::kActive, c.ports.back())));
      }
      if (alts.size() == 1) {
        // Degenerate 1-way call: plain enclosure.
        return ch::Program(c.display_name(), ch::rep(std::move(alts[0])));
      }
      return ch::Program(c.display_name(), ch::rep(mutex_of(std::move(alts))));
    }
    case ComponentKind::kDecisionWait: {
      // activate, in1..inn, out1..outn (Section 4.1).
      const int n = c.ways;
      std::vector<ExprPtr> alts;
      for (int i = 0; i < n; ++i) {
        alts.push_back(
            ch::enc_early(ch::ptop(Activity::kPassive, c.ports.at(1 + i)),
                          ch::ptop(Activity::kActive, c.ports.at(1 + n + i))));
      }
      ExprPtr body = alts.size() == 1 ? std::move(alts[0])
                                      : mutex_of(std::move(alts));
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_early(ch::ptop(Activity::kPassive, c.ports.at(0)),
                                std::move(body))));
    }
    case ComponentKind::kWhile: {
      // activate, guard, body: the guard answers on a 2-way mux-ack
      // channel; ack1 = condition true (run body), ack2 = false (exit).
      std::vector<ch::MuxBranch> branches;
      branches.push_back(ch::MuxBranch{
          ExprKind::kSeq, ch::ptop(Activity::kActive, c.ports.at(2))});
      branches.push_back(ch::MuxBranch{ExprKind::kSeq, ch::brk()});
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_early(
              ch::ptop(Activity::kPassive, c.ports.at(0)),
              ch::rep(ch::mux_ack(c.ports.at(1), std::move(branches))))));
    }
    case ComponentKind::kCase: {
      // activate, select, out1..outn: the select mux-ack channel picks one
      // output to handshake.
      std::vector<ch::MuxBranch> branches;
      for (std::size_t i = 2; i < c.ports.size(); ++i) {
        branches.push_back(ch::MuxBranch{
            ExprKind::kSeq, ch::ptop(Activity::kActive, c.ports[i])});
      }
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_early(
              ch::ptop(Activity::kPassive, c.ports.at(0)),
              ch::mux_ack(c.ports.at(1), std::move(branches)))));
    }
    case ComponentKind::kSynch: {
      // in1..inn synchronized, then the active output handshake completes
      // inside (C-element style, via nested enc-middle).
      std::vector<std::string> ins(c.ports.begin(), c.ports.end() - 1);
      return ch::Program(
          c.display_name(),
          ch::rep(synch_chain(ins, 0,
                              ch::ptop(Activity::kActive, c.ports.back()))));
    }
    case ComponentKind::kPassivator: {
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_middle(ch::ptop(Activity::kPassive, c.ports.at(0)),
                                 ch::ptop(Activity::kPassive, c.ports.at(1)))));
    }
    case ComponentKind::kContinue: {
      // Acknowledge the activation immediately; clusters away entirely
      // under Activation Channel Removal (the body is void).
      return ch::Program(
          c.display_name(),
          ch::rep(ch::enc_early(ch::ptop(Activity::kPassive, c.ports.at(0)),
                                ch::void_channel())));
    }
    default:
      throw std::invalid_argument("to_ch: " + c.display_name() +
                                  " is a datapath component");
  }
}

std::vector<ch::Program> control_programs(const Netlist& netlist) {
  std::vector<ch::Program> out;
  for (const int id : netlist.control_ids()) {
    out.push_back(to_ch(netlist.component(id)));
  }
  return out;
}

}  // namespace bb::hsnet
