#include "src/hsnet/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace bb::hsnet {

int Netlist::add(Component component) {
  component.id = static_cast<int>(components_.size());
  for (const std::string& port : component.ports) {
    connect(component.id, port);
  }
  components_.push_back(std::move(component));
  return components_.back().id;
}

void Netlist::declare_channel(const std::string& channel, int width,
                              bool external) {
  ChannelInfo& info = channels_[channel];
  info.name = channel;
  info.width = std::max(info.width, width);
  info.external = info.external || external;
}

void Netlist::connect(int id, const std::string& channel) {
  ChannelInfo& info = channels_[channel];
  info.name = channel;
  if (std::find(info.endpoints.begin(), info.endpoints.end(), id) ==
      info.endpoints.end()) {
    info.endpoints.push_back(id);
  }
}

void Netlist::rename_channel(const std::string& from, const std::string& to) {
  const auto it = channels_.find(from);
  if (it == channels_.end()) {
    throw std::invalid_argument("rename_channel: unknown channel " + from);
  }
  ChannelInfo info = it->second;
  channels_.erase(it);
  info.name = to;
  ChannelInfo& slot = channels_[to];
  // Merge with a pre-declared record (widths, external flag, endpoints).
  slot.name = to;
  slot.width = std::max(slot.width, info.width);
  slot.external = slot.external || info.external;
  for (const int id : info.endpoints) {
    if (std::find(slot.endpoints.begin(), slot.endpoints.end(), id) ==
        slot.endpoints.end()) {
      slot.endpoints.push_back(id);
    }
  }
  for (Component& c : components_) {
    for (std::string& port : c.ports) {
      if (port == from) port = to;
    }
  }
}

const ChannelInfo* Netlist::channel(const std::string& name) const {
  const auto it = channels_.find(name);
  return it == channels_.end() ? nullptr : &it->second;
}

std::vector<std::string> Netlist::internal_control_channels() const {
  std::vector<std::string> out;
  for (const auto& [name, info] : channels_) {
    if (info.external || info.width != 0 || info.endpoints.size() != 2) {
      continue;
    }
    const bool both_control =
        is_control(components_.at(info.endpoints[0]).kind) &&
        is_control(components_.at(info.endpoints[1]).kind);
    if (both_control) out.push_back(name);
  }
  return out;
}

std::vector<int> Netlist::control_ids() const {
  std::vector<int> out;
  for (const Component& c : components_) {
    if (is_control(c.kind)) out.push_back(c.id);
  }
  return out;
}

std::vector<int> Netlist::datapath_ids() const {
  std::vector<int> out;
  for (const Component& c : components_) {
    if (!is_control(c.kind)) out.push_back(c.id);
  }
  return out;
}

std::string Netlist::to_string() const {
  std::string s = "netlist " + name_ + "\n";
  for (const Component& c : components_) {
    s += "  " + c.display_name() + " (";
    for (std::size_t i = 0; i < c.ports.size(); ++i) {
      if (i > 0) s += ", ";
      s += c.ports[i];
    }
    s += ")";
    if (c.width > 0) s += " width=" + std::to_string(c.width);
    if (!c.op.empty()) s += " op=" + c.op;
    s += "\n";
  }
  return s;
}

}  // namespace bb::hsnet
