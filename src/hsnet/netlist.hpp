// Netlists of handshake components and the control/datapath partition of
// Section 2 (Fig. 2).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/hsnet/component.hpp"

namespace bb::hsnet {

/// A channel as seen by the netlist: width 0 means a dataless control
/// channel; data channels carry `width` bits (bundled data).
struct ChannelInfo {
  std::string name;
  int width = 0;
  /// Component ids connected to this channel (usually two; one for
  /// external ports).
  std::vector<int> endpoints;
  bool external = false;
};

/// The "balsa-netlist" of Fig. 1: handshake components plus channels.
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a component; returns its id.
  int add(Component component);

  /// Declares a channel (idempotent for a given name).
  void declare_channel(const std::string& channel, int width = 0,
                       bool external = false);

  /// Renames a channel everywhere (ports and channel records).  The new
  /// name must not exist yet.
  void rename_channel(const std::string& from, const std::string& to);

  const std::vector<Component>& components() const { return components_; }
  Component& component(int id) { return components_.at(id); }
  const Component& component(int id) const { return components_.at(id); }

  const std::map<std::string, ChannelInfo>& channels() const {
    return channels_;
  }
  const ChannelInfo* channel(const std::string& name) const;

  /// Channels connecting exactly two *control* components point-to-point:
  /// the candidates for clustering (Section 4.4 considers only these).
  std::vector<std::string> internal_control_channels() const;

  /// ids of control / datapath components.
  std::vector<int> control_ids() const;
  std::vector<int> datapath_ids() const;

  /// Human-readable dump for reports.
  std::string to_string() const;

 private:
  void connect(int id, const std::string& channel);

  std::string name_;
  std::vector<Component> components_;
  std::map<std::string, ChannelInfo> channels_;
};

}  // namespace bb::hsnet
