#include "src/hsnet/component.hpp"

namespace bb::hsnet {

bool is_control(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kLoop:
    case ComponentKind::kSequence:
    case ComponentKind::kConcur:
    case ComponentKind::kCall:
    case ComponentKind::kDecisionWait:
    case ComponentKind::kWhile:
    case ComponentKind::kCase:
    case ComponentKind::kSynch:
    case ComponentKind::kPassivator:
    case ComponentKind::kContinue:
      return true;
    default:
      return false;
  }
}

std::string_view kind_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kLoop: return "$BrzLoop";
    case ComponentKind::kSequence: return "$BrzSequence";
    case ComponentKind::kConcur: return "$BrzConcur";
    case ComponentKind::kCall: return "$BrzCall";
    case ComponentKind::kDecisionWait: return "$BrzDecisionWait";
    case ComponentKind::kWhile: return "$BrzWhile";
    case ComponentKind::kCase: return "$BrzCase";
    case ComponentKind::kSynch: return "$BrzSynch";
    case ComponentKind::kPassivator: return "$BrzPassivator";
    case ComponentKind::kContinue: return "$BrzContinue";
    case ComponentKind::kVariable: return "$BrzVariable";
    case ComponentKind::kFetch: return "$BrzFetch";
    case ComponentKind::kBinaryFunc: return "$BrzBinaryFunc";
    case ComponentKind::kUnaryFunc: return "$BrzUnaryFunc";
    case ComponentKind::kConstant: return "$BrzConstant";
    case ComponentKind::kGuard: return "$BrzGuard";
    case ComponentKind::kMerge: return "$BrzCallMux";
    case ComponentKind::kMemory: return "$BrzMemory";
  }
  return "?";
}

std::string Component::display_name() const {
  return std::string(kind_name(kind)) + "#" + std::to_string(id);
}

}  // namespace bb::hsnet
