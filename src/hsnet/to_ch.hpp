// Balsa-to-CH: models each *control* handshake component as a CH program
// (paper Sections 2 and 3.4).  Channels shared between two components keep
// the same CH channel name, which is how the optimizer discovers
// connectivity.
#pragma once

#include <vector>

#include "src/ch/ast.hpp"
#include "src/hsnet/netlist.hpp"

namespace bb::hsnet {

/// The CH program modelling one control component.
/// Throws std::invalid_argument for datapath components.
ch::Program to_ch(const Component& component);

/// CH programs for every control component of the netlist, in id order.
std::vector<ch::Program> control_programs(const Netlist& netlist);

}  // namespace bb::hsnet
