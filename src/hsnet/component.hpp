// Handshake components: the intermediate representation produced by
// syntax-directed translation of a Balsa program (the "balsa-netlist" of
// Fig. 1).  Control components are dataless; datapath components carry
// bundled data and are synthesized separately (Section 2).
#pragma once

#include <string>
#include <vector>

namespace bb::hsnet {

/// The handshake component vocabulary (a Breeze-style subset sufficient
/// for the paper's four evaluation designs).
enum class ComponentKind {
  // --- control components (dataless; optimized via CH) ---
  kLoop,          ///< activate once, then handshake activate-out forever
  kSequence,      ///< n-way sequencer (";")
  kConcur,        ///< n-way parallel composition ("||")
  kCall,          ///< n-way call: mutually-exclusive clients share one server
  kDecisionWait,  ///< activation plus n guarded passive->active pairs
  kWhile,         ///< guarded loop; guard delivered on a mux-ack channel
  kCase,          ///< n-way selection; index delivered on a mux-ack channel
  kSynch,         ///< synchronize n passive channels, then one active
  kPassivator,    ///< synchronize two passive channels
  kContinue,      ///< acknowledge the activation immediately (skip)
  // --- datapath components (carry data; kept out of control synthesis) ---
  kVariable,    ///< storage: one write port, n read ports
  kFetch,       ///< transferrer: pull input, push output
  kBinaryFunc,  ///< two pull inputs -> one pull output
  kUnaryFunc,   ///< one pull input -> one pull output
  kConstant,    ///< pull output with a constant value
  kGuard,       ///< evaluates a condition, answers on a mux-ack channel
  kMerge,       ///< call-merge: n mutually-exclusive clients share a server
  kMemory,      ///< word-addressed RAM with pull-read / push-write ports
};

/// True for components whose behaviour belongs to the control partition.
bool is_control(ComponentKind kind);

/// Breeze-style name, e.g. "$BrzSequence".
std::string_view kind_name(ComponentKind kind);

/// One instantiated handshake component.
///
/// Ports are channel names; their order is fixed per kind:
///   Loop         : activate, out
///   Sequence(n)  : activate, out1..outn
///   Concur(n)    : activate, out1..outn
///   Call(n)      : in1..inn, out
///   DecisionWait(n): activate, in1..inn, out1..outn
///   While        : activate, guard, body
///   Case(n)      : activate, select, out1..outn
///   Synch(n)     : in1..inn, out
///   Passivator   : a, b
///   Continue     : activate
///   Variable     : w1..w<ways> (writes), then read ports
///   Fetch        : activate, in, out
///   BinaryFunc   : out, in1, in2
///   UnaryFunc    : out, in
///   Constant     : out
///   Guard        : query (mux-ack side), cond (pull input)
///   Merge(n)     : client1..clientn, server (op = "push" or "pull")
///   Memory       : ma (push: address), md (pull: read data), mw (push)
struct Component {
  int id = -1;
  ComponentKind kind = ComponentKind::kLoop;
  std::vector<std::string> ports;
  /// Component arity n (ways / read ports); 0 when not applicable.
  int ways = 0;
  /// Data width in bits for datapath components.
  int width = 0;
  /// Operation name for function components ("add", "sub", "not", ...),
  /// guard mode ("bool" / "index") or merge direction ("push" / "pull").
  std::string op;
  /// Constant value (kConstant) or default branch index (kGuard "index").
  long long value = 0;
  /// Guard selection table: labels[v] = branch index for selector value v;
  /// values beyond the table take branch `value`.
  std::vector<int> labels;

  std::string display_name() const;
};

}  // namespace bb::hsnet
