// Standard-cell library (Synopsys + AMS 0.35um substitute).
//
// Areas are in um^2 and pin-to-pin delays in ns, chosen with realistic
// relative ratios for a 0.35um process.  The same library is used for the
// unoptimized and the optimized flows, so relative speed/area comparisons
// (Table 3) are meaningful.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/gates.hpp"

namespace bb::techmap {

struct Cell {
  std::string name;
  netlist::CellFn fn = netlist::CellFn::kBuf;
  int fanin = 1;
  double area = 0.0;      // um^2
  double delay_ns = 0.0;  // pin-to-output
};

class CellLibrary {
 public:
  CellLibrary() = default;
  explicit CellLibrary(std::vector<Cell> cells) : cells_(std::move(cells)) {}

  /// The default 0.35um-flavoured library.
  static const CellLibrary& ams035();

  /// Cell for a function class and fanin count (throws if unavailable).
  const Cell& pick(netlist::CellFn fn, int fanin) const;

  /// Cell by library name (throws if unknown).
  const Cell& by_name(std::string_view name) const;

  /// Largest available fanin for a function class (0 if none).
  int max_fanin(netlist::CellFn fn) const;

  const std::vector<Cell>& cells() const { return cells_; }

 private:
  std::vector<Cell> cells_;
};

}  // namespace bb::techmap
