// Standard-cell library (Synopsys + AMS 0.35um substitute).
//
// Areas are in um^2 and pin-to-pin delays in ns, chosen with realistic
// relative ratios for a 0.35um process.  The same library is used for the
// unoptimized and the optimized flows, so relative speed/area comparisons
// (Table 3) are meaningful.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/gates.hpp"

namespace bb::techmap {

/// Revision of the technology-mapping contract (the hand-template
/// library and the mapping transforms downstream of the synthesized
/// covers).  Folded into CellLibrary::fingerprint(): bump it whenever a
/// mapping change would make previously cached synthesis artifacts
/// produce different gates, so persistent caches and incremental
/// manifests keyed on the fingerprint invalidate themselves.
inline constexpr int kTechmapRevision = 1;

struct Cell {
  std::string name;
  netlist::CellFn fn = netlist::CellFn::kBuf;
  int fanin = 1;
  double area = 0.0;      // um^2
  double delay_ns = 0.0;  // pin-to-output
};

class CellLibrary {
 public:
  CellLibrary() = default;
  explicit CellLibrary(std::vector<Cell> cells) : cells_(std::move(cells)) {}

  /// The default 0.35um-flavoured library.
  static const CellLibrary& ams035();

  /// Cell for a function class and fanin count (throws if unavailable).
  const Cell& pick(netlist::CellFn fn, int fanin) const;

  /// Cell by library name (throws if unknown).
  const Cell& by_name(std::string_view name) const;

  /// Largest available fanin for a function class (0 if none).
  int max_fanin(netlist::CellFn fn) const;

  /// Stable content fingerprint of the library: a 16-hex digest over
  /// every cell's name, function class, fanin, area and delay, plus the
  /// mapping-algorithm revision below.  Any library or techmap change
  /// changes the fingerprint, which the synthesis cache folds into its
  /// keys so a persistent tier can never serve entries produced under a
  /// different library (they simply stop matching and age out).
  std::string fingerprint() const;

  const std::vector<Cell>& cells() const { return cells_; }

 private:
  std::vector<Cell> cells_;
};

}  // namespace bb::techmap
