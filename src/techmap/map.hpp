// Technology mapping of synthesized two-level controllers (Section 5).
//
// The paper's flow models the two-level nand-nand implementation as
// separate Verilog modules per logic level and maps each level in
// isolation with hazard-non-increasing transforms only (De Morgan,
// associativity, factoring per Kung [18]).  `level_separated = true`
// reproduces that: products and the output plane are mapped to NAND trees
// independently, so cross-level simplifications (e.g. NAND+INV -> AND)
// are forbidden, costing area exactly as Section 6 discusses.
// `level_separated = false` maps the whole cone (used for the baseline
// component templates and the ablation study).
#pragma once

#include <string>

#include "src/minimalist/synth.hpp"
#include "src/netlist/gates.hpp"
#include "src/techmap/cells.hpp"

namespace bb::techmap {

struct MapOptions {
  bool level_separated = true;
};

/// Maps a controller into gates.
///
/// Net naming: the controller's input and output wires keep their signal
/// names (so controllers and datapath models merge by name); internal nets
/// (literal inverters, products, state bits) are prefixed with
/// "<prefix>/".  State-bit nets feed back combinationally.
netlist::GateNetlist map_controller(
    const minimalist::SynthesizedController& ctrl, const CellLibrary& lib,
    const MapOptions& options, const std::string& prefix);

}  // namespace bb::techmap
