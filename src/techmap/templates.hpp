// Hand-optimized gate templates for the standard control handshake
// components (the Balsa component library stand-in).
//
// These are the classic speed-independent circuits: Loop as a request
// gater, Sequence as a chain of S-elements, Concur/Synch as C-element
// trees, Call as an OR/AND merge, Passivator as a C-element.  They are the
// *unoptimized baseline* of Table 3: compact, manually designed
// implementations that keep every internal channel's handshake overhead.
//
// Every externally visible output runs through the same output-commit
// delay as synthesized controllers (cells.cpp "DOUT"), giving the whole
// system one uniform environment-response bound.
//
// Components with data-dependent control (While, Case, DecisionWait) have
// no template here; the baseline flow synthesizes those in area mode.
#pragma once

#include <optional>

#include "src/hsnet/component.hpp"
#include "src/netlist/gates.hpp"
#include "src/techmap/cells.hpp"

namespace bb::techmap {

/// True if a hand template exists for this component kind.
bool has_template(hsnet::ComponentKind kind);

/// Builds the template circuit (channel wires named "<ch>_r"/"<ch>_a").
/// Returns nullopt when no template exists.
std::optional<netlist::GateNetlist> template_circuit(
    const hsnet::Component& component, const CellLibrary& lib);

}  // namespace bb::techmap
