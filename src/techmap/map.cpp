#include "src/techmap/map.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace bb::techmap {

namespace {

using netlist::CellFn;
using netlist::GateNetlist;

/// Builds wide logic trees out of bounded-fanin cells, using only
/// hazard-non-increasing decompositions (associativity of AND/OR,
/// De Morgan for the NAND top level).
class Mapper {
 public:
  Mapper(GateNetlist& net, const CellLibrary& lib) : net_(net), lib_(lib) {}

  int emit(CellFn fn, const std::vector<int>& fanins, int target = -1) {
    const Cell& cell = lib_.pick(fn, static_cast<int>(fanins.size()));
    return net_.add_gate(cell.name, cell.fn, fanins, cell.delay_ns, cell.area,
                         target);
  }

  /// n-ary AND as a tree of AND cells.
  int and_tree(std::vector<int> nets, int target = -1) {
    return reduce(CellFn::kAnd, std::move(nets), target);
  }

  /// n-ary OR as a tree of OR cells.
  int or_tree(std::vector<int> nets, int target = -1) {
    return reduce(CellFn::kOr, std::move(nets), target);
  }

  /// n-ary NAND: groups of inputs collapse through AND subtrees first
  /// (associativity), then a single NAND at the top.  The collapse is
  /// breadth-first (collapsed subtrees rejoin the queue at the back), so
  /// every input sits within one level of every other: a releasing
  /// product can never outrun an asserting one by more than a single
  /// gate delay, which the state-feedback DEL element absorbs.
  int nand_of(std::vector<int> nets, int target = -1) {
    if (nets.size() == 1) {
      const Cell& inv = lib_.pick(CellFn::kInv, 1);
      return net_.add_gate(inv.name, inv.fn, nets, inv.delay_ns, inv.area,
                           target);
    }
    const int max = lib_.max_fanin(CellFn::kNand);
    while (static_cast<int>(nets.size()) > max) {
      std::vector<int> group(nets.begin(), nets.begin() + max);
      nets.erase(nets.begin(), nets.begin() + max);
      nets.push_back(and_tree(std::move(group)));
    }
    return emit(CellFn::kNand, nets, target);
  }

 private:
  int reduce(CellFn fn, std::vector<int> nets, int target) {
    if (nets.size() == 1) {
      if (target < 0) return nets[0];
      const Cell& buf = lib_.pick(CellFn::kBuf, 1);
      return net_.add_gate(buf.name, buf.fn, nets, buf.delay_ns, buf.area,
                           target);
    }
    const int max = lib_.max_fanin(fn);
    while (static_cast<int>(nets.size()) > max) {
      std::vector<int> group(nets.begin(), nets.begin() + max);
      nets.erase(nets.begin(), nets.begin() + max);
      nets.push_back(emit(fn, group));
    }
    return emit(fn, nets, target);
  }

  GateNetlist& net_;
  const CellLibrary& lib_;
};

}  // namespace

netlist::GateNetlist map_controller(
    const minimalist::SynthesizedController& ctrl, const CellLibrary& lib,
    const MapOptions& options, const std::string& prefix) {
  GateNetlist net(prefix);
  Mapper mapper(net, lib);

  // Variable nets: inputs by signal name, state bits prefixed.
  std::vector<int> var_net(ctrl.num_vars, -1);
  for (std::size_t i = 0; i < ctrl.inputs.size(); ++i) {
    var_net[i] = net.add_net(ctrl.inputs[i]);
    net.mark_input(var_net[i]);
  }
  for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
    var_net[ctrl.inputs.size() + s] =
        net.add_net(prefix + "/" + ctrl.state_bits[s]);
  }

  // Output nets by signal name.
  std::vector<int> out_net(ctrl.outputs.size());
  for (std::size_t z = 0; z < ctrl.outputs.size(); ++z) {
    out_net[z] = net.add_net(ctrl.outputs[z]);
  }

  // Shared literal inverters.
  std::vector<int> inv_net(ctrl.num_vars, -1);
  // Whole-cone mapping may share identical product terms across functions
  // (impossible when each level of each function is mapped in isolation).
  std::map<std::string, int> product_cache;
  const auto literal = [&](std::size_t v, logic::Lit lit) {
    if (lit == logic::Lit::kOne) return var_net[v];
    if (inv_net[v] < 0) {
      inv_net[v] = mapper.emit(CellFn::kInv, {var_net[v]});
    }
    return inv_net[v];
  };

  for (std::size_t fi = 0; fi < ctrl.functions.size(); ++fi) {
    const auto& f = ctrl.functions[fi];
    int target;
    if (fi < ctrl.outputs.size()) {
      // Outputs pass through an output-commit delay (see cells.cpp).
      const Cell& dout = lib.by_name("DOUT");
      target = net.add_net();
      net.add_gate(dout.name, dout.fn, {target}, dout.delay_ns, dout.area,
                   out_net[fi]);
    } else {
      // State-bit feedback runs through an explicit delay element so the
      // state change can never race the input burst through unequal
      // literal paths (Huffman fundamental-mode discipline).
      const int feedback =
          var_net[ctrl.inputs.size() + (fi - ctrl.outputs.size())];
      const Cell& del = lib.by_name("DEL");
      target = net.add_net();
      net.add_gate(del.name, del.fn, {target}, del.delay_ns, del.area,
                   feedback);
    }

    if (f.products.empty()) {
      mapper.emit(CellFn::kConst0, {}, target);
      continue;
    }

    // Gather literal nets per product.  For a state bit, products holding
    // the bit's own positive literal are the latch terms that must keep
    // the feedback loop closed across a state handoff; they go last so
    // the breadth-first NAND collapse leaves them nearest the output, and
    // the own literal goes last inside its product for the same reason.
    // Otherwise a trigger product releasing through a shallow path can
    // beat the hold assert still climbing a deep AND subtree, and the
    // momentary plane dropout re-opens the feedback loop (an essential
    // hazard the two-level cover is free of by construction).
    const int own_var =
        fi < ctrl.outputs.size()
            ? -1
            : static_cast<int>(ctrl.inputs.size() +
                               (fi - ctrl.outputs.size()));
    const auto& f_cubes = f.products.cubes();
    std::vector<std::size_t> order(f_cubes.size());
    for (std::size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::stable_partition(order.begin(), order.end(), [&](std::size_t p) {
      return own_var < 0 || f_cubes[p][own_var] != logic::Lit::kOne;
    });

    std::vector<std::vector<int>> product_lits;
    bool constant_one = false;
    for (const std::size_t p : order) {
      const auto& cube = f_cubes[p];
      std::vector<int> lits;
      for (std::size_t v = 0; v < ctrl.num_vars; ++v) {
        if (static_cast<int>(v) == own_var) continue;
        if (cube[v] != logic::Lit::kDash) lits.push_back(literal(v, cube[v]));
      }
      if (own_var >= 0 && cube[own_var] != logic::Lit::kDash) {
        lits.push_back(literal(own_var, cube[own_var]));
      }
      if (lits.empty()) constant_one = true;
      product_lits.push_back(std::move(lits));
    }
    if (constant_one) {
      mapper.emit(CellFn::kConst1, {}, target);
      continue;
    }

    if (options.level_separated) {
      // Level 1: one NAND plane per product; level 2: NAND of products.
      // Mapped independently, as the paper's per-module DC runs are.
      std::vector<int> plane;
      plane.reserve(product_lits.size());
      for (auto& lits : product_lits) {
        plane.push_back(mapper.nand_of(std::move(lits)));
      }
      mapper.nand_of(std::move(plane), target);
    } else {
      // Whole-cone mapping: NAND-NAND with the cross-level
      // simplifications the paper's per-level flow forbids: a
      // single-literal product feeds the output NAND as the complementary
      // literal (absorbing its first-level inverter), and a single-product
      // function collapses to an AND/buffer instead of NAND+INV pairs.
      if (product_lits.size() == 1) {
        mapper.and_tree(std::move(product_lits[0]), target);
      } else {
        std::vector<int> plane;
        plane.reserve(product_lits.size());
        for (std::size_t p = 0; p < product_lits.size(); ++p) {
          if (product_lits[p].size() == 1) {
            // NAND(lit) == the complementary literal; reuse it directly.
            const auto& cube = f_cubes[order[p]];
            for (std::size_t v = 0; v < ctrl.num_vars; ++v) {
              if (cube[v] == logic::Lit::kDash) continue;
              plane.push_back(literal(v, cube[v] == logic::Lit::kOne
                                             ? logic::Lit::kZero
                                             : logic::Lit::kOne));
              break;
            }
          } else {
            const std::string key = f_cubes[order[p]].to_string();
            const auto it = product_cache.find(key);
            if (it != product_cache.end()) {
              plane.push_back(it->second);
            } else {
              const int pnet = mapper.nand_of(std::move(product_lits[p]));
              product_cache.emplace(key, pnet);
              plane.push_back(pnet);
            }
          }
        }
        mapper.nand_of(std::move(plane), target);
      }
    }
  }
  return net;
}

}  // namespace bb::techmap
