#include "src/techmap/templates.hpp"

#include <stdexcept>

#include "src/util/strings.hpp"

namespace bb::techmap {

namespace {

using hsnet::Component;
using hsnet::ComponentKind;
using netlist::CellFn;
using netlist::GateNetlist;

/// Helper wrapping a netlist with channel-wire access and cell emission.
class Builder {
 public:
  Builder(GateNetlist& net, const CellLibrary& lib) : net_(net), lib_(lib) {}

  int req(const std::string& channel) {
    return wire(util::to_lower(channel) + "_r");
  }
  int ack(const std::string& channel) {
    return wire(util::to_lower(channel) + "_a");
  }

  int cell(const std::string& name, std::vector<int> fanins,
           int target = -1) {
    const Cell& c = lib_.by_name(name);
    return net_.add_gate(c.name, c.fn, std::move(fanins), c.delay_ns, c.area,
                         target);
  }

  int emit(CellFn fn, std::vector<int> fanins, int target = -1) {
    const Cell& c = lib_.pick(fn, static_cast<int>(fanins.size()));
    return net_.add_gate(c.name, c.fn, std::move(fanins), c.delay_ns, c.area,
                         target);
  }

  /// Output-commit delay onto a named output net.
  void commit(int from, int target) { cell("DOUT", {from}, target); }

  /// C-element tree over any number of inputs.
  int c_tree(std::vector<int> nets) {
    const int max = lib_.max_fanin(CellFn::kCelem);
    while (static_cast<int>(nets.size()) > 1) {
      std::vector<int> next;
      for (std::size_t i = 0; i < nets.size(); i += max) {
        const std::size_t end = std::min(nets.size(), i + max);
        std::vector<int> group(nets.begin() + i, nets.begin() + end);
        next.push_back(group.size() == 1 ? group[0]
                                         : emit(CellFn::kCelem, group));
      }
      nets = std::move(next);
    }
    return nets[0];
  }

  /// OR tree.
  int or_tree(std::vector<int> nets) {
    const int max = lib_.max_fanin(CellFn::kOr);
    while (static_cast<int>(nets.size()) > 1) {
      std::vector<int> next;
      for (std::size_t i = 0; i < nets.size(); i += max) {
        const std::size_t end = std::min(nets.size(), i + max);
        std::vector<int> group(nets.begin() + i, nets.begin() + end);
        next.push_back(group.size() == 1 ? group[0]
                                         : emit(CellFn::kOr, group));
      }
      nets = std::move(next);
    }
    return nets[0];
  }

  /// The S-element: passive (p_r, returns p_a net) wrapping one complete
  /// active handshake on (b_r target, b_a).  Returns the p_a-logic net
  /// (before any commit delay).
  ///   s   = C(p_r, b_a)
  ///   b_r = p_r AND NOT s     (committed onto `b_req_target`)
  ///   p_a = s AND NOT b_a
  int s_element(int p_req, const std::string& b_channel) {
    const int b_ack = ack(b_channel);
    const int s = emit(CellFn::kCelem, {p_req, b_ack});
    const int ns = emit(CellFn::kInv, {s});
    const int br_logic = emit(CellFn::kAnd, {p_req, ns});
    commit(br_logic, req(b_channel));
    const int nba = emit(CellFn::kInv, {b_ack});
    return emit(CellFn::kAnd, {s, nba});
  }

 private:
  int wire(const std::string& name) {
    const int existing = net_.net(name);
    return existing >= 0 ? existing : net_.add_net(name);
  }

  GateNetlist& net_;
  const CellLibrary& lib_;
};

}  // namespace

bool has_template(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kContinue:
    case ComponentKind::kLoop:
    case ComponentKind::kSequence:
    case ComponentKind::kConcur:
    case ComponentKind::kCall:
    case ComponentKind::kSynch:
    case ComponentKind::kPassivator:
      return true;
    default:
      return false;
  }
}

std::optional<GateNetlist> template_circuit(const Component& comp,
                                            const CellLibrary& lib) {
  if (!has_template(comp.kind)) return std::nullopt;

  GateNetlist net(comp.display_name());
  Builder b(net, lib);

  switch (comp.kind) {
    case ComponentKind::kContinue: {
      // a_a follows a_r directly.
      b.commit(b.req(comp.ports.at(0)), b.ack(comp.ports.at(0)));
      break;
    }
    case ComponentKind::kLoop: {
      // b_r = a_r AND NOT b_a; the activation is never acknowledged.
      const int a_r = b.req(comp.ports.at(0));
      const int b_a = b.ack(comp.ports.at(1));
      const int n = b.emit(CellFn::kInv, {b_a});
      const int logic = b.emit(CellFn::kAnd, {a_r, n});
      b.commit(logic, b.req(comp.ports.at(1)));
      b.emit(CellFn::kConst0, {}, b.ack(comp.ports.at(0)));
      break;
    }
    case ComponentKind::kSequence: {
      // A chain of S-elements: each wraps one branch handshake; the
      // completion of branch k starts branch k+1; the last completion
      // acknowledges the activation.
      int link = b.req(comp.ports.at(0));
      for (std::size_t k = 1; k < comp.ports.size(); ++k) {
        link = b.s_element(link, comp.ports[k]);
      }
      b.commit(link, b.ack(comp.ports.at(0)));
      break;
    }
    case ComponentKind::kConcur: {
      // Fork the request; join the acknowledges with a C-element tree.
      const int a_r = b.req(comp.ports.at(0));
      std::vector<int> acks;
      for (std::size_t k = 1; k < comp.ports.size(); ++k) {
        b.commit(a_r, b.req(comp.ports[k]));
        acks.push_back(b.ack(comp.ports[k]));
      }
      b.commit(b.c_tree(std::move(acks)), b.ack(comp.ports.at(0)));
      break;
    }
    case ComponentKind::kCall: {
      // b_r = OR of client requests; each client ack = its request AND
      // the shared acknowledge (clients are mutually exclusive).
      std::vector<int> reqs;
      for (std::size_t k = 0; k + 1 < comp.ports.size(); ++k) {
        reqs.push_back(b.req(comp.ports[k]));
      }
      b.commit(b.or_tree(std::move(reqs)), b.req(comp.ports.back()));
      const int b_a = b.ack(comp.ports.back());
      for (std::size_t k = 0; k + 1 < comp.ports.size(); ++k) {
        const int logic = b.emit(CellFn::kAnd, {b.req(comp.ports[k]), b_a});
        b.commit(logic, b.ack(comp.ports[k]));
      }
      break;
    }
    case ComponentKind::kSynch: {
      // o_r = C of all input requests; every input ack mirrors o_a.
      std::vector<int> reqs;
      for (std::size_t k = 0; k + 1 < comp.ports.size(); ++k) {
        reqs.push_back(b.req(comp.ports[k]));
      }
      b.commit(b.c_tree(std::move(reqs)), b.req(comp.ports.back()));
      const int o_a = b.ack(comp.ports.back());
      for (std::size_t k = 0; k + 1 < comp.ports.size(); ++k) {
        b.commit(o_a, b.ack(comp.ports[k]));
      }
      break;
    }
    case ComponentKind::kPassivator: {
      const int c = b.emit(CellFn::kCelem, {b.req(comp.ports.at(0)),
                                            b.req(comp.ports.at(1))});
      b.commit(c, b.ack(comp.ports.at(0)));
      b.commit(c, b.ack(comp.ports.at(1)));
      break;
    }
    default:
      return std::nullopt;
  }
  // Wires the template reads but never drives (peer requests and
  // acknowledges) are its primary inputs: the peer component, datapath
  // model or testbench drives them after the merge.
  const auto drivers = net.driver_table();
  for (const netlist::Gate& g : net.gates()) {
    for (const int fanin : g.fanins) {
      if (drivers[fanin] < 0) net.mark_input(fanin);
    }
  }
  return net;
}

}  // namespace bb::techmap
