#include "src/techmap/cells.hpp"

#include <cstdio>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace bb::techmap {

namespace {

using netlist::CellFn;

CellLibrary build_ams035() {
  std::vector<Cell> cells;
  const auto add = [&cells](std::string name, CellFn fn, int fanin,
                            double area, double delay) {
    cells.push_back(Cell{std::move(name), fn, fanin, area, delay});
  };
  add("INV", CellFn::kInv, 1, 55, 0.07);
  add("BUF", CellFn::kBuf, 1, 73, 0.12);
  // Feedback delay element for Huffman-style state bits: its delay must
  // exceed the worst-case literal-path skew through the decomposed AND
  // trees so feedback changes never race the input burst (fundamental
  // mode inside the controller).
  add("DEL", CellFn::kBuf, 1, 91, 0.25);
  // Output-commit delay: controller outputs become visible only after the
  // state handoff is safely underway, so even a fast peer cannot inject
  // the next input burst before the feedback commits (one-sided timing
  // assumption of Huffman/Burst-Mode implementations, realised
  // structurally).
  add("DOUT", CellFn::kBuf, 1, 91, 0.50);
  add("NAND2", CellFn::kNand, 2, 73, 0.10);
  add("NAND3", CellFn::kNand, 3, 91, 0.13);
  add("NAND4", CellFn::kNand, 4, 110, 0.16);
  add("NOR2", CellFn::kNor, 2, 73, 0.12);
  add("NOR3", CellFn::kNor, 3, 91, 0.16);
  add("AND2", CellFn::kAnd, 2, 91, 0.15);
  add("AND3", CellFn::kAnd, 3, 110, 0.18);
  add("AND4", CellFn::kAnd, 4, 128, 0.21);
  add("OR2", CellFn::kOr, 2, 91, 0.16);
  add("OR3", CellFn::kOr, 3, 110, 0.20);
  add("OR4", CellFn::kOr, 4, 128, 0.24);
  add("XOR2", CellFn::kXor, 2, 128, 0.18);
  add("C2", CellFn::kCelem, 2, 182, 0.20);
  add("C3", CellFn::kCelem, 3, 225, 0.26);
  add("TIE0", CellFn::kConst0, 0, 18, 0.0);
  add("TIE1", CellFn::kConst1, 0, 18, 0.0);
  return CellLibrary(std::move(cells));
}

}  // namespace

const CellLibrary& CellLibrary::ams035() {
  static const CellLibrary lib = build_ams035();
  return lib;
}

const Cell& CellLibrary::pick(netlist::CellFn fn, int fanin) const {
  const Cell* best = nullptr;
  for (const Cell& c : cells_) {
    if (c.fn != fn || c.fanin < fanin) continue;
    if (best == nullptr || c.fanin < best->fanin) best = &c;
  }
  if (best == nullptr) {
    throw std::out_of_range(std::string("CellLibrary: no cell for ") +
                            std::string(netlist::fn_name(fn)) + "/" +
                            std::to_string(fanin));
  }
  return *best;
}

const Cell& CellLibrary::by_name(std::string_view name) const {
  for (const Cell& c : cells_) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("CellLibrary: no cell named '" +
                          std::string(name) + "'");
}

std::string CellLibrary::fingerprint() const {
  // Deterministic text image of the whole library: cells in stored
  // order (the order itself is part of pick()'s tie-breaking contract),
  // delays/areas printed with fixed precision so the image is stable
  // across compilers.
  std::string image = "techmap-rev " + std::to_string(kTechmapRevision) + "\n";
  for (const Cell& c : cells_) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s %d %d %.3f %.4f\n", c.name.c_str(),
                  static_cast<int>(c.fn), c.fanin, c.area, c.delay_ns);
    image += line;
  }
  return util::content_digest(image);
}

int CellLibrary::max_fanin(netlist::CellFn fn) const {
  int best = 0;
  for (const Cell& c : cells_) {
    if (c.fn == fn && c.fanin > best) best = c.fanin;
  }
  return best;
}

}  // namespace bb::techmap
