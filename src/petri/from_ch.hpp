// CH-to-Petri-net translation (the manual step of the paper's Section 4.3
// verification flow, automated here).  Every signal edge becomes a
// labelled transition; loops become back-arcs; mutual exclusion becomes
// place conflict.
#pragma once

#include "src/ch/expansion.hpp"
#include "src/petri/net.hpp"

namespace bb::petri {

/// Translates a CH expression into a 1-safe labelled Petri net whose
/// firing sequences are exactly the expression's signal-transition traces.
PetriNet from_ch(const ch::Expr& expr);

/// Translates an already-flattened intermediate form.
PetriNet from_items(const ch::ItemSeq& items);

}  // namespace bb::petri
