#include "src/petri/net.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace bb::petri {

std::vector<const Lts::Edge*> Lts::edges_from(int state) const {
  std::vector<const Edge*> out;
  for (const Edge& e : edges) {
    if (e.from == state) out.push_back(&e);
  }
  return out;
}

int PetriNet::add_place(bool marked) {
  initial_marking_.push_back(marked);
  return static_cast<int>(initial_marking_.size()) - 1;
}

int PetriNet::add_transition(Transition t) {
  transitions_.push_back(std::move(t));
  return static_cast<int>(transitions_.size()) - 1;
}

PetriNet PetriNet::compose(const PetriNet& a, const PetriNet& b) {
  PetriNet out;
  out.initial_marking_ = a.initial_marking_;
  const int offset = a.num_places();
  out.initial_marking_.insert(out.initial_marking_.end(),
                              b.initial_marking_.begin(),
                              b.initial_marking_.end());

  const auto shift = [offset](std::vector<int> places) {
    for (int& p : places) p += offset;
    return places;
  };

  std::set<std::string> shared;
  {
    const auto alpha_a = a.alphabet();
    const auto alpha_b = b.alphabet();
    std::set_intersection(alpha_a.begin(), alpha_a.end(), alpha_b.begin(),
                          alpha_b.end(),
                          std::inserter(shared, shared.begin()));
  }

  for (const Transition& t : a.transitions_) {
    if (t.label.empty() || !shared.count(t.label)) {
      out.transitions_.push_back(t);
    }
  }
  for (const Transition& t : b.transitions_) {
    if (t.label.empty() || !shared.count(t.label)) {
      Transition copy = t;
      copy.pre = shift(copy.pre);
      copy.post = shift(copy.post);
      out.transitions_.push_back(std::move(copy));
    }
  }
  // Fuse every pair of same-labelled shared transitions.
  for (const Transition& ta : a.transitions_) {
    if (ta.label.empty() || !shared.count(ta.label)) continue;
    for (const Transition& tb : b.transitions_) {
      if (tb.label != ta.label) continue;
      Transition fused;
      fused.label = ta.label;
      fused.pre = ta.pre;
      fused.post = ta.post;
      const auto bp = shift(tb.pre);
      const auto bq = shift(tb.post);
      fused.pre.insert(fused.pre.end(), bp.begin(), bp.end());
      fused.post.insert(fused.post.end(), bq.begin(), bq.end());
      out.transitions_.push_back(std::move(fused));
    }
  }
  return out;
}

std::vector<std::string> PetriNet::alphabet() const {
  std::set<std::string> labels;
  for (const Transition& t : transitions_) {
    if (!t.label.empty()) labels.insert(t.label);
  }
  return {labels.begin(), labels.end()};
}

void PetriNet::hide_prefixes(const std::vector<std::string>& prefixes) {
  for (Transition& t : transitions_) {
    for (const std::string& p : prefixes) {
      if (t.label.rfind(p, 0) == 0) {
        t.label.clear();
        break;
      }
    }
  }
}

Lts PetriNet::reachability(std::size_t limit) const {
  Lts lts;
  std::map<std::vector<bool>, int> index;
  std::deque<std::vector<bool>> queue;

  index[initial_marking_] = 0;
  queue.push_back(initial_marking_);
  lts.num_states = 1;

  while (!queue.empty()) {
    const std::vector<bool> marking = std::move(queue.front());
    queue.pop_front();
    const int from = index.at(marking);

    for (const Transition& t : transitions_) {
      bool enabled = true;
      for (const int p : t.pre) {
        if (!marking[p]) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;

      std::vector<bool> next = marking;
      for (const int p : t.pre) next[p] = false;
      for (const int p : t.post) {
        if (next[p]) {
          throw std::runtime_error(
              "PetriNet::reachability: net is not 1-safe");
        }
        next[p] = true;
      }

      const auto [it, inserted] = index.emplace(next, lts.num_states);
      if (inserted) {
        ++lts.num_states;
        if (static_cast<std::size_t>(lts.num_states) > limit) {
          throw std::runtime_error(
              "PetriNet::reachability: state limit exceeded");
        }
        queue.push_back(std::move(next));
      }
      lts.edges.push_back(Lts::Edge{from, it->second, t.label});
    }
  }
  return lts;
}

std::string PetriNet::to_string() const {
  std::string s = "petri-net: " + std::to_string(num_places()) + " places, " +
                  std::to_string(transitions_.size()) + " transitions\n";
  for (const Transition& t : transitions_) {
    s += "  [" + (t.label.empty() ? std::string("tau") : t.label) + "] pre={";
    for (std::size_t i = 0; i < t.pre.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(t.pre[i]);
    }
    s += "} post={";
    for (std::size_t i = 0; i < t.post.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(t.post[i]);
    }
    s += "}\n";
  }
  return s;
}

}  // namespace bb::petri
