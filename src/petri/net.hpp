// 1-safe labelled Petri nets: the low-level model the paper's verification
// flow (Section 4.3) translates CH programs into before handing them to
// the trace-theory verifier.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bb::petri {

/// A transition fires when all pre-places are marked; it consumes those
/// tokens and produces tokens on its post-places.  `label` is a signal
/// edge like "c_r+", or "" for a silent (tau) transition.
struct Transition {
  std::string label;
  std::vector<int> pre;
  std::vector<int> post;
};

/// The reachability graph of a 1-safe net: a labelled transition system.
struct Lts {
  struct Edge {
    int from = 0;
    int to = 0;
    std::string label;  // "" = tau
  };
  int num_states = 0;
  int initial = 0;
  std::vector<Edge> edges;

  std::vector<const Edge*> edges_from(int state) const;
};

class PetriNet {
 public:
  /// Adds a place; returns its id.  `marked` sets the initial marking.
  int add_place(bool marked = false);

  /// Adds a transition; returns its id.
  int add_transition(Transition t);

  int num_places() const { return static_cast<int>(initial_marking_.size()); }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<bool>& initial_marking() const { return initial_marking_; }

  /// Parallel composition by transition fusion: transitions with equal
  /// (non-tau) labels in the two nets synchronize; others interleave.
  /// Places are disjoint-unioned.
  static PetriNet compose(const PetriNet& a, const PetriNet& b);

  /// All labels appearing in the net (excluding tau).
  std::vector<std::string> alphabet() const;

  /// Relabels to tau every transition whose label starts with any of the
  /// given signal prefixes (hiding a channel hides all its wires).
  void hide_prefixes(const std::vector<std::string>& prefixes);

  /// Exhaustive reachability (throws if the state count exceeds `limit`).
  Lts reachability(std::size_t limit = 1u << 20) const;

  std::string to_string() const;

 private:
  std::vector<bool> initial_marking_;
  std::vector<Transition> transitions_;
};

}  // namespace bb::petri
