#include "src/petri/from_ch.hpp"

#include <map>

namespace bb::petri {

namespace {

using ch::Item;
using ch::ItemSeq;

class Builder {
 public:
  PetriNet build(const ItemSeq& items) {
    const int start = net_.add_place(/*marked=*/true);
    run(items, 0, start);
    return std::move(net_);
  }

 private:
  static std::string label_of(const ch::Transition& t) {
    return t.signal + (t.rising ? "+" : "-");
  }

  int place_for_label(const std::string& label) {
    const auto it = label_place_.find(label);
    if (it != label_place_.end()) return it->second;
    const int p = net_.add_place();
    label_place_[label] = p;
    return p;
  }

  /// Walks items from `idx`, starting at place `p` (-1 = unreachable).
  /// Returns the places control flow ends at.
  std::vector<int> run(const ItemSeq& items, std::size_t idx, int p) {
    for (std::size_t i = idx; i < items.size(); ++i) {
      const Item& item = items[i];
      switch (item.kind) {
        case Item::Kind::kTransition: {
          if (p < 0) break;
          const int q = net_.add_place();
          net_.add_transition(Transition{label_of(item.transition), {p}, {q}});
          p = q;
          break;
        }
        case Item::Kind::kLabel: {
          const auto it = label_place_.find(item.label);
          if (p < 0) {
            // Reachable only via an earlier (b)goto.
            if (it != label_place_.end()) p = it->second;
            break;
          }
          if (it != label_place_.end()) {
            // A forward goto created a placeholder: connect it silently.
            net_.add_transition(Transition{"", {it->second}, {p}});
          } else {
            label_place_[item.label] = p;
          }
          break;
        }
        case Item::Kind::kGoto:
        case Item::Kind::kBGoto: {
          if (p < 0) break;
          net_.add_transition(Transition{"", {p}, {place_for_label(item.label)}});
          p = -1;
          break;
        }
        case Item::Kind::kChoice: {
          if (p < 0) break;
          std::vector<int> ends;
          for (const ItemSeq& alt : item.alternatives) {
            const auto sub = run(alt, 0, p);
            ends.insert(ends.end(), sub.begin(), sub.end());
          }
          std::vector<int> results;
          for (const int end : ends) {
            const auto sub = run(items, i + 1, end);
            results.insert(results.end(), sub.begin(), sub.end());
          }
          return results;
        }
      }
    }
    return {p};
  }

  PetriNet net_;
  std::map<std::string, int> label_place_;
};

}  // namespace

PetriNet from_ch(const ch::Expr& expr) {
  return from_items(ch::expand(expr).flatten());
}

PetriNet from_items(const ItemSeq& items) {
  Builder builder;
  return builder.build(items);
}

}  // namespace bb::petri
