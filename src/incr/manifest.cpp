#include "src/incr/manifest.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/failpoint.hpp"
#include "src/util/hash.hpp"
#include "src/util/io.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"

namespace fs = std::filesystem;

namespace bb::incr {

namespace {

/// Frames `body` under a magic line and a checksum line:
///   <magic> <version>\n<16-hex fnv1a of body>\n<body>
std::string frame(std::string_view magic, std::string body) {
  std::string out;
  out += magic;
  out += ' ';
  out += std::to_string(kManifestVersion);
  out += '\n';
  out += util::content_digest(body);
  out += '\n';
  out += body;
  return out;
}

/// Inverse of frame(): verifies magic, version and checksum, returns the
/// body.  nullopt with a reason on any defect — the caller treats every
/// defect identically (full rebuild), so reasons are diagnostics only.
std::optional<std::string> unframe(std::string_view magic,
                                   std::string_view bytes,
                                   std::string* error) {
  const auto fail = [error](std::string reason) -> std::optional<std::string> {
    if (error != nullptr) *error = std::move(reason);
    return std::nullopt;
  };
  const std::size_t magic_end = bytes.find('\n');
  if (magic_end == std::string_view::npos) return fail("missing magic line");
  const std::string expected = std::string(magic) + " " +
                               std::to_string(kManifestVersion);
  const std::string_view magic_line = bytes.substr(0, magic_end);
  if (magic_line != expected) {
    return fail("bad magic/version line '" + std::string(magic_line) +
                "' (want '" + expected + "')");
  }
  const std::size_t sum_end = bytes.find('\n', magic_end + 1);
  if (sum_end == std::string_view::npos) return fail("missing checksum line");
  const std::string_view sum = bytes.substr(magic_end + 1,
                                            sum_end - magic_end - 1);
  const std::string_view body = bytes.substr(sum_end + 1);
  if (sum != util::content_digest(body)) return fail("checksum mismatch");
  return std::string(body);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

const UnitRecord* Manifest::find(std::string_view name) const {
  for (const UnitRecord& unit : units) {
    if (unit.name == name) return &unit;
  }
  return nullptr;
}

std::string manifest_to_bytes(const Manifest& manifest) {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kManifestVersion);
  w.member("library", manifest.library);
  w.member("options", manifest.options);
  w.key("units").begin_array();
  for (const UnitRecord& unit : manifest.units) {
    w.begin_object()
        .member("name", unit.name)
        .member("digest", unit.digest)
        .member("artifact", unit.artifact);
    w.key("controllers").begin_array();
    for (const ControllerRecord& ctrl : unit.controllers) {
      w.begin_object()
          .member("name", ctrl.name)
          .member("key", ctrl.key)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return frame("bbpm", w.str());
}

std::optional<Manifest> manifest_from_bytes(std::string_view bytes,
                                            std::string* error) {
  const auto body = unframe("bbpm", bytes, error);
  if (!body) return std::nullopt;
  const auto fail = [error](std::string reason) -> std::optional<Manifest> {
    if (error != nullptr) *error = std::move(reason);
    return std::nullopt;
  };
  std::string parse_error;
  const auto json = util::parse_json(*body, &parse_error);
  if (!json || !json->is_object()) return fail("bad JSON: " + parse_error);
  if (json->get_int("schema_version", -1) != kManifestVersion) {
    return fail("schema_version mismatch");
  }
  Manifest manifest;
  manifest.library = json->get_string("library");
  manifest.options = json->get_string("options");
  const util::JsonValue* units = json->get("units");
  if (units == nullptr || !units->is_array()) return fail("missing units");
  for (const util::JsonValue& u : units->array) {
    if (!u.is_object()) return fail("unit is not an object");
    UnitRecord unit;
    unit.name = u.get_string("name");
    unit.digest = u.get_string("digest");
    unit.artifact = u.get_string("artifact");
    if (unit.name.empty() || unit.digest.empty() || unit.artifact.empty()) {
      return fail("unit record missing name/digest/artifact");
    }
    if (const util::JsonValue* ctrls = u.get("controllers");
        ctrls != nullptr && ctrls->is_array()) {
      for (const util::JsonValue& c : ctrls->array) {
        unit.controllers.push_back(
            ControllerRecord{c.get_string("name"), c.get_string("key")});
      }
    }
    manifest.units.push_back(std::move(unit));
  }
  return manifest;
}

std::string artifact_to_bytes(const Artifact& artifact) {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", kManifestVersion);
  w.member("report", artifact.report);
  w.member("verilog", artifact.verilog);
  w.end_object();
  return frame("bbart", w.str());
}

std::optional<Artifact> artifact_from_bytes(std::string_view bytes,
                                            std::string* error) {
  const auto body = unframe("bbart", bytes, error);
  if (!body) return std::nullopt;
  std::string parse_error;
  const auto json = util::parse_json(*body, &parse_error);
  if (!json || !json->is_object()) {
    if (error != nullptr) *error = "bad JSON: " + parse_error;
    return std::nullopt;
  }
  if (json->get_int("schema_version", -1) != kManifestVersion) {
    if (error != nullptr) *error = "schema_version mismatch";
    return std::nullopt;
  }
  return Artifact{json->get_string("report"), json->get_string("verilog")};
}

std::string artifact_file_name(std::string_view unit,
                               std::string_view digest) {
  std::string safe;
  for (const char c : unit) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == '-';
    safe += ok ? c : '_';
  }
  return safe + "-" + std::string(digest) + ".bba";
}

std::string manifest_path(const std::string& project_dir) {
  return (fs::path(project_dir) / kManifestFile).string();
}

std::string artifact_path(const std::string& project_dir,
                          std::string_view file_name) {
  return (fs::path(project_dir) / kArtifactDir / file_name).string();
}

std::optional<Manifest> load_manifest(const std::string& project_dir,
                                      std::string* error) {
  try {
    return manifest_from_bytes(read_file(manifest_path(project_dir)), error);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

bool store_manifest(const std::string& project_dir, const Manifest& manifest,
                    std::string* error) {
  try {
    if (util::failpoint("incr.manifest.store")) {
      throw std::runtime_error("injected incr.manifest.store failure");
    }
    std::error_code ec;
    fs::create_directories(project_dir, ec);
    util::write_file_atomic(manifest_path(project_dir),
                            manifest_to_bytes(manifest));
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::optional<Artifact> load_artifact(const std::string& project_dir,
                                      std::string_view file_name,
                                      std::string* error) {
  try {
    return artifact_from_bytes(
        read_file(artifact_path(project_dir, file_name)), error);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

bool store_artifact(const std::string& project_dir,
                    std::string_view file_name, const Artifact& artifact,
                    std::string* error) {
  try {
    if (util::failpoint("incr.artifact.store")) {
      throw std::runtime_error("injected incr.artifact.store failure");
    }
    std::error_code ec;
    fs::create_directories(fs::path(project_dir) / kArtifactDir, ec);
    util::write_file_atomic(artifact_path(project_dir, file_name),
                            artifact_to_bytes(artifact));
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

std::size_t gc_artifacts(const std::string& project_dir,
                         const Manifest& keep) {
  std::error_code ec;
  fs::directory_iterator it(fs::path(project_dir) / kArtifactDir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    bool referenced = false;
    for (const UnitRecord& unit : keep.units) {
      if (unit.artifact == name) {
        referenced = true;
        break;
      }
    }
    if (referenced) continue;
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

}  // namespace bb::incr
