// The persistent project model behind incremental synthesis.
//
// A project directory (BB_PROJECT_DIR, or --project-dir on the tools)
// treats a mini-Balsa program the way a build system treats a source
// tree.  It holds two kinds of state:
//
//   manifest.bbpm             the build graph: one record per unit
//                             (procedure) with the content digest of its
//                             inputs, the name of its artifact file, and
//                             the controllers it depends on
//   artifacts/<unit>-<digest>.bba
//                             the exact output bytes (controller report +
//                             structural Verilog) of the unit's last
//                             successful build, content-named so an edit
//                             can never alias a stale artifact
//
// A unit's input digest covers everything that can change its output:
// the procedure's canonical source (balsa::procedure_digest — formatting
// blind, identifier sensitive), the effective flow options
// (incr::options_fingerprint), and the technology contract
// (techmap::CellLibrary::fingerprint, which folds in kTechmapRevision).
// Re-synthesis diffs digests against the manifest, rebuilds only the
// dirty units, and splices every clean unit's artifact bytes into the
// output — byte-identical to a full rebuild, because the artifacts *are*
// the bytes a full rebuild would produce.
//
// Both files are framed the same way the disk cache frames its entries:
// a magic + version line, a checksum line (util::fnv1a64 over the body),
// then the body.  Readers verify the frame and treat ANY defect —
// missing file, bad magic, version bump, checksum mismatch, malformed
// JSON, half-written garbage — as "no manifest": the build degrades to a
// full rebuild and rewrites the project state.  Corruption can cost
// time, never correctness.  Writes go through util::write_file_atomic
// (crash-safe; see DESIGN.md §15) with failpoint sites
// incr.manifest.store / incr.artifact.store for fault injection.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bb::incr {

/// Manifest/artifact format revision; readers reject (and builders
/// regenerate) anything else.  Bump on any framing or field change.
inline constexpr int kManifestVersion = 1;

/// File names inside a project directory.
inline constexpr const char* kManifestFile = "manifest.bbpm";
inline constexpr const char* kArtifactDir = "artifacts";

/// One synthesized controller a unit depends on: its clustered name and
/// the 16-hex digest of its synthesis-cache key (minimalist::cache_key
/// with the library version folded in).  The key digest is empty when
/// the flow configuration has no single cache key per controller (the
/// template baseline).  Diagnostics and the bench report dirty-set sizes
/// in controllers through these records.
struct ControllerRecord {
  std::string name;
  std::string key;
};

/// One unit (procedure) of the project.
struct UnitRecord {
  std::string name;      ///< procedure name (unique within the program)
  std::string digest;    ///< 16-hex digest of the unit's inputs
  std::string artifact;  ///< file name under artifacts/
  std::vector<ControllerRecord> controllers;
};

struct Manifest {
  std::string library;  ///< techmap::CellLibrary::fingerprint() at build
  std::string options;  ///< incr::options_fingerprint() at build
  std::vector<UnitRecord> units;  ///< declaration order of the program

  const UnitRecord* find(std::string_view name) const;
};

/// The exact output bytes of one unit's build.
struct Artifact {
  std::string report;   ///< flow::report(result) text
  std::string verilog;  ///< netlist::to_verilog of the unit's gates
};

// ---- serialization (pure; the disk layer frames these bytes) ----

std::string manifest_to_bytes(const Manifest& manifest);
/// Returns nullopt (and a one-line reason in `error`) on ANY defect.
std::optional<Manifest> manifest_from_bytes(std::string_view bytes,
                                            std::string* error = nullptr);

std::string artifact_to_bytes(const Artifact& artifact);
std::optional<Artifact> artifact_from_bytes(std::string_view bytes,
                                            std::string* error = nullptr);

/// "<unit>-<digest>.bba" with the unit name sanitized to [A-Za-z0-9_-]
/// so a hostile procedure name cannot escape the artifact directory.
std::string artifact_file_name(std::string_view unit, std::string_view digest);

// ---- project-directory I/O ----

std::string manifest_path(const std::string& project_dir);
std::string artifact_path(const std::string& project_dir,
                          std::string_view file_name);

/// Loads and verifies the manifest.  nullopt on any defect (reason in
/// `error`); the caller falls back to a full rebuild.
std::optional<Manifest> load_manifest(const std::string& project_dir,
                                      std::string* error = nullptr);

/// Atomically writes the manifest (creating the project directory).
/// Returns false on I/O failure — including an injected
/// incr.manifest.store failpoint — leaving any previous manifest intact.
bool store_manifest(const std::string& project_dir, const Manifest& manifest,
                    std::string* error = nullptr);

std::optional<Artifact> load_artifact(const std::string& project_dir,
                                      std::string_view file_name,
                                      std::string* error = nullptr);

/// Atomically writes one artifact (failpoint: incr.artifact.store).
bool store_artifact(const std::string& project_dir,
                    std::string_view file_name, const Artifact& artifact,
                    std::string* error = nullptr);

/// Removes artifact files the manifest no longer references (stale
/// digests of edited units, deleted units).  Returns how many were
/// removed.  Best-effort: unlink failures are skipped.
std::size_t gc_artifacts(const std::string& project_dir,
                         const Manifest& keep);

}  // namespace bb::incr
