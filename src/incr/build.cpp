#include "src/incr/build.hpp"

#include <chrono>
#include <utility>

#include "src/balsa/compile.hpp"
#include "src/balsa/digest.hpp"
#include "src/balsa/parser.hpp"
#include "src/balsa/printer.hpp"
#include "src/bm/compile.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/minimalist/cache.hpp"
#include "src/netlist/verilog.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/opt/cluster.hpp"
#include "src/techmap/cells.hpp"
#include "src/util/hash.hpp"
#include "src/util/json.hpp"

namespace bb::incr {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The controllers a unit's netlist resolves to, each with the digest of
/// its synthesis-cache key.  This re-runs the cheap front half of the
/// flow (Balsa-to-CH + clustering + CH-to-BMS, no synthesis); the
/// template baseline has no per-controller cache key, so it records
/// names only, from the synthesis result.
std::vector<ControllerRecord> controller_records(
    const hsnet::Netlist& net, const flow::FlowOptions& options,
    const flow::ControlResult& result, const std::string& library_fp) {
  std::vector<ControllerRecord> records;
  if (options.templates) {
    for (const flow::ControllerInfo& info : result.info) {
      records.push_back(ControllerRecord{info.name, ""});
    }
    return records;
  }
  opt::ClusterOptions copts;
  copts.max_states = options.max_states;
  auto clustered =
      options.cluster
          ? opt::optimize(hsnet::control_programs(net), copts, nullptr)
          : opt::wrap(hsnet::control_programs(net));
  for (const auto& c : clustered) {
    const auto spec = bm::compile(*c.program.body, c.program.name);
    records.push_back(ControllerRecord{
        c.program.name,
        util::content_digest(
            minimalist::cache_key(spec, options.mode, library_fp))});
  }
  return records;
}

/// Sums one rebuilt unit's stage times into the build-wide block.
void accumulate(flow::StageTimings* total, const flow::StageTimings& unit) {
  total->to_ch_ms += unit.to_ch_ms;
  total->cluster_ms += unit.cluster_ms;
  total->bm_compile_ms += unit.bm_compile_ms;
  total->minimalist_ms += unit.minimalist_ms;
  total->techmap_ms += unit.techmap_ms;
  total->lint_ms += unit.lint_ms;
  total->controllers_wall_ms += unit.controllers_wall_ms;
  total->jobs = unit.jobs;
  total->cache_hits += unit.cache_hits;
  total->cache_misses += unit.cache_misses;
  total->cache_disk_hits += unit.cache_disk_hits;
  for (const auto& c : unit.controllers) total->controllers.push_back(c);
}

}  // namespace

std::string options_fingerprint(const flow::FlowOptions& options) {
  // Every field here changes what bytes a successful build emits (or
  // whether it succeeds at all, for the lint configuration — a reused
  // artifact must never hide a finding a rebuild would have gated on).
  std::string image;
  image += "cluster " + std::to_string(options.cluster) + "\n";
  image += std::string("mode ") +
           (options.mode == minimalist::SynthMode::kSpeed ? "speed"
                                                          : "area") +
           "\n";
  image += "level_separated " + std::to_string(options.level_separated) +
           "\n";
  image += "max_states " + std::to_string(options.max_states) + "\n";
  image += "templates " + std::to_string(options.templates) + "\n";
  image += "lint " + std::to_string(options.lint) + "\n";
  image += "analyze " + std::to_string(options.analyze) + "\n";
  image += "strict " + std::to_string(options.strict) + "\n";
  image += "work_budget " +
           std::to_string(flow::effective_work_budget(options)) + "\n";
  const lint::LintOptions& lo = options.lint_options;
  image += "fanout_limit " + std::to_string(lo.fanout_limit) + "\n";
  image += "cone_eval_limit " + std::to_string(lo.cone_eval_limit) + "\n";
  for (const std::string& rule : lo.suppress) {
    image += "suppress " + rule + "\n";
  }
  for (const auto& [rule, severity] : lo.severity) {
    image += "severity " + rule + "=" +
             std::string(lint::severity_name(severity)) + "\n";
  }
  for (const lint::BaselineEntry& entry : lo.baseline) {
    image += "baseline " + entry.rule + "\t" + entry.object + "\n";
  }
  return util::content_digest(image);
}

std::string unit_digest(const balsa::Procedure& procedure,
                        const std::string& options_fp,
                        const std::string& library_fp) {
  return util::content_digest(balsa::to_source(procedure) + "\noptions " +
                              options_fp + "\nlib " + library_fp + "\n");
}

std::string BuildResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", obs::kSchemaVersion);
  w.member("full_rebuild", full_rebuild);
  if (!full_rebuild_reason.empty()) {
    w.member("full_rebuild_reason", full_rebuild_reason);
  }
  w.member("units_rebuilt", static_cast<std::uint64_t>(units_rebuilt));
  w.member("units_reused", static_cast<std::uint64_t>(units_reused));
  w.member("controllers_rebuilt", controllers_rebuilt);
  w.member("controllers_reused", controllers_reused);
  w.member("manifest_stored", manifest_stored);
  w.key("units").begin_array();
  for (const UnitOutcome& unit : units) {
    w.begin_object()
        .member("name", unit.name)
        .member("digest", unit.digest)
        .member("reused", unit.reused)
        .member("controllers", static_cast<std::uint64_t>(unit.controllers))
        .member("ms", unit.ms)
        .end_object();
  }
  w.end_array();
  w.key("timings").raw(timings.to_json());
  w.end_object();
  return w.str();
}

BuildResult build(std::string_view source, const std::string& project_dir,
                  const flow::FlowOptions& options) {
  const auto start = Clock::now();
  BuildResult out;
  obs::Span span("incr.build", obs::kCatIncr, &out.timings.total_ms);
  obs::Registry::global().counter("incr.builds").add();

  const auto procedures = balsa::parse_program(source);
  const std::string library_fp = techmap::CellLibrary::ams035().fingerprint();
  const std::string options_fp = options_fingerprint(options);

  // The previous build graph.  Any defect means nothing is reusable;
  // record why so operators can tell a first build from corruption.
  std::string manifest_error;
  const auto previous = load_manifest(project_dir, &manifest_error);
  if (!previous) {
    out.full_rebuild = true;
    out.full_rebuild_reason = manifest_error;
    obs::Registry::global().counter("incr.manifest.full_rebuilds").add();
  }

  Manifest next;
  next.library = library_fp;
  next.options = options_fp;

  for (const balsa::Procedure& procedure : procedures) {
    const auto unit_start = Clock::now();
    UnitOutcome outcome;
    outcome.name = procedure.name;
    outcome.digest = unit_digest(procedure, options_fp, library_fp);

    // Reuse path: same inputs, artifact present and intact.  A missing
    // or corrupt artifact silently demotes the unit to dirty — the
    // manifest is a promise about inputs, the artifact check is the
    // proof the outputs survived.
    if (previous) {
      if (const UnitRecord* record = previous->find(procedure.name);
          record != nullptr && record->digest == outcome.digest) {
        if (auto artifact = load_artifact(project_dir, record->artifact)) {
          outcome.reused = true;
          outcome.controllers = record->controllers.size();
          out.report += "== unit " + procedure.name + " ==\n" +
                        artifact->report;
          out.verilog += artifact->verilog;
          out.controllers_reused += record->controllers.size();
          ++out.units_reused;
          next.units.push_back(*record);
          out.units.push_back(std::move(outcome));
          continue;
        }
      }
    }

    // Dirty path: run the full flow for this unit.  Controllers shared
    // with other units (or with the previous build, in a daemon) still
    // come out of the synthesis-cache tiers as hits.
    obs::Span unit_span("incr.unit", obs::kCatIncr);
    unit_span.arg("unit", procedure.name);
    const auto net = balsa::compile(procedure);
    auto result = flow::synthesize_control(net, options);
    result.gates.set_name(procedure.name);

    Artifact artifact;
    artifact.report = flow::report(result);
    artifact.verilog = netlist::to_verilog(result.gates);

    UnitRecord record;
    record.name = procedure.name;
    record.digest = outcome.digest;
    record.artifact = artifact_file_name(procedure.name, outcome.digest);
    record.controllers = controller_records(net, options, result, library_fp);
    store_artifact(project_dir, record.artifact, artifact);

    outcome.controllers = record.controllers.size();
    outcome.ms = ms_since(unit_start);
    out.report += "== unit " + procedure.name + " ==\n" + artifact.report;
    out.verilog += artifact.verilog;
    out.controllers_rebuilt += result.timings.cache_misses;
    out.controllers_reused += result.timings.cache_hits;
    ++out.units_rebuilt;
    accumulate(&out.timings, result.timings);
    next.units.push_back(std::move(record));
    out.units.push_back(std::move(outcome));
  }

  out.timings.incr_units_reused = out.units_reused;
  out.timings.incr_units_rebuilt = out.units_rebuilt;
  out.timings.incr_controllers_reused = out.controllers_reused;
  out.timings.incr_controllers_rebuilt = out.controllers_rebuilt;

  // Publish the new graph only after every unit succeeded, then drop
  // artifacts nothing references anymore.  A failed store is not a
  // build failure — the output in hand is correct either way.
  std::string store_error;
  out.manifest_stored = store_manifest(project_dir, next, &store_error);
  if (out.manifest_stored) {
    gc_artifacts(project_dir, next);
  } else {
    obs::Registry::global().counter("incr.manifest.store_failures").add();
  }

  auto& registry = obs::Registry::global();
  registry.counter("incr.units.dirty").add(out.units_rebuilt);
  registry.counter("incr.units.reused").add(out.units_reused);
  registry.counter("incr.controllers.rebuilt").add(out.controllers_rebuilt);
  registry.counter("incr.controllers.reused").add(out.controllers_reused);

  span.finish();
  out.timings.total_ms = ms_since(start);
  return out;
}

}  // namespace bb::incr
