// The incremental synthesis driver: a build system for circuits.
//
// build() synthesizes a whole mini-Balsa program (one or more
// procedures) against a persistent project directory (manifest.hpp).
// Each procedure is a unit; a unit whose input digest matches the
// manifest is *reused* — its stored artifact bytes are spliced into the
// output with zero synthesis work — and only the dirty units run the
// flow.  Dirty units still reuse individual controllers through the
// ordinary synthesis-cache tiers (minimalist::SynthCache and, in the
// daemon, serve::DiskCache behind it), so an edit that leaves some of a
// unit's controllers structurally unchanged pays only for the changed
// ones.
//
// The contract is the one every correct build system honors: the
// incremental output is byte-identical to a full rebuild.  It holds
// because (a) the flow itself is deterministic, (b) artifacts store the
// exact bytes of the last build, and (c) anything that could change the
// bytes — source, effective options, technology library — is folded into
// the unit digest.  When the project state is unusable (first build,
// corrupted manifest, version bump), everything is dirty: slower, never
// wrong.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/balsa/ast.hpp"
#include "src/flow/flow.hpp"
#include "src/incr/manifest.hpp"

namespace bb::incr {

/// Environment variable naming the default project directory.
inline constexpr const char* kProjectDirEnv = "BB_PROJECT_DIR";

/// What happened to one unit this build.
struct UnitOutcome {
  std::string name;
  std::string digest;          ///< the unit's input digest
  bool reused = false;         ///< spliced from the manifest, no synthesis
  std::size_t controllers = 0; ///< controllers behind this unit
  double ms = 0.0;             ///< rebuild wall time (0 when reused)
};

struct BuildResult {
  std::vector<UnitOutcome> units;  ///< declaration order
  std::size_t units_rebuilt = 0;
  std::size_t units_reused = 0;
  /// No usable manifest (first build, corruption, version/library/option
  /// change detected at manifest level): every unit was dirty.
  bool full_rebuild = false;
  std::string full_rebuild_reason;  ///< empty when reuse was possible
  /// Controllers actually synthesized (cache misses in rebuilt units)
  /// vs. reused from any tier (cache hits + controllers of spliced
  /// units).
  std::uint64_t controllers_rebuilt = 0;
  std::uint64_t controllers_reused = 0;
  /// Spliced program output: per-unit report blocks / Verilog modules in
  /// declaration order.  Byte-identical to a full rebuild.
  std::string report;
  std::string verilog;
  /// Stage times summed over the rebuilt units, with the incr_* reuse
  /// counters filled in; total_ms is the whole build() wall time.
  flow::StageTimings timings;
  /// False when persisting the manifest failed (the build itself is
  /// still valid; the next build just rebuilds more).
  bool manifest_stored = true;

  /// Stable machine-readable rendering (bench artifacts, serve replies).
  std::string to_json() const;
};

/// Deterministic fingerprint of every FlowOptions field that can change
/// output bytes (clustering, mode, state cap, templates, lint and
/// analysis configuration, strictness, effective work budget).  Fields
/// proven byte-neutral — jobs, cache, cache_instance, trace/metrics
/// paths — are excluded, so turning the cache off or changing the worker
/// count never dirties a project.
std::string options_fingerprint(const flow::FlowOptions& options);

/// One unit's input digest: canonical procedure source + options
/// fingerprint + library fingerprint.
std::string unit_digest(const balsa::Procedure& procedure,
                        const std::string& options_fp,
                        const std::string& library_fp);

/// Builds `source` (a whole program) incrementally against
/// `project_dir`, updating the manifest and artifacts on success.
/// Throws (ParseError / CompileError / FlowError / LintError) exactly
/// like the underlying flow; the manifest is only rewritten after every
/// unit succeeded, so a failed build never poisons the project state.
BuildResult build(std::string_view source, const std::string& project_dir,
                  const flow::FlowOptions& options);

}  // namespace bb::incr
