// Burst-Mode (BM) controller specifications (paper Section 3.6).
//
// A BM machine is a Mealy-style state graph.  Each arc carries an input
// burst (a set of input edges that may arrive in any order) followed by an
// output burst (a set of output edges generated once the whole input burst
// has arrived).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/ch/ast.hpp"

namespace bb::bm {

/// A set of signal edges.  Transitions are unordered within a burst.
struct Burst {
  std::vector<ch::Transition> transitions;

  bool empty() const { return transitions.empty(); }
  std::size_t size() const { return transitions.size(); }

  /// True if every transition of `other` appears in this burst.
  bool contains(const Burst& other) const;

  /// Canonical text, transitions sorted by signal: "a_r+ b_r+".
  std::string to_string() const;

  /// Sorts transitions by signal name (canonical form).
  void normalize();

  bool operator==(const Burst& other) const;
};

/// A specification arc: from --[in_burst / out_burst]--> to.
struct Arc {
  int from = 0;
  int to = 0;
  Burst in_burst;
  Burst out_burst;
};

/// A complete Burst-Mode specification.
struct Spec {
  std::string name;
  int num_states = 0;
  int initial_state = 0;
  std::vector<Arc> arcs;
  /// Signal directory: name -> true if input.
  std::map<std::string, bool> is_input;

  std::vector<std::string> input_names() const;
  std::vector<std::string> output_names() const;

  /// Arcs leaving `state`.
  std::vector<const Arc*> arcs_from(int state) const;

  /// Renders in the textual ".bms" format used by Burst-Mode tools:
  ///   name <name> / input <sig> <initial> / output <sig> <initial> /
  ///   <from> <to> <in burst> | <out burst>
  std::string to_bms() const;

  /// Stable, name-free serialization used as a content-address for the
  /// synthesis cache: signals are renamed to their positional index in
  /// the machine's variable order ("i<k>" for the k-th input, "o<k>" for
  /// the k-th output), burst transitions are sorted, and arcs keep their
  /// stored order (arc order influences minimization, burst order does
  /// not).  Two specs with equal canonical forms synthesize to the same
  /// controller up to signal names.
  std::string to_canonical() const;

  /// Graphviz rendering for inspection.
  std::string to_dot() const;
};

}  // namespace bb::bm
