#include "src/bm/spec.hpp"

#include <algorithm>

namespace bb::bm {

bool Burst::contains(const Burst& other) const {
  for (const ch::Transition& t : other.transitions) {
    if (std::find(transitions.begin(), transitions.end(), t) ==
        transitions.end()) {
      return false;
    }
  }
  return true;
}

void Burst::normalize() {
  std::sort(transitions.begin(), transitions.end(),
            [](const ch::Transition& a, const ch::Transition& b) {
              if (a.signal != b.signal) return a.signal < b.signal;
              return a.rising < b.rising;
            });
}

std::string Burst::to_string() const {
  Burst copy = *this;
  copy.normalize();
  std::string s;
  for (std::size_t i = 0; i < copy.transitions.size(); ++i) {
    if (i > 0) s += " ";
    s += copy.transitions[i].signal + (copy.transitions[i].rising ? "+" : "-");
  }
  return s;
}

bool Burst::operator==(const Burst& other) const {
  return contains(other) && other.contains(*this);
}

std::vector<std::string> Spec::input_names() const {
  std::vector<std::string> out;
  for (const auto& [name, is_in] : is_input) {
    if (is_in) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Spec::output_names() const {
  std::vector<std::string> out;
  for (const auto& [name, is_in] : is_input) {
    if (!is_in) out.push_back(name);
  }
  return out;
}

std::vector<const Arc*> Spec::arcs_from(int state) const {
  std::vector<const Arc*> out;
  for (const Arc& a : arcs) {
    if (a.from == state) out.push_back(&a);
  }
  return out;
}

std::string Spec::to_bms() const {
  std::string s = "name " + name + "\n";
  for (const std::string& in : input_names()) s += "input " + in + " 0\n";
  for (const std::string& out : output_names()) s += "output " + out + " 0\n";
  for (const Arc& a : arcs) {
    s += std::to_string(a.from) + " " + std::to_string(a.to) + " " +
         a.in_burst.to_string() + " | " + a.out_burst.to_string() + "\n";
  }
  return s;
}

std::string Spec::to_canonical() const {
  std::map<std::string, std::string> rename;
  const auto positional = [&rename](const std::vector<std::string>& names,
                                    char tag) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::string label(1, tag);
      label += std::to_string(i);
      rename[names[i]] = std::move(label);
    }
  };
  const std::vector<std::string> ins = input_names();
  positional(ins, 'i');
  const std::vector<std::string> outs = output_names();
  positional(outs, 'o');

  const auto burst_canon = [&](const Burst& burst) {
    std::vector<std::string> tokens;
    tokens.reserve(burst.transitions.size());
    for (const ch::Transition& t : burst.transitions) {
      tokens.push_back(rename.at(t.signal) + (t.rising ? "+" : "-"));
    }
    std::sort(tokens.begin(), tokens.end());
    std::string s;
    for (const std::string& token : tokens) s += token + " ";
    return s;
  };

  std::string s = "states ";
  s += std::to_string(num_states);
  s += " init ";
  s += std::to_string(initial_state);
  s += " inputs ";
  s += std::to_string(ins.size());
  s += " outputs ";
  s += std::to_string(outs.size());
  s += "\n";
  for (const Arc& a : arcs) {
    s += std::to_string(a.from);
    s += ">";
    s += std::to_string(a.to);
    s += " ";
    s += burst_canon(a.in_burst);
    s += "| ";
    s += burst_canon(a.out_burst);
    s += "\n";
  }
  return s;
}

std::string Spec::to_dot() const {
  std::string s = "digraph \"" + name + "\" {\n  rankdir=TB;\n";
  s += "  init [shape=point];\n  init -> s" +
       std::to_string(initial_state) + ";\n";
  for (int i = 0; i < num_states; ++i) {
    s += "  s" + std::to_string(i) + " [label=\"" + std::to_string(i) +
         "\"];\n";
  }
  for (const Arc& a : arcs) {
    s += "  s" + std::to_string(a.from) + " -> s" + std::to_string(a.to) +
         " [label=\"" + a.in_burst.to_string() + " /\\n" +
         a.out_burst.to_string() + "\"];\n";
  }
  return s + "}\n";
}

}  // namespace bb::bm
