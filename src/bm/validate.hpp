// Burst-Mode well-formedness checks.
//
// A compiled specification is a *valid* BM machine when:
//   1. every signal is used with a single direction (input xor output);
//   2. every arc's input burst is non-empty (machines are input-driven);
//   3. arcs leaving a common state satisfy the maximal set property:
//      no input burst is a subset of (or equal to) a sibling's;
//   4. signal polarities are consistent: along every path each wire
//      strictly alternates rising and falling edges, and every state is
//      entered with a unique wire valuation.
// These are the conditions the paper's "Burst-Mode aware" restrictions
// guarantee by construction (Section 3.5).
#pragma once

#include <string>
#include <vector>

#include "src/bm/spec.hpp"

namespace bb::bm {

struct ValidationResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
};

ValidationResult validate(const Spec& spec);

}  // namespace bb::bm
