// Burst-Mode well-formedness checks.
//
// A compiled specification is a *valid* BM machine when:
//   1. every signal is used with a single direction (input xor output);
//   2. every arc's input burst is non-empty (machines are input-driven);
//   3. arcs leaving a common state satisfy the maximal set property:
//      no input burst is a subset of (or equal to) a sibling's;
//   4. signal polarities are consistent: along every path each wire
//      strictly alternates rising and falling edges, and every state is
//      entered with a unique wire valuation.
// These are the conditions the paper's "Burst-Mode aware" restrictions
// guarantee by construction (Section 3.5).
//
// Each violation is reported through the shared diagnostics framework
// (src/lint/diag.hpp) with a stable rule id naming the exact signal, arc,
// or state at fault:
//   BM001  signal used as both input and output
//   BM002  arc with an empty input burst
//   BM003  nondeterministic choice (identical sibling input bursts)
//   BM004  maximal-set violation (burst contained in a sibling's)
//   BM005  polarity violation (non-alternating edge)
//   BM006  state entered with inconsistent wire valuations
//   BM007  state unreachable from the initial state (warning)
#pragma once

#include <string>
#include <vector>

#include "src/bm/spec.hpp"
#include "src/lint/diag.hpp"

namespace bb::bm {

struct ValidationResult {
  /// True when no Error-severity diagnostic was reported (warnings such
  /// as unreachable states do not invalidate a machine).
  bool ok = true;
  /// Error diagnostics flattened to "object: message" strings, in report
  /// order (kept for callers that only need a headline).
  std::vector<std::string> errors;
  /// The full structured findings, including warnings.
  lint::Report report;
};

ValidationResult validate(const Spec& spec);

}  // namespace bb::bm
