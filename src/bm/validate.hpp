// Burst-Mode well-formedness checks.
//
// A compiled specification is a *valid* BM machine when:
//   1. every signal is used with a single direction (input xor output);
//   2. every arc's input burst is non-empty (machines are input-driven);
//   3. arcs leaving a common state satisfy the maximal set property:
//      no input burst is a subset of (or equal to) a sibling's;
//   4. signal polarities are consistent: along every path each wire
//      strictly alternates rising and falling edges, and every state is
//      entered with a unique wire valuation.
// These are the conditions the paper's "Burst-Mode aware" restrictions
// guarantee by construction (Section 3.5).
//
// Each violation is reported through the shared diagnostics framework
// (src/lint/diag.hpp) with a stable rule id naming the exact signal, arc,
// or state at fault:
//   BM001  signal used as both input and output
//   BM002  arc with an empty input burst
//   BM003  nondeterministic choice (identical sibling input bursts)
//   BM004  maximal-set violation (burst contained in a sibling's)
//   BM005  polarity violation (non-alternating edge)
//   BM006  state entered with inconsistent wire valuations
//   BM007  state unreachable from the initial state (warning)
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/bm/spec.hpp"
#include "src/lint/diag.hpp"

namespace bb::bm {

struct ValidationResult {
  /// True when no Error-severity diagnostic was reported (warnings such
  /// as unreachable states do not invalidate a machine).
  bool ok = true;
  /// Error diagnostics flattened to "object: message" strings, in report
  /// order (kept for callers that only need a headline).
  std::vector<std::string> errors;
  /// The full structured findings, including warnings.
  lint::Report report;
};

ValidationResult validate(const Spec& spec);

/// Environment-adjacency analysis (BM008, the "delayed acknowledgment"
/// condition).  A 4-phase environment answers every request the machine
/// emits as soon as it likes: after output `c_r+` the input `c_a+` is
/// *pending* and may arrive in any later state.  Plain (non-extended)
/// Burst-Mode machines only tolerate input edges listed in the current
/// state's input bursts, so a pending input edge that can linger
/// unconsumed across two consecutive reachable states breaks the
/// fundamental-mode contract — the synthesized logic is free to misread
/// the early edge and, e.g., run a handshake twice.  A single state of
/// earliness (the edge is consumed by the next state's bursts) is the
/// ordinary input-burst overlap an implementation absorbs and is not
/// flagged.  Returns one description per (state, edge) violation, empty
/// when the machine is adjacency-clean.
///
/// Only *causally forced* responses count as pending: `X_r±` forces the
/// ack `X_a±`, and `X_a+` forces the return-to-zero `X_r-`.  A falling
/// ack `X_a-` merely permits the partner's next request `X_r+`, which
/// arrives when the partner's own program reaches that point — waiting
/// for it in a later choice state is exactly how Burst-Mode machines
/// express input choice, so it is never flagged.  Signals that do not
/// pair up under the `_r`/`_a` naming convention are skipped.
///
/// This is deliberately not part of validate(): stand-alone controller
/// templates are adjacency-clean by construction, and the check exists
/// to let the clusterer reject enclosure substitutions that push an
/// acknowledgment arbitrarily far from its request.
///
/// Two shapes are flagged:
///   - an edge stuck (pending, unconsumable) at a state *and* still stuck
///     at a successor — it lingers across two states;
///   - an arc whose entire input burst is early-capable — with no
///     compulsory (freshly forced) trigger left, the implementation has
///     no edge to pin the transition to.
std::vector<std::string> adjacency_violations(const Spec& spec);

/// Per-state sets of input edges (signal, rising) that are *early-capable*:
/// while the machine sits in state `s` the edge may arrive at any moment,
/// not just as the fundamental-mode response to the arc that entered `s`.
/// An edge is early-capable when it is
///   - stuck: pending at `s` but consumed by no arc leaving `s` (the
///     environment answers while the state's logic never mentioned it), or
///   - carried: already pending when `s` was entered (forced two or more
///     arcs ago), so it races the handoff into `s` and any trigger of `s`,
///     even when an arc from `s` does consume it.
/// The synthesis back-end must treat such signals as don't-cares in every
/// cube anchored at `s`, and must pin dynamic transitions that consume
/// them to the remaining compulsory triggers — pinning the signal to the
/// state's entry valuation leaves the circuit uncovered (and free to
/// glitch) the moment the edge arrives early.  Indexed by state;
/// unreachable states get empty sets.
std::vector<std::set<std::pair<std::string, bool>>> early_edges(
    const Spec& spec);

/// Signal-name projection of early_edges(), for callers that only dash
/// input variables.
std::vector<std::set<std::string>> early_inputs(const Spec& spec);

}  // namespace bb::bm
