#include "src/bm/parse.hpp"

#include <algorithm>

#include "src/util/strings.hpp"

namespace bb::bm {

namespace {

ch::Transition parse_edge(const std::string& token, bool is_input) {
  if (token.size() < 2 ||
      (token.back() != '+' && token.back() != '-')) {
    throw BmsParseError("bad signal edge '" + token + "'");
  }
  ch::Transition t;
  t.signal = token.substr(0, token.size() - 1);
  t.rising = token.back() == '+';
  t.is_input = is_input;
  return t;
}

}  // namespace

Spec parse_bms(std::string_view text) {
  Spec spec;
  int max_state = -1;

  for (const std::string& raw : util::split(text, "\n")) {
    const std::string line(util::trim(raw));
    if (line.empty() || line[0] == '#') continue;

    const auto tokens = util::split(line, " \t");
    if (tokens[0] == "name") {
      spec.name = tokens.size() > 1 ? tokens[1] : "";
      continue;
    }
    if (tokens[0] == "input" || tokens[0] == "output") {
      if (tokens.size() < 2) throw BmsParseError("bad signal line: " + line);
      spec.is_input[tokens[1]] = tokens[0] == "input";
      continue;
    }

    // Arc line: <from> <to> <in burst> | <out burst>
    if (tokens.size() < 3) throw BmsParseError("bad arc line: " + line);
    Arc arc;
    const auto state_number = [&](const std::string& token) {
      const auto value = util::parse_ll(token);
      if (!value || *value < 0 || *value > 1000000) {
        throw BmsParseError("bad state number '" + token +
                            "' (expected 0..1000000) in: " + line);
      }
      return static_cast<int>(*value);
    };
    arc.from = state_number(tokens[0]);
    arc.to = state_number(tokens[1]);
    bool after_bar = false;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      if (tokens[i] == "|") {
        after_bar = true;
        continue;
      }
      const auto edge = parse_edge(tokens[i], /*is_input=*/!after_bar);
      if (after_bar) {
        arc.out_burst.transitions.push_back(edge);
      } else {
        arc.in_burst.transitions.push_back(edge);
      }
    }
    if (!after_bar) throw BmsParseError("missing '|' in arc line: " + line);
    for (const auto& t : arc.in_burst.transitions) {
      spec.is_input[t.signal] = true;
    }
    for (const auto& t : arc.out_burst.transitions) {
      spec.is_input[t.signal] = false;
    }
    max_state = std::max({max_state, arc.from, arc.to});
    spec.arcs.push_back(std::move(arc));
  }
  spec.num_states = max_state + 1;
  spec.initial_state = 0;
  if (spec.arcs.empty()) throw BmsParseError("no arcs in specification");
  return spec;
}

}  // namespace bb::bm
