// CH-to-BMS: compiles a CH program into a Burst-Mode specification
// (paper Section 3.6).
//
// Step 1 flattens the four-phase expansion into the intermediate form (a
// linear list of transitions, labels, gotos and choice blocks); step 2
// walks that list, creating states at burst boundaries, arcs annotated
// with input/output bursts, and back-edges for gotos.
#pragma once

#include "src/bm/spec.hpp"
#include "src/ch/expansion.hpp"

namespace bb::bm {

/// Compiles a CH expression to a Burst-Mode specification.
/// Throws ch::BmAwareError if the expression violates Table 1 (unless
/// `options.allow_illegal` is set).
Spec compile(const ch::Expr& expr, const std::string& name = "",
             const ch::ExpandOptions& options = {});

/// Compiles an already-flattened intermediate form.
Spec compile_items(const ch::ItemSeq& items, const std::string& name = "");

}  // namespace bb::bm
