#include "src/bm/validate.hpp"

#include <deque>
#include <map>
#include <optional>

namespace bb::bm {

namespace {

using Valuation = std::map<std::string, bool>;

/// Applies a burst to a valuation; returns an error message on polarity
/// violation.
std::optional<std::string> apply_burst(const Burst& burst, Valuation& vals,
                                       const std::string& where) {
  for (const ch::Transition& t : burst.transitions) {
    const bool current = vals.count(t.signal) ? vals[t.signal] : false;
    if (current == t.rising) {
      return "polarity violation on '" + t.signal + "' (" +
             (t.rising ? "+" : "-") + " while already " +
             (current ? "1" : "0") + ") at " + where;
    }
    vals[t.signal] = t.rising;
  }
  return std::nullopt;
}

}  // namespace

ValidationResult validate(const Spec& spec) {
  ValidationResult result;

  // 1. Direction consistency.
  std::map<std::string, bool> direction;  // signal -> is_input
  for (const Arc& a : spec.arcs) {
    for (const ch::Transition& t : a.in_burst.transitions) {
      const auto [it, inserted] = direction.emplace(t.signal, true);
      if (!inserted && !it->second) {
        result.fail("signal '" + t.signal + "' used as both input and output");
      }
    }
    for (const ch::Transition& t : a.out_burst.transitions) {
      const auto [it, inserted] = direction.emplace(t.signal, false);
      if (!inserted && it->second) {
        result.fail("signal '" + t.signal + "' used as both input and output");
      }
    }
  }

  // 2. Non-empty input bursts.
  for (const Arc& a : spec.arcs) {
    if (a.in_burst.empty()) {
      result.fail("arc " + std::to_string(a.from) + "->" +
                  std::to_string(a.to) + " has an empty input burst");
    }
  }

  // 3. Maximal set property per state.
  for (int s = 0; s < spec.num_states; ++s) {
    const auto arcs = spec.arcs_from(s);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      for (std::size_t j = 0; j < arcs.size(); ++j) {
        if (i == j) continue;
        if (arcs[j]->in_burst.contains(arcs[i]->in_burst)) {
          result.fail("state " + std::to_string(s) +
                      ": input burst {" + arcs[i]->in_burst.to_string() +
                      "} is contained in sibling burst {" +
                      arcs[j]->in_burst.to_string() +
                      "} (maximal set property violated)");
        }
      }
    }
  }

  // 4. Polarity / unique-entry-valuation consistency via BFS.
  std::map<int, Valuation> state_vals;
  std::deque<int> queue;
  Valuation all_low;
  for (const auto& entry : direction) all_low[entry.first] = false;
  state_vals[spec.initial_state] = std::move(all_low);
  queue.push_back(spec.initial_state);
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (const Arc* a : spec.arcs_from(s)) {
      Valuation vals = state_vals[s];
      const std::string where = "arc " + std::to_string(a->from) + "->" +
                                std::to_string(a->to);
      if (const auto err = apply_burst(a->in_burst, vals, where)) {
        result.fail(*err);
        continue;
      }
      if (const auto err = apply_burst(a->out_burst, vals, where)) {
        result.fail(*err);
        continue;
      }
      const auto it = state_vals.find(a->to);
      if (it == state_vals.end()) {
        state_vals[a->to] = std::move(vals);
        queue.push_back(a->to);
      } else if (it->second != vals) {
        result.fail("state " + std::to_string(a->to) +
                    " entered with inconsistent wire valuations");
      }
    }
  }

  return result;
}

}  // namespace bb::bm
