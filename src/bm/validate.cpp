#include "src/bm/validate.hpp"

#include <deque>
#include <map>
#include <set>

namespace bb::bm {

namespace {

using Valuation = std::map<std::string, bool>;

std::string arc_name(const Arc& a) {
  return "arc " + std::to_string(a.from) + "->" + std::to_string(a.to);
}

std::string edge_name(const ch::Transition& t) {
  return t.signal + (t.rising ? "+" : "-");
}

std::string valuation_string(const Valuation& vals) {
  std::string s = "{";
  bool first = true;
  for (const auto& [signal, value] : vals) {
    if (!first) s += " ";
    first = false;
    s += signal + "=" + (value ? "1" : "0");
  }
  return s + "}";
}

/// Applies a burst to a valuation, reporting BM005 for every edge that
/// does not alternate.  Returns false when a violation was found.
bool apply_burst(const Burst& burst, Valuation& vals, const Arc& arc,
                 const char* which, lint::Report& report) {
  bool clean = true;
  for (const ch::Transition& t : burst.transitions) {
    const bool current = vals.count(t.signal) ? vals[t.signal] : false;
    if (current == t.rising) {
      report.add("BM005", arc_name(arc),
                 std::string(which) + " burst repeats edge '" + edge_name(t) +
                     "' while '" + t.signal + "' is already " +
                     (current ? "1" : "0") + "; along every path a wire must "
                     "strictly alternate rising and falling edges (entered "
                     "with valuation " + valuation_string(vals) + ")");
      clean = false;
      continue;
    }
    vals[t.signal] = t.rising;
  }
  return clean;
}

}  // namespace

ValidationResult validate(const Spec& spec) {
  ValidationResult result;
  lint::Report& report = result.report;

  // 1. Direction consistency (BM001).  Remember the first arc that used
  // each signal in each direction so the message names both witnesses.
  struct DirUse {
    bool is_input = false;
    const Arc* first_use = nullptr;
  };
  std::map<std::string, DirUse> direction;
  std::set<std::string> reported_bidi;
  const auto use_signal = [&](const ch::Transition& t, bool as_input,
                              const Arc& a) {
    const auto [it, inserted] =
        direction.emplace(t.signal, DirUse{as_input, &a});
    if (!inserted && it->second.is_input != as_input &&
        reported_bidi.insert(t.signal).second) {
      const Arc& other = *it->second.first_use;
      report.add("BM001", "signal '" + t.signal + "'",
                 std::string("used as an ") + (as_input ? "input" : "output") +
                     " in " + arc_name(a) + " but as an " +
                     (as_input ? "output" : "input") + " in " +
                     arc_name(other) +
                     "; a Burst-Mode wire must have a single direction");
    }
  };
  for (const Arc& a : spec.arcs) {
    for (const ch::Transition& t : a.in_burst.transitions) {
      use_signal(t, /*as_input=*/true, a);
    }
    for (const ch::Transition& t : a.out_burst.transitions) {
      use_signal(t, /*as_input=*/false, a);
    }
  }

  // 2. Non-empty input bursts (BM002).
  for (const Arc& a : spec.arcs) {
    if (a.in_burst.empty()) {
      report.add("BM002", arc_name(a),
                 "input burst is empty; every arc must be triggered by at "
                 "least one input edge (machines are input-driven), with "
                 "output burst {" + a.out_burst.to_string() + "}");
    }
  }

  // 3. Determinism and the maximal set property per state (BM003/BM004).
  for (int s = 0; s < spec.num_states; ++s) {
    const auto arcs = spec.arcs_from(s);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      for (std::size_t j = 0; j < arcs.size(); ++j) {
        if (i == j) continue;
        const Burst& bi = arcs[i]->in_burst;
        const Burst& bj = arcs[j]->in_burst;
        if (bi == bj) {
          // Report each unordered pair once.
          if (i < j) {
            report.add("BM003", "state " + std::to_string(s),
                       arc_name(*arcs[i]) + " and " + arc_name(*arcs[j]) +
                           " have the identical input burst {" +
                           bi.to_string() +
                           "}; the machine cannot choose between them");
          }
          continue;
        }
        if (bj.contains(bi)) {
          report.add("BM004", "state " + std::to_string(s),
                     "input burst {" + bi.to_string() + "} of " +
                         arc_name(*arcs[i]) +
                         " is contained in sibling burst {" + bj.to_string() +
                         "} of " + arc_name(*arcs[j]) + "; " +
                         arc_name(*arcs[i]) +
                         " would fire spuriously while the larger burst is "
                         "still arriving (maximal set property, Section 3.5)");
        }
      }
    }
  }

  // 4. Polarity / unique-entry-valuation consistency via BFS over the
  // reachable part of the machine (BM005/BM006), then reachability
  // itself (BM007).
  std::map<int, Valuation> state_vals;
  std::deque<int> queue;
  Valuation all_low;
  for (const auto& entry : direction) all_low[entry.first] = false;
  state_vals[spec.initial_state] = std::move(all_low);
  queue.push_back(spec.initial_state);
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (const Arc* a : spec.arcs_from(s)) {
      Valuation vals = state_vals[s];
      if (!apply_burst(a->in_burst, vals, *a, "input", report)) continue;
      if (!apply_burst(a->out_burst, vals, *a, "output", report)) continue;
      const auto it = state_vals.find(a->to);
      if (it == state_vals.end()) {
        state_vals[a->to] = std::move(vals);
        queue.push_back(a->to);
      } else if (it->second != vals) {
        std::string differing;
        for (const auto& [signal, value] : vals) {
          const auto prev = it->second.find(signal);
          if (prev == it->second.end() || prev->second != value) {
            if (!differing.empty()) differing += ", ";
            differing += signal;
          }
        }
        report.add("BM006", "state " + std::to_string(a->to),
                   "entered with valuation " + valuation_string(vals) +
                       " via " + arc_name(*a) + " but with " +
                       valuation_string(it->second) +
                       " via an earlier path; signals differing: " +
                       (differing.empty() ? "(none)" : differing));
      }
    }
  }
  for (int s = 0; s < spec.num_states; ++s) {
    if (!state_vals.count(s)) {
      report.add("BM007", "state " + std::to_string(s),
                 "unreachable from initial state " +
                     std::to_string(spec.initial_state) +
                     "; it can never be entered and its arcs are dead");
    }
  }

  result.ok = !report.has_errors();
  for (const lint::Diagnostic* d :
       report.by_severity(lint::Severity::kError)) {
    result.errors.push_back(d->object + ": " + d->message);
  }
  return result;
}

}  // namespace bb::bm
