#include "src/bm/validate.hpp"

#include <deque>
#include <map>
#include <set>

namespace bb::bm {

namespace {

using Valuation = std::map<std::string, bool>;

std::string arc_name(const Arc& a) {
  return "arc " + std::to_string(a.from) + "->" + std::to_string(a.to);
}

std::string edge_name(const ch::Transition& t) {
  return t.signal + (t.rising ? "+" : "-");
}

std::string valuation_string(const Valuation& vals) {
  std::string s = "{";
  bool first = true;
  for (const auto& [signal, value] : vals) {
    if (!first) s += " ";
    first = false;
    s += signal + "=" + (value ? "1" : "0");
  }
  return s + "}";
}

/// Applies a burst to a valuation, reporting BM005 for every edge that
/// does not alternate.  Returns false when a violation was found.
bool apply_burst(const Burst& burst, Valuation& vals, const Arc& arc,
                 const char* which, lint::Report& report) {
  bool clean = true;
  for (const ch::Transition& t : burst.transitions) {
    const bool current = vals.count(t.signal) ? vals[t.signal] : false;
    if (current == t.rising) {
      report.add("BM005", arc_name(arc),
                 std::string(which) + " burst repeats edge '" + edge_name(t) +
                     "' while '" + t.signal + "' is already " +
                     (current ? "1" : "0") + "; along every path a wire must "
                     "strictly alternate rising and falling edges (entered "
                     "with valuation " + valuation_string(vals) + ")");
      clean = false;
      continue;
    }
    vals[t.signal] = t.rising;
  }
  return clean;
}

}  // namespace

ValidationResult validate(const Spec& spec) {
  ValidationResult result;
  lint::Report& report = result.report;

  // 1. Direction consistency (BM001).  Remember the first arc that used
  // each signal in each direction so the message names both witnesses.
  struct DirUse {
    bool is_input = false;
    const Arc* first_use = nullptr;
  };
  std::map<std::string, DirUse> direction;
  std::set<std::string> reported_bidi;
  const auto use_signal = [&](const ch::Transition& t, bool as_input,
                              const Arc& a) {
    const auto [it, inserted] =
        direction.emplace(t.signal, DirUse{as_input, &a});
    if (!inserted && it->second.is_input != as_input &&
        reported_bidi.insert(t.signal).second) {
      const Arc& other = *it->second.first_use;
      report.add("BM001", "signal '" + t.signal + "'",
                 std::string("used as an ") + (as_input ? "input" : "output") +
                     " in " + arc_name(a) + " but as an " +
                     (as_input ? "output" : "input") + " in " +
                     arc_name(other) +
                     "; a Burst-Mode wire must have a single direction");
    }
  };
  for (const Arc& a : spec.arcs) {
    for (const ch::Transition& t : a.in_burst.transitions) {
      use_signal(t, /*as_input=*/true, a);
    }
    for (const ch::Transition& t : a.out_burst.transitions) {
      use_signal(t, /*as_input=*/false, a);
    }
  }

  // 2. Non-empty input bursts (BM002).
  for (const Arc& a : spec.arcs) {
    if (a.in_burst.empty()) {
      report.add("BM002", arc_name(a),
                 "input burst is empty; every arc must be triggered by at "
                 "least one input edge (machines are input-driven), with "
                 "output burst {" + a.out_burst.to_string() + "}");
    }
  }

  // 3. Determinism and the maximal set property per state (BM003/BM004).
  for (int s = 0; s < spec.num_states; ++s) {
    const auto arcs = spec.arcs_from(s);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      for (std::size_t j = 0; j < arcs.size(); ++j) {
        if (i == j) continue;
        const Burst& bi = arcs[i]->in_burst;
        const Burst& bj = arcs[j]->in_burst;
        if (bi == bj) {
          // Report each unordered pair once.
          if (i < j) {
            report.add("BM003", "state " + std::to_string(s),
                       arc_name(*arcs[i]) + " and " + arc_name(*arcs[j]) +
                           " have the identical input burst {" +
                           bi.to_string() +
                           "}; the machine cannot choose between them");
          }
          continue;
        }
        if (bj.contains(bi)) {
          report.add("BM004", "state " + std::to_string(s),
                     "input burst {" + bi.to_string() + "} of " +
                         arc_name(*arcs[i]) +
                         " is contained in sibling burst {" + bj.to_string() +
                         "} of " + arc_name(*arcs[j]) + "; " +
                         arc_name(*arcs[i]) +
                         " would fire spuriously while the larger burst is "
                         "still arriving (maximal set property, Section 3.5)");
        }
      }
    }
  }

  // 4. Polarity / unique-entry-valuation consistency via BFS over the
  // reachable part of the machine (BM005/BM006), then reachability
  // itself (BM007).
  std::map<int, Valuation> state_vals;
  std::deque<int> queue;
  Valuation all_low;
  for (const auto& entry : direction) all_low[entry.first] = false;
  state_vals[spec.initial_state] = std::move(all_low);
  queue.push_back(spec.initial_state);
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (const Arc* a : spec.arcs_from(s)) {
      Valuation vals = state_vals[s];
      if (!apply_burst(a->in_burst, vals, *a, "input", report)) continue;
      if (!apply_burst(a->out_burst, vals, *a, "output", report)) continue;
      const auto it = state_vals.find(a->to);
      if (it == state_vals.end()) {
        state_vals[a->to] = std::move(vals);
        queue.push_back(a->to);
      } else if (it->second != vals) {
        std::string differing;
        for (const auto& [signal, value] : vals) {
          const auto prev = it->second.find(signal);
          if (prev == it->second.end() || prev->second != value) {
            if (!differing.empty()) differing += ", ";
            differing += signal;
          }
        }
        report.add("BM006", "state " + std::to_string(a->to),
                   "entered with valuation " + valuation_string(vals) +
                       " via " + arc_name(*a) + " but with " +
                       valuation_string(it->second) +
                       " via an earlier path; signals differing: " +
                       (differing.empty() ? "(none)" : differing));
      }
    }
  }
  for (int s = 0; s < spec.num_states; ++s) {
    if (!state_vals.count(s)) {
      report.add("BM007", "state " + std::to_string(s),
                 "unreachable from initial state " +
                     std::to_string(spec.initial_state) +
                     "; it can never be entered and its arcs are dead");
    }
  }

  result.ok = !report.has_errors();
  for (const lint::Diagnostic* d :
       report.by_severity(lint::Severity::kError)) {
    result.errors.push_back(d->object + ": " + d->message);
  }
  return result;
}

namespace {

/// signal+polarity, ordered so it can key a std::set.
using Edge = std::pair<std::string, bool>;

/// The input edge a 4-phase environment is *forced* to produce in
/// response to an emitted output edge: `c_r±` forces the matching ack
/// `c_a±`, and `c_a+` forces the return-to-zero `c_r-`.  The fourth
/// pairing — `c_a-` re-enabling `c_r+` — is deliberately excluded: the
/// falling ack only *permits* the next transaction, and the partner
/// starts it when its own program reaches that point, which a Burst-Mode
/// choice state is allowed to wait for.  Returns false for the excluded
/// pairing and for signals outside the `_r`/`_a` convention.
bool complement_input(const ch::Transition& out, Edge& in) {
  const std::string& s = out.signal;
  if (s.size() < 2 || s[s.size() - 2] != '_') return false;
  const char role = s.back();
  const std::string base = s.substr(0, s.size() - 2);
  if (role == 'r') {
    in = {base + "_a", out.rising};
    return true;
  }
  if (role == 'a' && out.rising) {
    in = {base + "_r", false};
    return true;
  }
  return false;
}

/// Forward pending-edge fixpoint over the reachable states.
struct PendingAnalysis {
  /// Edges pending at the state but consumed by no arc leaving it.
  std::vector<std::set<Edge>> stuck;
  /// Edges already pending when the state was entered (carried over from
  /// a predecessor rather than forced by the entering arc's own outputs).
  /// These race the handoff and every trigger of the state, so they are
  /// early-capable even when an arc from the state consumes them.
  std::vector<std::set<Edge>> carried;
  std::vector<bool> reachable;
};

PendingAnalysis pending_analysis(const Spec& spec) {
  PendingAnalysis out;
  if (spec.num_states <= 0) return out;
  std::vector<std::set<Edge>> pending(
      static_cast<std::size_t>(spec.num_states));
  out.stuck.resize(static_cast<std::size_t>(spec.num_states));
  out.carried.resize(static_cast<std::size_t>(spec.num_states));
  out.reachable.assign(static_cast<std::size_t>(spec.num_states), false);
  out.reachable[static_cast<std::size_t>(spec.initial_state)] = true;

  std::deque<int> work{spec.initial_state};
  while (!work.empty()) {
    const int s = work.front();
    work.pop_front();
    for (const Arc* arc : spec.arcs_from(s)) {
      // Survivors of the burst were pending before the arc fired and are
      // still pending after: carried into `to`.  Complements of the out
      // burst are freshly forced: pending, but on fundamental-mode timing
      // (the environment answers no faster than the feedback settles).
      std::set<Edge> survivors = pending[static_cast<std::size_t>(s)];
      for (const ch::Transition& t : arc->in_burst.transitions) {
        survivors.erase({t.signal, t.rising});
      }
      std::set<Edge> next = survivors;
      for (const ch::Transition& t : arc->out_burst.transitions) {
        Edge enabled;
        if (!complement_input(t, enabled) ||
            !spec.is_input.count(enabled.first)) {
          continue;
        }
        next.insert(enabled);
      }
      std::set<Edge>& to = pending[static_cast<std::size_t>(arc->to)];
      std::set<Edge>& to_carried = out.carried[static_cast<std::size_t>(arc->to)];
      const std::size_t before = to.size();
      const std::size_t before_carried = to_carried.size();
      to.insert(next.begin(), next.end());
      to_carried.insert(survivors.begin(), survivors.end());
      if (!out.reachable[static_cast<std::size_t>(arc->to)] ||
          to.size() != before || to_carried.size() != before_carried) {
        out.reachable[static_cast<std::size_t>(arc->to)] = true;
        work.push_back(arc->to);
      }
    }
  }

  const auto consumable = [&spec](int s, const Edge& p) {
    for (const Arc* arc : spec.arcs_from(s)) {
      for (const ch::Transition& t : arc->in_burst.transitions) {
        if (t.signal == p.first && t.rising == p.second) return true;
      }
    }
    return false;
  };
  for (int s = 0; s < spec.num_states; ++s) {
    if (!out.reachable[static_cast<std::size_t>(s)]) {
      out.carried[static_cast<std::size_t>(s)].clear();
      continue;
    }
    for (const Edge& p : pending[static_cast<std::size_t>(s)]) {
      if (!consumable(s, p)) out.stuck[static_cast<std::size_t>(s)].insert(p);
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> adjacency_violations(const Spec& spec) {
  const PendingAnalysis pa = pending_analysis(spec);
  if (pa.stuck.empty()) return {};

  // One state of earliness is tolerated: an edge that arrives one burst
  // ahead of its consuming state is the ordinary input-burst overlap a
  // Burst-Mode implementation already absorbs.  The hazard is an edge
  // that can linger unconsumed across two consecutive states — the logic
  // then sits in a state whose cover never mentioned the edge, with
  // another full transition still to go (the fuzzer's gate-level witness
  // is a doubled handshake).
  std::vector<std::string> out;
  for (int s = 0; s < spec.num_states; ++s) {
    for (const Edge& p : pa.stuck[static_cast<std::size_t>(s)]) {
      for (const Arc* arc : spec.arcs_from(s)) {
        if (pa.stuck[static_cast<std::size_t>(arc->to)].count(p)) {
          out.push_back("state " + std::to_string(s) +
                        ": pending input edge '" + p.first +
                        (p.second ? "+" : "-") +
                        "' is not consumed by any leaving arc and is still "
                        "unconsumed after " +
                        arc_name(*arc));
          break;
        }
      }
    }
  }

  // An arc whose whole input burst is early-capable has no compulsory
  // trigger: every consumed edge may already be on the wires when the
  // state is entered, so the implementation cannot pin the transition to
  // a freshly forced edge and fundamental mode gives it no timing anchor.
  for (int s = 0; s < spec.num_states; ++s) {
    if (!pa.reachable[static_cast<std::size_t>(s)]) continue;
    const std::set<Edge>& stuck = pa.stuck[static_cast<std::size_t>(s)];
    const std::set<Edge>& carried = pa.carried[static_cast<std::size_t>(s)];
    for (const Arc* arc : spec.arcs_from(s)) {
      if (arc->in_burst.transitions.empty()) continue;
      bool all_early = true;
      for (const ch::Transition& t : arc->in_burst.transitions) {
        const Edge e{t.signal, t.rising};
        if (!stuck.count(e) && !carried.count(e)) {
          all_early = false;
          break;
        }
      }
      if (all_early) {
        out.push_back("state " + std::to_string(s) + ": every input edge of " +
                      arc_name(*arc) +
                      " may arrive early; no compulsory trigger remains");
      }
    }
  }
  return out;
}

std::vector<std::set<std::pair<std::string, bool>>> early_edges(
    const Spec& spec) {
  const PendingAnalysis pa = pending_analysis(spec);
  std::vector<std::set<Edge>> out(pa.stuck.size());
  for (std::size_t s = 0; s < pa.stuck.size(); ++s) {
    out[s] = pa.stuck[s];
    out[s].insert(pa.carried[s].begin(), pa.carried[s].end());
  }
  return out;
}

std::vector<std::set<std::string>> early_inputs(const Spec& spec) {
  const auto edges = early_edges(spec);
  std::vector<std::set<std::string>> out(edges.size());
  for (std::size_t s = 0; s < edges.size(); ++s) {
    for (const Edge& p : edges[s]) out[s].insert(p.first);
  }
  return out;
}

}  // namespace bb::bm
