// Parser for the textual ".bms" format emitted by Spec::to_bms():
//
//   name <controller>
//   input <signal> <initial-value>
//   output <signal> <initial-value>
//   <from> <to> <in burst> | <out burst>
//
// Bursts are space-separated signal edges like "a_r+ b_r-"; an empty side
// of the '|' is allowed for empty output bursts.
#pragma once

#include <stdexcept>
#include <string>

#include "src/bm/spec.hpp"

namespace bb::bm {

class BmsParseError : public std::runtime_error {
 public:
  explicit BmsParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parses a .bms text.  Throws BmsParseError on malformed input.
Spec parse_bms(std::string_view text);

}  // namespace bb::bm
