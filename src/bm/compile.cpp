#include "src/bm/compile.hpp"

#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace bb::bm {

namespace {

using ch::Item;
using ch::ItemSeq;
using ch::Transition;

/// State-graph builder with union-find state aliasing.
///
/// Labels are *deferred*: a label encountered mid-stream stays pending
/// until the next burst boundary (input transition, choice, goto or end of
/// stream).  Outputs emitted between a label and its boundary form the
/// label's "prefix": on re-entry via goto, those outputs ride the back-edge
/// arc (a loop whose body begins with an output, e.g. a rep around a
/// mux-ack, needs this to keep every input burst non-empty).
class Builder {
 public:
  Spec build(const ItemSeq& items, const std::string& name) {
    spec_.name = name;
    const int start = new_state();
    Cursor init;
    init.state = start;
    auto ends = run(items, 0, init);
    // Close trailing bursts of terminating behaviours into final states.
    for (Cursor& end : ends) {
      if (!end.reachable) continue;
      std::vector<PendingLabel> pending = std::move(end.pending);
      if (!end.in.empty() || !end.out.empty() || end.resurrected) {
        close_boundary(end, pending);
      } else {
        bind_pending(pending, end.state);
      }
    }
    finalize(start);
    return std::move(spec_);
  }

 private:
  struct PendingLabel {
    std::string label;
    std::vector<Transition> prefix;  // outputs seen since the label
  };

  struct Cursor {
    int state = -1;
    std::vector<Transition> in;
    std::vector<Transition> out;
    bool reachable = true;
    /// Label this cursor was resurrected at (after an unreachable region);
    /// outputs accumulated before the first boundary are that label's
    /// prefix and are delivered by incoming arcs, not re-emitted.
    bool resurrected = false;
    /// Labels awaiting their binding boundary; carried across the end of a
    /// choice alternative into the continuation.
    std::vector<PendingLabel> pending;
  };

  struct RawArc {
    int from = 0;
    int to = 0;
    Burst in, out;
    std::string append_prefix_of;  // goto arcs: label whose prefix to append
  };

  // --- union-find over states ---
  int new_state() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int find(int s) {
    while (parent_[s] != s) {
      parent_[s] = parent_[parent_[s]];
      s = parent_[s];
    }
    return s;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

  int state_for_label(const std::string& label) {
    const auto it = label_state_.find(label);
    if (it != label_state_.end()) return find(it->second);
    const int s = new_state();
    label_state_[label] = s;
    return s;
  }

  void record_prefix(const std::string& label,
                     std::vector<Transition> prefix) {
    label_prefix_[label] = std::move(prefix);
  }

  /// Binds all pending labels to `state` and clears the pending list.
  void bind_pending(std::vector<PendingLabel>& pending, int state) {
    for (PendingLabel& p : pending) {
      record_prefix(p.label, std::move(p.prefix));
      const auto it = label_state_.find(p.label);
      if (it != label_state_.end()) {
        unite(state, it->second);  // placeholder from a forward bgoto
      } else {
        label_state_[p.label] = state;
      }
    }
    pending.clear();
  }

  void emit_arc(int from, int to, Burst in, Burst out,
                std::string append_prefix_of = "") {
    RawArc a;
    a.from = from;
    a.to = to;
    a.in = std::move(in);
    a.out = std::move(out);
    a.append_prefix_of = std::move(append_prefix_of);
    arcs_.push_back(std::move(a));
  }

  /// Closes the current arc at a burst boundary, binding pending labels.
  /// Returns the state the cursor continues from.
  void close_boundary(Cursor& cur, std::vector<PendingLabel>& pending) {
    if (cur.resurrected) {
      // Outputs accumulated since resurrection equal the resurrect label's
      // prefix; they are delivered by the arcs that enter this state.
      cur.in.clear();
      cur.out.clear();
      cur.resurrected = false;
      bind_pending(pending, cur.state);
      return;
    }
    if (cur.in.empty() && cur.out.empty()) {
      bind_pending(pending, cur.state);
      return;
    }
    const int next = new_state();
    emit_arc(cur.state, next, Burst{cur.in}, Burst{cur.out});
    cur.state = next;
    cur.in.clear();
    cur.out.clear();
    bind_pending(pending, next);
  }

  /// Processes items[idx..]; returns the cursors at every end of control
  /// flow (choice alternatives fan out).
  std::vector<Cursor> run(const ItemSeq& items, std::size_t idx, Cursor cur) {
    std::vector<PendingLabel> pending = std::move(cur.pending);
    cur.pending.clear();
    for (std::size_t i = idx; i < items.size(); ++i) {
      const Item& item = items[i];
      switch (item.kind) {
        case Item::Kind::kTransition: {
          if (!cur.reachable) break;
          const Transition& t = item.transition;
          if (t.is_input) {
            if (!cur.out.empty() || !pending.empty() || cur.resurrected) {
              close_boundary(cur, pending);
            }
            cur.in.push_back(t);
          } else {
            cur.out.push_back(t);
            for (PendingLabel& p : pending) p.prefix.push_back(t);
          }
          break;
        }
        case Item::Kind::kLabel: {
          if (!cur.reachable) {
            // Resurrect only if some break referenced this label.
            const auto it = label_state_.find(item.label);
            if (it != label_state_.end()) {
              cur = Cursor{};
              cur.state = find(it->second);
              cur.resurrected = true;
              pending.push_back(PendingLabel{item.label, {}});
            }
            break;
          }
          pending.push_back(PendingLabel{item.label, {}});
          break;
        }
        case Item::Kind::kGoto:
        case Item::Kind::kBGoto: {
          if (!cur.reachable) break;
          const int target = state_for_label(item.label);
          bind_pending(pending, target);
          if (cur.resurrected || (cur.in.empty() && cur.out.empty())) {
            unite(target, cur.state);
          } else {
            emit_arc(cur.state, target, Burst{cur.in}, Burst{cur.out},
                     item.label);
          }
          cur.reachable = false;
          cur.in.clear();
          cur.out.clear();
          cur.resurrected = false;
          break;
        }
        case Item::Kind::kChoice: {
          if (!cur.reachable) break;
          // A pending input burst with no outputs joins each alternative's
          // first burst (Fig. 4: "a1_r+ i1_r+ / o1_r+"); pending outputs
          // must close into an arc that enters the decision state.
          if (!cur.out.empty() || cur.resurrected) {
            close_boundary(cur, pending);
          } else {
            bind_pending(pending, cur.state);
          }
          std::vector<Cursor> ends;
          for (const ItemSeq& alt : item.alternatives) {
            Cursor branch;
            branch.state = cur.state;
            branch.in = cur.in;  // propagate the pending input burst
            branch.pending = pending;
            auto branch_ends = run(alt, 0, branch);
            ends.insert(ends.end(),
                        std::make_move_iterator(branch_ends.begin()),
                        std::make_move_iterator(branch_ends.end()));
          }
          // Continue the remaining items independently from each end.
          std::vector<Cursor> results;
          for (Cursor& e : ends) {
            auto sub = run(items, i + 1, std::move(e));
            results.insert(results.end(),
                           std::make_move_iterator(sub.begin()),
                           std::make_move_iterator(sub.end()));
          }
          return results;
        }
      }
    }
    // End of this item stream: hand open bursts and pending labels back to
    // the caller (the continuation after a choice, or finalize()).
    cur.pending = std::move(pending);
    return {std::move(cur)};
  }

  /// Resolves aliases, appends goto prefixes, renumbers reachable states
  /// breadth-first from the initial state, and dedupes arcs.
  void finalize(int start) {
    for (RawArc& a : arcs_) {
      a.from = find(a.from);
      a.to = find(a.to);
      if (!a.append_prefix_of.empty()) {
        const auto it = label_prefix_.find(a.append_prefix_of);
        if (it != label_prefix_.end()) {
          for (const Transition& t : it->second) {
            a.out.transitions.push_back(t);
          }
        }
      }
    }

    // BFS renumbering from the initial state.
    std::map<int, int> number;
    std::deque<int> queue;
    const int init = find(start);
    number[init] = 0;
    queue.push_back(init);
    while (!queue.empty()) {
      const int s = queue.front();
      queue.pop_front();
      for (const RawArc& a : arcs_) {
        if (a.from == s && !number.count(a.to)) {
          number[a.to] = static_cast<int>(number.size());
          queue.push_back(a.to);
        }
      }
    }

    spec_.initial_state = 0;
    spec_.num_states = static_cast<int>(number.size());
    std::set<std::string> seen;
    for (RawArc& a : arcs_) {
      if (!number.count(a.from)) continue;  // unreachable
      Arc out;
      out.from = number[a.from];
      out.to = number[a.to];
      out.in_burst = std::move(a.in);
      out.out_burst = std::move(a.out);
      out.in_burst.normalize();
      out.out_burst.normalize();
      const std::string key = std::to_string(out.from) + ">" +
                              std::to_string(out.to) + ":" +
                              out.in_burst.to_string() + "|" +
                              out.out_burst.to_string();
      if (!seen.insert(key).second) continue;  // duplicate arc
      for (const Transition& t : out.in_burst.transitions) {
        spec_.is_input[t.signal] = true;
      }
      for (const Transition& t : out.out_burst.transitions) {
        spec_.is_input[t.signal] = false;
      }
      spec_.arcs.push_back(std::move(out));
    }
  }

  Spec spec_;
  std::vector<int> parent_;
  std::vector<RawArc> arcs_;
  std::map<std::string, int> label_state_;
  std::map<std::string, std::vector<Transition>> label_prefix_;
};

}  // namespace

Spec compile(const ch::Expr& expr, const std::string& name,
             const ch::ExpandOptions& options) {
  const ch::Expansion expansion = ch::expand(expr, options);
  return compile_items(expansion.flatten(), name);
}

Spec compile_items(const ItemSeq& items, const std::string& name) {
  Builder builder;
  return builder.build(items, name);
}

}  // namespace bb::bm
