// bb-chaos — crash-restart chaos campaign driver for bb-served.
//
// Forks the real daemon, arms seed-chosen failpoints (BB_FAILPOINTS) at
// crash sites in the atomic-write, store, and eviction paths, drives
// concurrent client load, kills/restarts the daemon, and asserts the
// three recovery invariants after every cycle: the cache directory
// fully validates, every client-visible reply matches an in-process
// ground-truth synthesis, and the restart is ready within the recovery
// budget.  See src/serve/chaos.hpp.
//
//   bb-chaos --served PATH [--seed N] [--cycles N] [--clients N]
//            [--requests N] [--work-dir DIR] [--recovery-budget-ms N]
//            [--json FILE]
//
// --served defaults to a bb-served binary next to this one.  Exit
// status: 0 campaign passed, 1 failed (or spawn error), 2 usage.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include <unistd.h>

#include "src/serve/chaos.hpp"
#include "src/util/io.hpp"
#include "src/util/strings.hpp"

namespace {

namespace fs = std::filesystem;

[[noreturn]] void usage() {
  std::cerr << "usage: bb-chaos [--served PATH] [--seed N] [--cycles N]"
               " [--clients N] [--requests N] [--work-dir DIR]"
               " [--recovery-budget-ms N] [--json FILE]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bb::serve::ChaosOptions options;
  options.cycles = 10;  // interactive default; CI passes --cycles 50+
  std::string json_path;
  std::string work_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--served" && i + 1 < argc) {
      options.served_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(bb::util::parse_int(
          "bb-chaos", "--seed", argv[++i], 1, 1ll << 62));
    } else if (arg == "--cycles" && i + 1 < argc) {
      options.cycles = static_cast<int>(
          bb::util::parse_int("bb-chaos", "--cycles", argv[++i], 1, 100000));
    } else if (arg == "--clients" && i + 1 < argc) {
      options.clients = static_cast<int>(
          bb::util::parse_int("bb-chaos", "--clients", argv[++i], 1, 256));
    } else if (arg == "--requests" && i + 1 < argc) {
      options.requests_per_client = static_cast<int>(
          bb::util::parse_int("bb-chaos", "--requests", argv[++i], 1, 1024));
    } else if (arg == "--work-dir" && i + 1 < argc) {
      work_dir = argv[++i];
    } else if (arg == "--recovery-budget-ms" && i + 1 < argc) {
      options.recovery_budget_ms = bb::util::parse_int(
          "bb-chaos", "--recovery-budget-ms", argv[++i], 100, 3600000);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      usage();
    }
  }

  if (options.served_path.empty()) {
    std::error_code ec;
    const fs::path self = fs::canonical(argv[0], ec);
    if (!ec) {
      options.served_path = (self.parent_path() / "bb-served").string();
    }
  }
  options.work_dir = work_dir.empty()
                         ? "/tmp/bb-chaos-" + std::to_string(::getpid())
                         : work_dir;

  try {
    const bb::serve::ChaosResult result = bb::serve::run_chaos(options);
    std::cout << result.to_text();
    if (!json_path.empty()) {
      bb::util::write_file_atomic(json_path, result.to_json() + "\n");
      std::cout << "wrote " << json_path << "\n";
    }
    if (work_dir.empty()) {
      std::error_code ec;
      fs::remove_all(options.work_dir, ec);
    }
    return result.passed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bb-chaos: " << e.what() << "\n";
    return 1;
  }
}
