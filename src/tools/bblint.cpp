// bb-lint — standalone static analysis for any design in the flow.
//
// Compiles a mini-Balsa source (or a built-in evaluation design) and runs
// every lint pass over every intermediate representation it produces:
//
//   handshake netlist      HS001-HS005  (dangling channels, direction
//                                        mismatches, unreachable parts)
//   Burst-Mode machines    BM001-BM007  (well-formedness, determinism,
//                                        polarity alternation)
//   two-level logic        MN001-MN003  (function-hazard screen)
//   mapped gate netlist    NL001-NL004  (drivers, floating inputs,
//                                        combinational cycles, fanout)
//
// Usage:
//   bb-lint <file.balsa|design|all> [--json] [--unoptimized]
//           [--max-states N] [--fanout-limit N] [--suppress ID[,ID...]]
//
// Exit status: 0 no errors, 1 Error-severity findings (or a stage
// crashed), 2 usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/bm/compile.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/flow.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/lint/lint.hpp"
#include "src/minimalist/synth.hpp"
#include "src/obs/session.hpp"
#include "src/opt/cluster.hpp"
#include "src/techmap/cells.hpp"
#include "src/techmap/map.hpp"
#include "src/techmap/templates.hpp"
#include "src/util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: bb-lint <file.balsa|design|all> [--json] "
               "[--unoptimized] [--max-states N] [--fanout-limit N] "
               "[--suppress ID[,ID...]]\n"
               "built-in designs: systolic wagging stack ssem (or 'all')\n";
  std::exit(2);
}

std::string load_source(const std::string& arg) {
  for (const auto* d : bb::designs::all_designs()) {
    if (d->name == arg) return d->source;
  }
  std::ifstream file(arg);
  if (!file) {
    std::cerr << "bb-lint: cannot open '" << arg
              << "' (and it is not a built-in design)\n";
    std::exit(1);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

/// Runs every lint stage over one design, mirroring the flow's IR
/// sequence but never aborting: all findings end up in one report.
bb::lint::Report lint_design(const std::string& source,
                             const bb::flow::FlowOptions& options) {
  const auto& lopts = options.lint_options;
  bb::lint::Report report = bb::lint::make_report(lopts);
  const auto net = bb::balsa::compile_source(source);
  report.merge(bb::lint::lint_handshake(net, lopts));

  const auto& lib = bb::techmap::CellLibrary::ams035();
  bb::netlist::GateNetlist gates("control");

  std::vector<bb::ch::Program> programs;
  for (const int id : net.control_ids()) {
    const auto& component = net.component(id);
    if (!options.cluster && options.templates &&
        bb::techmap::has_template(component.kind)) {
      gates.merge(*bb::techmap::template_circuit(component, lib));
      continue;
    }
    programs.push_back(bb::hsnet::to_ch(component));
  }
  bb::opt::ClusterOptions copts;
  copts.max_states = options.max_states;
  const auto clustered =
      options.cluster
          ? bb::opt::optimize(std::move(programs), copts, nullptr)
          : bb::opt::wrap(std::move(programs));

  bb::techmap::MapOptions mopts;
  mopts.level_separated = options.level_separated;
  for (std::size_t i = 0; i < clustered.size(); ++i) {
    const auto& program = clustered[i].program;
    const auto spec = bb::bm::compile(*program.body, program.name);
    report.merge(bb::lint::lint_bm(spec, lopts));
    try {
      const auto ctrl = bb::minimalist::synthesize(spec, options.mode);
      report.merge(bb::lint::lint_two_level(ctrl, spec, lopts));
      gates.merge(bb::techmap::map_controller(
          ctrl, lib, mopts, "ctl" + std::to_string(i)));
    } catch (const std::exception& e) {
      // An invalid machine was already reported above; note the
      // downstream consequence and keep linting the other controllers.
      std::cerr << "bb-lint: controller '" << program.name
                << "' could not be synthesized: " << e.what() << "\n";
    }
  }
  report.merge(bb::lint::lint_gates(gates, lopts));
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string target = argv[1];

  bool json = false;
  bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json = true;
    } else if (flag == "--unoptimized") {
      const bool keep_json = json;
      options = bb::flow::FlowOptions::unoptimized();
      json = keep_json;
    } else if (flag == "--max-states" && i + 1 < argc) {
      options.max_states = static_cast<int>(
          bb::util::parse_int("bb-lint", "--max-states", argv[++i], 0, 1000000));
    } else if (flag == "--fanout-limit" && i + 1 < argc) {
      options.lint_options.fanout_limit = static_cast<int>(bb::util::parse_int(
          "bb-lint", "--fanout-limit", argv[++i], 0, 1000000));
    } else if (flag == "--suppress" && i + 1 < argc) {
      std::stringstream rules(argv[++i]);
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        if (!rule.empty()) options.lint_options.suppress.push_back(rule);
      }
    } else {
      usage();
    }
  }

  // Tracing/metrics are env-only here (BB_TRACE/BB_METRICS); the lint
  // flow reuses synthesize_control, so the spans are the same as bbbc's.
  bb::obs::Session session(bb::obs::env_or("", "BB_TRACE"),
                           bb::obs::env_or("", "BB_METRICS"));

  std::vector<std::string> names;
  if (target == "all") {
    for (const auto* d : bb::designs::all_designs()) names.push_back(d->name);
  } else {
    names.push_back(target);
  }

  bool errors = false;
  try {
    for (const std::string& name : names) {
      const bb::lint::Report report = lint_design(load_source(name), options);
      if (json) {
        std::cout << report.to_json() << "\n";
      } else {
        if (names.size() > 1) std::cout << "== " << name << " ==\n";
        std::cout << report.to_text();
      }
      errors = errors || report.has_errors();
    }
  } catch (const std::exception& e) {
    std::cerr << "bb-lint: " << e.what() << "\n";
    return 1;
  }
  return errors ? 1 : 0;
}
