// bb-lint — standalone static analysis for any design in the flow.
//
// Compiles a mini-Balsa source (or a built-in evaluation design) and runs
// every lint AND semantic-analysis pass over every intermediate
// representation it produces:
//
//   handshake netlist      HS001-HS005  (dangling channels, direction
//                                        mismatches, unreachable parts)
//   Burst-Mode machines    BM001-BM007  (well-formedness, determinism,
//                                        polarity alternation)
//                          AN001-AN004  (level-sensitive legality,
//                                        entry-point uniqueness, dead
//                                        behaviour)
//   Petri nets             PN001-PN004  (structural deadlock/liveness,
//                                        no reachability graph)
//   two-level logic        MN001-MN003  (function-hazard screen)
//   mapped gate netlist    NL001-NL004  (drivers, floating inputs,
//                                        combinational cycles, fanout)
//                          NL005-NL007  (hazard-non-increasing mapping
//                                        audit against the covers)
//
// Usage:
//   bb-lint <file.balsa|design|all> [--json] [--sarif FILE]
//           [--severity RULE=SEV[,...]] [--baseline FILE]
//           [--write-baseline FILE] [--max-warnings N] [--no-analyze]
//           [--unoptimized] [--max-states N] [--fanout-limit N]
//           [--suppress ID[,ID...]]
//
// Exit status: 0 clean, 1 Error-severity findings (or warnings above
// --max-warnings, or a stage crashed), 2 usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/balsa/parser.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/analyze.hpp"
#include "src/flow/flow.hpp"
#include "src/lint/lint.hpp"
#include "src/lint/sarif.hpp"
#include "src/obs/session.hpp"
#include "src/util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: bb-lint <file.balsa|design|all> [--json] [--sarif FILE]\n"
         "               [--severity RULE=SEV[,...]] [--baseline FILE]\n"
         "               [--write-baseline FILE] [--max-warnings N]\n"
         "               [--no-analyze] [--unoptimized] [--max-states N]\n"
         "               [--fanout-limit N] [--suppress ID[,ID...]]\n"
         "built-in designs: systolic wagging stack ssem (or 'all')\n"
         "SEV is one of: note, warning, error\n";
  std::exit(2);
}

std::string load_source(const std::string& arg) {
  for (const auto* d : bb::designs::all_designs()) {
    if (d->name == arg) return d->source;
  }
  std::ifstream file(arg);
  if (!file) {
    std::cerr << "bb-lint: cannot open '" << arg
              << "' (and it is not a built-in design)\n";
    std::exit(1);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

bb::lint::Severity parse_severity(const std::string& name) {
  if (name == "note") return bb::lint::Severity::kNote;
  if (name == "warning") return bb::lint::Severity::kWarning;
  if (name == "error") return bb::lint::Severity::kError;
  std::cerr << "bb-lint: unknown severity '" << name
            << "' (expected note, warning or error)\n";
  std::exit(2);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bb-lint: cannot write '" << path << "'\n";
    std::exit(1);
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string target = argv[1];

  bool json = false;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  long long max_warnings = -1;  // -1 = unlimited
  bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
  options.analyze = true;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json = true;
    } else if (flag == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (flag == "--severity" && i + 1 < argc) {
      std::stringstream entries(argv[++i]);
      std::string entry;
      while (std::getline(entries, entry, ',')) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) usage();
        options.lint_options.severity.emplace_back(
            entry.substr(0, eq), parse_severity(entry.substr(eq + 1)));
      }
    } else if (flag == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (flag == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (flag == "--max-warnings" && i + 1 < argc) {
      max_warnings =
          bb::util::parse_int("bb-lint", "--max-warnings", argv[++i], 0,
                              1000000000);
    } else if (flag == "--no-analyze") {
      options.analyze = false;
    } else if (flag == "--unoptimized") {
      const bool keep_analyze = options.analyze;
      auto keep_lint_options = options.lint_options;
      options = bb::flow::FlowOptions::unoptimized();
      options.analyze = keep_analyze;
      options.lint_options = std::move(keep_lint_options);
    } else if (flag == "--max-states" && i + 1 < argc) {
      options.max_states = static_cast<int>(
          bb::util::parse_int("bb-lint", "--max-states", argv[++i], 0, 1000000));
    } else if (flag == "--fanout-limit" && i + 1 < argc) {
      options.lint_options.fanout_limit = static_cast<int>(bb::util::parse_int(
          "bb-lint", "--fanout-limit", argv[++i], 0, 1000000));
    } else if (flag == "--suppress" && i + 1 < argc) {
      std::stringstream rules(argv[++i]);
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        if (!rule.empty()) options.lint_options.suppress.push_back(rule);
      }
    } else {
      usage();
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::cerr << "bb-lint: cannot open baseline '" << baseline_path
                << "'\n";
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    options.lint_options.baseline = bb::lint::parse_baseline(text.str());
  }

  // Tracing/metrics are env-only here (BB_TRACE/BB_METRICS); the lint
  // flow mirrors synthesize_control's IR chain, so the spans line up
  // with bbbc's.
  bb::obs::Session session(bb::obs::env_or("", "BB_TRACE"),
                           bb::obs::env_or("", "BB_METRICS"));

  std::vector<std::string> names;
  if (target == "all") {
    for (const auto* d : bb::designs::all_designs()) names.push_back(d->name);
  } else {
    names.push_back(target);
  }

  bool errors = false;
  std::size_t warnings = 0;
  std::vector<std::pair<std::string, bb::lint::Report>> reports;
  try {
    for (const std::string& name : names) {
      // A source may declare several procedures; each is an independent
      // unit with its own netlist, so lint them one by one.
      const auto procedures = bb::balsa::parse_program(load_source(name));
      for (const auto& procedure : procedures) {
        const std::string label =
            procedures.size() > 1 ? name + ":" + procedure.name : name;
        const auto net = bb::balsa::compile(procedure);
        auto analyzed = bb::flow::analyze_control(net, options);
        if (json) {
          std::cout << analyzed.report.to_json() << "\n";
        } else {
          if (names.size() > 1 || procedures.size() > 1) {
            std::cout << "== " << label << " ==\n";
          }
          std::cout << analyzed.report.to_text();
        }
        errors = errors || analyzed.report.has_errors();
        warnings += analyzed.report.count(bb::lint::Severity::kWarning);
        reports.emplace_back(label, std::move(analyzed.report));
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bb-lint: " << e.what() << "\n";
    return 1;
  }

  if (!sarif_path.empty()) {
    std::vector<bb::lint::SarifInput> inputs;
    for (const auto& [name, report] : reports) {
      inputs.push_back(bb::lint::SarifInput{name, &report});
    }
    const std::string sarif = bb::lint::to_sarif(inputs);
    if (sarif_path == "-") {
      std::cout << sarif << "\n";
    } else {
      write_file(sarif_path, sarif);
    }
  }

  if (!write_baseline_path.empty()) {
    bb::lint::Report merged;
    for (const auto& [name, report] : reports) merged.merge(report);
    write_file(write_baseline_path, merged.to_baseline());
  }

  if (max_warnings >= 0 &&
      warnings > static_cast<std::size_t>(max_warnings)) {
    std::cerr << "bb-lint: " << warnings << " warning(s) exceed the "
              << "--max-warnings threshold of " << max_warnings << "\n";
    return 1;
  }
  return errors ? 1 : 0;
}
