// bb-faultsim — gate-level fault-injection campaign driver.
//
// Sweeps a deterministic fault list (stuck-at, SEU bit flips, delay
// perturbation; see src/flow/faultsim.hpp) across one or more of the
// built-in evaluation designs and classifies every run as detected
// (deadlock, hang, wrong output, or trace-verifier counterexample) or
// silently tolerated.
//
//   bb-faultsim [design...]        default: all four designs
//
// Options:
//   --seed N         PRNG seed (default: BB_SEED env var, then 1)
//   --stuck-at N     random stuck-at faults per design (default 4)
//   --bit-flips N    SEU bit flips per design (default 3)
//   --delay-runs N   delay-perturbation runs per design (default 1)
//   --json FILE      also write the campaign JSON artifact (atomic)
//   --unoptimized    template baseline flow instead of the clustered one
//   --trace FILE     Chrome trace-event JSON (BB_TRACE env fallback)
//   --metrics FILE   metrics snapshot JSON (BB_METRICS env fallback)
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "src/flow/faultsim.hpp"
#include "src/obs/session.hpp"
#include "src/util/io.hpp"
#include "src/util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: bb-faultsim [design...] [--seed N] [--stuck-at N] "
               "[--bit-flips N] [--delay-runs N] [--json FILE] "
               "[--unoptimized] [--trace FILE] [--metrics FILE]\n"
               "built-in designs: systolic wagging stack ssem\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> designs;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  bb::flow::CampaignOptions campaign;
  bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      campaign.seed = static_cast<std::uint64_t>(bb::util::parse_int(
          "bb-faultsim", "--seed", argv[++i], 0,
          std::numeric_limits<long long>::max()));
    } else if (arg == "--stuck-at" && i + 1 < argc) {
      campaign.random_stuck_at = static_cast<int>(
          bb::util::parse_int("bb-faultsim", "--stuck-at", argv[++i], 0, 1000000));
    } else if (arg == "--bit-flips" && i + 1 < argc) {
      campaign.bit_flips = static_cast<int>(
          bb::util::parse_int("bb-faultsim", "--bit-flips", argv[++i], 0, 1000000));
    } else if (arg == "--delay-runs" && i + 1 < argc) {
      campaign.delay_runs = static_cast<int>(
          bb::util::parse_int("bb-faultsim", "--delay-runs", argv[++i], 0, 1000000));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--unoptimized") {
      options = bb::flow::FlowOptions::unoptimized();
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      usage();
    } else {
      designs.push_back(arg);
    }
  }
  if (designs.empty()) {
    designs = {"systolic", "wagging", "stack", "ssem"};
  }
  bb::obs::Session session(bb::obs::env_or(trace_path, "BB_TRACE"),
                           bb::obs::env_or(metrics_path, "BB_METRICS"));

  try {
    const auto result =
        bb::flow::run_fault_campaign(designs, options, campaign);
    std::cout << result.to_text();
    if (!json_path.empty()) {
      bb::util::write_file_atomic(json_path, result.to_json() + "\n");
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bb-faultsim: " << e.what() << "\n";
    return 1;
  }
}
