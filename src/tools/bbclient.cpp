// bb-client — one-shot client for the bb-served synthesis daemon.
//
// Builds one request from the command line, sends it over the daemon's
// Unix-domain socket, and prints the reply JSON line on stdout.
//
// Exit status (scripts branch on these):
//   0  reply status "ok"
//   1  reply status "error" (synthesis/analysis failed server-side)
//   2  usage error
//   3  reply status "overloaded" (shed by admission control — retryable)
//   4  reply deadline passed (the request may still execute)
//   5  transport failure (cannot connect, connection broken, bad reply)
//   6  reply status "bad_request"
//
//   bb-client --socket /tmp/bb.sock --op synthesize --design systolic
//   bb-client --socket /tmp/bb.sock --op synthesize_bm --bms spec.bms
//   bb-client --socket /tmp/bb.sock --op metrics --format prometheus
//   bb-client --socket /tmp/bb.sock --op trace --last 100
//
// Options:
//   --socket PATH      daemon socket (required)
//   --op OP            ping | stats | metrics | trace | shutdown |
//                      synthesize | synthesize_bm |
//                      synthesize_incremental (default: ping)
//   --design NAME      built-in design (synthesize)
//   --source FILE      mini-Balsa source file, "-" = stdin (synthesize,
//                      synthesize_incremental)
//   --project NAME     project under the server's --project-dir
//                      (synthesize_incremental; default "default")
//   --bms FILE         .bms file, "-" = stdin (synthesize_bm)
//   --mode MODE        speed | area (synthesize_bm; default speed)
//   --id ID            request id echoed in the reply
//   --trace-id ID      trace context for the request (server mints one
//                      when absent; the reply echoes the effective id)
//   --format F         json | prometheus | both (metrics; default json).
//                      "prometheus" prints the decoded text exposition
//                      unless --json asks for the raw envelope
//   --last N           newest-N span cap (trace; default all)
//   --filter ID        only spans tagged with this trace id (trace)
//   --json             always print the raw reply envelope; on transport
//                      failure/timeout synthesize one
//                      ({"status":"transport_error"|"timeout",...}) so
//                      scripts get exactly one JSON line per invocation
//   --verilog          include mapped Verilog in the reply
//   --unoptimized      template baseline flow options
//   --no-cache         bypass the synthesis cache for this request
//   --work-budget N    per-request work budget
//   --timeout-ms N     reply deadline (default 120000; 0 = forever)
//   --retries N        attempts on connection failure/timeout (default 1
//                      = no retry); retried synthesis requests are
//                      auto-assigned a request id so the server can
//                      dedupe a retry whose original actually ran
//   --backoff-ms N     first retry delay, doubled per retry (default 50)
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include <unistd.h>

#include "src/serve/client.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"
#include "src/util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: bb-client --socket PATH [--op OP] [--design NAME]"
               " [--source FILE] [--project NAME] [--bms FILE]"
               " [--mode speed|area] [--id ID]"
               " [--trace-id ID] [--format json|prometheus|both] [--last N]"
               " [--filter ID] [--json] [--verilog] [--unoptimized]"
               " [--no-cache] [--work-budget N] [--timeout-ms N]"
               " [--retries N] [--backoff-ms N]\n"
               "ops: ping stats metrics trace shutdown synthesize"
               " synthesize_bm synthesize_incremental\n";
  std::exit(2);
}

// Exit codes (keep in sync with the file header).
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitOverloaded = 3;
constexpr int kExitTimeout = 4;
constexpr int kExitTransport = 5;
constexpr int kExitBadRequest = 6;

int exit_code_for_status(const std::string& status) {
  if (status == "ok") return kExitOk;
  if (status == "overloaded") return kExitOverloaded;
  if (status == "bad_request") return kExitBadRequest;
  if (status == "error") return kExitError;
  return kExitTransport;  // not a protocol reply
}

std::string slurp_or_die(const std::string& path) {
  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "bb-client: cannot read '" << path << "'\n";
      std::exit(2);
    }
    buf << in.rdbuf();
  }
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string op = "ping";
  std::string design;
  std::string source_path;
  std::string bms_path;
  std::string project;
  std::string mode = "speed";
  std::string id;
  std::string trace_id;
  std::string format = "json";
  std::string filter;
  int last = 0;
  bool json_envelope = false;
  bool verilog = false;
  bool unoptimized = false;
  bool no_cache = false;
  long long work_budget = -1;
  int timeout_ms = 120000;
  int retries = 1;
  int backoff_ms = 50;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (flag == "--op" && i + 1 < argc) {
      op = argv[++i];
    } else if (flag == "--design" && i + 1 < argc) {
      design = argv[++i];
      if (op == "ping") op = "synthesize";
    } else if (flag == "--source" && i + 1 < argc) {
      source_path = argv[++i];
      if (op == "ping") op = "synthesize";
    } else if (flag == "--bms" && i + 1 < argc) {
      bms_path = argv[++i];
      if (op == "ping") op = "synthesize_bm";
    } else if (flag == "--project" && i + 1 < argc) {
      project = argv[++i];
      if (op == "ping" || op == "synthesize") op = "synthesize_incremental";
    } else if (flag == "--mode" && i + 1 < argc) {
      mode = argv[++i];
    } else if (flag == "--id" && i + 1 < argc) {
      id = argv[++i];
    } else if (flag == "--trace-id" && i + 1 < argc) {
      trace_id = argv[++i];
    } else if (flag == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "json" && format != "prometheus" && format != "both") {
        usage();
      }
    } else if (flag == "--last" && i + 1 < argc) {
      last = static_cast<int>(bb::util::parse_int(
          "bb-client", "--last", argv[++i], 0,
          std::numeric_limits<int>::max()));
    } else if (flag == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (flag == "--json") {
      json_envelope = true;
    } else if (flag == "--verilog") {
      verilog = true;
    } else if (flag == "--unoptimized") {
      unoptimized = true;
    } else if (flag == "--no-cache") {
      no_cache = true;
    } else if (flag == "--work-budget" && i + 1 < argc) {
      work_budget = bb::util::parse_int(
          "bb-client", "--work-budget", argv[++i], 0,
          std::numeric_limits<long long>::max());
    } else if (flag == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = static_cast<int>(bb::util::parse_int(
          "bb-client", "--timeout-ms", argv[++i], 0,
          std::numeric_limits<int>::max()));
    } else if (flag == "--retries" && i + 1 < argc) {
      retries = static_cast<int>(
          bb::util::parse_int("bb-client", "--retries", argv[++i], 1, 1000));
    } else if (flag == "--backoff-ms" && i + 1 < argc) {
      backoff_ms = static_cast<int>(bb::util::parse_int(
          "bb-client", "--backoff-ms", argv[++i], 1, 3600000));
    } else {
      usage();
    }
  }
  if (socket_path.empty()) usage();

  // Retried requests need an id — it is the server's idempotency key,
  // the only thing keeping a retry whose original actually executed
  // from running twice.  Generate one when the caller did not.
  if (retries > 1 && id.empty()) {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    id = "bbc-" + std::to_string(::getpid()) + "-" +
         std::to_string(
             std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                 .count());
  }

  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", bb::serve::kProtocolVersion);
  if (!id.empty()) w.member("id", id);
  if (!trace_id.empty()) w.member("trace_id", trace_id);
  w.member("op", op);
  if (!design.empty()) w.member("design", design);
  if (!source_path.empty()) w.member("source", slurp_or_die(source_path));
  if (!bms_path.empty()) w.member("bms", slurp_or_die(bms_path));
  if (!project.empty()) w.member("project", project);
  if (mode != "speed") w.member("mode", mode);
  if (format != "json") w.member("format", format);
  if (!filter.empty()) w.member("filter", filter);
  if (last > 0) w.member("last", static_cast<std::int64_t>(last));
  if (verilog || unoptimized || no_cache || work_budget >= 0) {
    w.key("options").begin_object();
    if (verilog) w.member("verilog", true);
    if (unoptimized) w.member("unoptimized", true);
    if (no_cache) w.member("cache", false);
    if (work_budget >= 0) {
      w.member("work_budget", static_cast<std::int64_t>(work_budget));
    }
    w.end_object();
  }
  w.end_object();

  try {
    std::string reply;
    if (retries > 1) {
      bb::serve::RetryOptions ropts;
      ropts.attempts = retries;
      ropts.timeout_ms = timeout_ms == 0 ? -1 : timeout_ms;
      ropts.backoff_ms = backoff_ms;
      ropts.jitter_seed = static_cast<std::uint64_t>(::getpid());
      reply = bb::serve::Client::request_idempotent(socket_path, w.str(),
                                                    ropts);
    } else {
      bb::serve::Client client(socket_path);
      reply = client.roundtrip(w.str(), timeout_ms == 0 ? -1 : timeout_ms);
    }
    const auto doc = bb::util::parse_json(reply);
    const std::string status = doc ? doc->get_string("status") : "";
    // A Prometheus scrape wants the text exposition, not JSON-escaped
    // text inside an envelope; --json overrides back to the envelope.
    if (!json_envelope && op == "metrics" && format == "prometheus" &&
        status == "ok" && doc) {
      std::cout << doc->get_string("prometheus");
    } else {
      std::cout << reply << "\n";
    }
    return exit_code_for_status(status);
  } catch (const bb::serve::ClientTimeout& e) {
    if (json_envelope) {
      bb::util::JsonWriter err;
      err.begin_object();
      err.member("status", "timeout");
      err.member("message", std::string(e.what()));
      err.end_object();
      std::cout << err.str() << "\n";
    }
    std::cerr << "bb-client: " << e.what() << "\n";
    return kExitTimeout;
  } catch (const std::exception& e) {
    if (json_envelope) {
      bb::util::JsonWriter err;
      err.begin_object();
      err.member("status", "transport_error");
      err.member("message", std::string(e.what()));
      err.end_object();
      std::cout << err.str() << "\n";
    }
    std::cerr << "bb-client: " << e.what() << "\n";
    return kExitTransport;
  }
}
