// bb-fuzz — random-program differential fuzzing campaign driver.
//
// Generates seeded random mini-Balsa programs and handshake-component
// netlist recipes, pushes each through the synthesis flow twice
// (clustered vs template baseline), and cross-checks the two circuits
// by gate-level simulation plus trace-theoretic conformance of every
// clustered controller against its composed original.  Discrepancies
// are delta-debugged down to minimized reproducers.
//
// A separate protocol mode (--mode proto) instead fuzzes the untrusted
// byte surfaces — util::parse_json, serve::parse_request and the disk
// cache codec — with seeded malformed input (truncation, depth bombs,
// overlong strings, invalid UTF-8, NULs) and asserts every parser
// rejects with a structured error, never a throw or crash.
//
//   bb-fuzz [--seed N] [--count N] [--size N]
//           [--mode balsa|netlist|both|proto]
//
// Options:
//   --seed N            PRNG seed (default: BB_SEED env var, then 1)
//   --count N           cases per mode (default 100)
//   --size N            generator size budget (default 12)
//   --mode M            balsa | netlist | both | proto (default both)
//   --time-budget-ms N  stop the case loop after N ms (default: unlimited)
//   --max-states N      clustering state cap (default 40)
//   --no-sim            disable the differential simulation oracle
//   --no-conformance    disable the trace-conformance oracle
//   --json FILE         write the campaign JSON artifact (atomic)
//   --repro-dir DIR     write minimized reproducers here
//
// Exit status: 0 all cases clean, 1 discrepancy found (or internal
// error), 2 usage.
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

#include "src/fuzz/campaign.hpp"
#include "src/fuzz/proto.hpp"
#include "src/util/io.hpp"
#include "src/util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: bb-fuzz [--seed N] [--count N] [--size N] "
               "[--mode balsa|netlist|both|proto] [--time-budget-ms N] "
               "[--max-states N] [--no-sim] [--no-conformance] "
               "[--json FILE] [--repro-dir DIR]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bb::fuzz::FuzzOptions options;
  bool proto_mode = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(
          bb::util::parse_int("bb-fuzz", "--seed", argv[++i], 0,
                              std::numeric_limits<long long>::max()));
    } else if (arg == "--count" && i + 1 < argc) {
      options.count = static_cast<int>(
          bb::util::parse_int("bb-fuzz", "--count", argv[++i], 0, 1000000));
    } else if (arg == "--size" && i + 1 < argc) {
      options.size = static_cast<int>(
          bb::util::parse_int("bb-fuzz", "--size", argv[++i], 1, 1000));
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "balsa") {
        options.netlist_mode = false;
      } else if (mode == "netlist") {
        options.balsa_mode = false;
      } else if (mode == "proto") {
        proto_mode = true;
      } else if (mode != "both") {
        usage();
      }
    } else if (arg == "--time-budget-ms" && i + 1 < argc) {
      options.time_budget_ms =
          bb::util::parse_int("bb-fuzz", "--time-budget-ms", argv[++i], 0,
                              std::numeric_limits<long long>::max());
    } else if (arg == "--max-states" && i + 1 < argc) {
      options.max_states = static_cast<int>(
          bb::util::parse_int("bb-fuzz", "--max-states", argv[++i], 2, 100000));
    } else if (arg == "--no-sim") {
      options.sim_oracle = false;
    } else if (arg == "--no-conformance") {
      options.conformance_oracle = false;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--repro-dir" && i + 1 < argc) {
      options.repro_dir = argv[++i];
    } else {
      usage();
    }
  }

  try {
    if (proto_mode) {
      bb::fuzz::ProtoFuzzOptions popts;
      popts.seed = options.seed;
      popts.count = options.count;
      popts.time_budget_ms = options.time_budget_ms;
      const bb::fuzz::ProtoFuzzResult result = bb::fuzz::run_proto_fuzz(popts);
      std::cout << result.to_text();
      if (!json_path.empty()) {
        bb::util::write_file_atomic(json_path, result.to_json() + "\n");
        std::cout << "wrote " << json_path << "\n";
      }
      return result.violations > 0 ? 1 : 0;
    }
    const bb::fuzz::FuzzResult result = bb::fuzz::run_fuzz_campaign(options);
    std::cout << result.to_text();
    if (!json_path.empty()) {
      bb::util::write_file_atomic(json_path, result.to_json() + "\n");
      std::cout << "wrote " << json_path << "\n";
    }
    return result.discrepancies > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "bb-fuzz: " << e.what() << "\n";
    return 1;
  }
}
