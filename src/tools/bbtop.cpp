// bb-top — live one-screen view of a running bb-served daemon.
//
// Polls the `stats` and `metrics` ops over the daemon's Unix-domain
// socket and renders request rate, per-op latency quantiles (from the
// registry's log-bucket histograms), cache hit rates, admission /
// shedding state, and the disk-cache recovery counters.  Rates are
// derived client-side from counter deltas between consecutive frames,
// so the daemon needs no sliding-window machinery.
//
//   bb-top --socket /tmp/bb.sock
//   bb-top --socket /tmp/bb.sock --once --no-clear   # one frame (CI)
//
// Options:
//   --socket PATH      daemon socket (required)
//   --interval-ms N    refresh period (default 1000)
//   --count N          frames to render before exiting (default 0 = run
//                      until the daemon goes away or ^C)
//   --once             shorthand for --count 1
//   --no-clear         do not clear the terminal between frames (append
//                      frames instead; implied sensible for logs/CI)
//
// Exit status: 0 after --count frames, 1 when the daemon cannot be
// reached (first frame) or disappears mid-run, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/client.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/json.hpp"
#include "src/util/json_parse.hpp"
#include "src/util/strings.hpp"

namespace {

using bb::util::JsonValue;

[[noreturn]] void usage() {
  std::cerr << "usage: bb-top --socket PATH [--interval-ms N] [--count N]"
               " [--once] [--no-clear]\n";
  std::exit(2);
}

/// One sampled frame: the decoded stats and metrics replies plus the
/// moment they were taken.
struct Sample {
  std::chrono::steady_clock::time_point at;
  JsonValue stats;    ///< the "stats" member of the stats reply
  JsonValue metrics;  ///< the "metrics" member of the metrics reply
};

std::string request_line(const char* op) {
  bb::util::JsonWriter w;
  w.begin_object();
  w.member("schema_version", bb::serve::kProtocolVersion);
  w.member("op", op);
  w.end_object();
  return w.str();
}

/// Fetches one frame; throws on transport failure or a non-ok reply.
Sample take_sample(const std::string& socket_path, int timeout_ms) {
  bb::serve::Client client(socket_path);
  Sample s;
  for (const char* op : {"stats", "metrics"}) {
    const std::string reply = client.roundtrip(request_line(op), timeout_ms);
    auto doc = bb::util::parse_json(reply);
    if (!doc || doc->get_string("status") != "ok") {
      throw std::runtime_error(std::string("bad ") + op + " reply: " + reply);
    }
    const JsonValue* body = doc->get(op);
    if (body == nullptr) {
      throw std::runtime_error(std::string(op) + " reply missing body");
    }
    (op[0] == 's' ? s.stats : s.metrics) = *body;
  }
  s.at = std::chrono::steady_clock::now();
  return s;
}

std::int64_t stat_int(const JsonValue& stats, const char* section,
                      const char* key) {
  const JsonValue* sec = stats.get(section);
  return sec != nullptr ? sec->get_int(key, 0) : 0;
}

double counter(const JsonValue& metrics, const char* name) {
  const JsonValue* counters = metrics.get("counters");
  const JsonValue* v = counters != nullptr ? counters->get(name) : nullptr;
  return v != nullptr ? v->number : 0.0;
}

std::int64_t gauge(const JsonValue& metrics, const char* name) {
  const JsonValue* gauges = metrics.get("gauges");
  const JsonValue* v = gauges != nullptr ? gauges->get(name) : nullptr;
  return v != nullptr ? v->integer : 0;
}

std::string fmt_us(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

std::string fmt_rate(double per_s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f/s", per_s);
  return buf;
}

std::string fmt_pct(double num, double den) {
  if (den <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * num / den);
  return buf;
}

void render(const Sample& cur, const Sample* prev, bool clear) {
  std::string out;
  if (clear) out += "\033[H\033[2J";

  const double requests = counter(cur.metrics, "serve.requests");
  double rps = 0.0;
  if (prev != nullptr) {
    const double dt =
        std::chrono::duration<double>(cur.at - prev->at).count();
    const double prev_requests = counter(prev->metrics, "serve.requests");
    if (dt > 0.0 && requests >= prev_requests) {
      rps = (requests - prev_requests) / dt;
    }
  }

  out += "bb-top — bb-served\n\n";
  out += "  requests  " + std::to_string(static_cast<long long>(requests)) +
         "  (" + fmt_rate(rps) + ")";
  out += "   inflight " + std::to_string(gauge(cur.metrics, "serve.inflight")) +
         "/" + std::to_string(stat_int(cur.stats, "server", "max_inflight")) +
         " (peak " +
         std::to_string(gauge(cur.metrics, "serve.inflight_peak")) + ")\n";
  out += "  completed " +
         std::to_string(stat_int(cur.stats, "server", "completed")) +
         "   errors " + std::to_string(stat_int(cur.stats, "server", "errors")) +
         "   shed " +
         std::to_string(stat_int(cur.stats, "server", "overloaded")) +
         "   deduped " +
         std::to_string(stat_int(cur.stats, "server", "deduped")) +
         "   bad " +
         std::to_string(stat_int(cur.stats, "server", "bad_requests")) + "\n\n";

  // Per-op latency from the serve.op.<name>.us histograms: the server
  // publishes p50/p90/p99 estimates in every metrics snapshot.
  out += "  op                         count       p50       p99\n";
  const JsonValue* histograms = cur.metrics.get("histograms");
  if (histograms != nullptr) {
    for (const auto& [name, h] : histograms->object) {
      constexpr const char* kPrefix = "serve.op.";
      if (name.rfind(kPrefix, 0) != 0) continue;
      std::string op = name.substr(std::char_traits<char>::length(kPrefix));
      if (op.size() > 3 && op.compare(op.size() - 3, 3, ".us") == 0) {
        op.resize(op.size() - 3);
      }
      const JsonValue* p50 = h.get("p50");
      const JsonValue* p99 = h.get("p99");
      char row[128];
      std::snprintf(row, sizeof(row), "  %-24s %7lld %9s %9s\n", op.c_str(),
                    static_cast<long long>(h.get_int("count", 0)),
                    fmt_us(p50 != nullptr ? p50->number : 0.0).c_str(),
                    fmt_us(p99 != nullptr ? p99->number : 0.0).c_str());
      out += row;
    }
  }

  const double mem_hits = static_cast<double>(stat_int(cur.stats, "cache", "hits"));
  const double mem_misses =
      static_cast<double>(stat_int(cur.stats, "cache", "misses"));
  out += "\n  cache     hits " + std::to_string(static_cast<long long>(mem_hits)) +
         "   misses " + std::to_string(static_cast<long long>(mem_misses)) +
         "   hit-rate " + fmt_pct(mem_hits, mem_hits + mem_misses) +
         "   entries " + std::to_string(stat_int(cur.stats, "cache", "entries")) +
         "\n";
  if (cur.stats.get("disk_cache") != nullptr) {
    const double dhits =
        static_cast<double>(stat_int(cur.stats, "disk_cache", "hits"));
    const double dmisses =
        static_cast<double>(stat_int(cur.stats, "disk_cache", "misses"));
    out += "  disk      hits " + std::to_string(static_cast<long long>(dhits)) +
           "   misses " + std::to_string(static_cast<long long>(dmisses)) +
           "   hit-rate " + fmt_pct(dhits, dhits + dmisses) + "   stores " +
           std::to_string(stat_int(cur.stats, "disk_cache", "stores")) + "\n";
    out += "  recovery  recovered_tmp " +
           std::to_string(stat_int(cur.stats, "disk_cache", "recovered_tmp")) +
           "   quarantined " +
           std::to_string(stat_int(cur.stats, "disk_cache", "quarantined")) +
           "   journal_applied " +
           std::to_string(
               stat_int(cur.stats, "disk_cache", "journal_applied")) +
           "\n";
  }
  std::cout << out << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int interval_ms = 1000;
  long long count = 0;
  bool clear = true;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (flag == "--interval-ms" && i + 1 < argc) {
      interval_ms = static_cast<int>(bb::util::parse_int(
          "bb-top", "--interval-ms", argv[++i], 10, 3600000));
    } else if (flag == "--count" && i + 1 < argc) {
      count = bb::util::parse_int("bb-top", "--count", argv[++i], 0,
                                  std::numeric_limits<long long>::max());
    } else if (flag == "--once") {
      count = 1;
    } else if (flag == "--no-clear") {
      clear = false;
    } else {
      usage();
    }
  }
  if (socket_path.empty()) usage();

  Sample prev;
  bool have_prev = false;
  long long frames = 0;
  for (;;) {
    Sample cur;
    try {
      cur = take_sample(socket_path, interval_ms + 5000);
    } catch (const std::exception& e) {
      std::cerr << "bb-top: " << e.what() << "\n";
      return 1;
    }
    render(cur, have_prev ? &prev : nullptr, clear);
    prev = std::move(cur);
    have_prev = true;
    if (count > 0 && ++frames >= count) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
