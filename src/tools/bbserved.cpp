// bb-served — the synthesis service daemon.
//
// Listens on a Unix-domain socket for newline-delimited JSON requests
// (src/serve/protocol.hpp) and executes them on a shared thread pool in
// front of the tiered synthesis cache.  With --cache-dir (or
// BB_CACHE_DIR) the cache gains a persistent on-disk second tier that
// survives restarts and is shared between processes.
//
//   bb-served --socket /tmp/bb.sock [--cache-dir DIR]
//
// Options:
//   --socket PATH       Unix-domain socket to listen on (required)
//   --jobs N            synthesis worker threads (default: BB_JOBS, then
//                       hardware concurrency)
//   --max-inflight N    admission cap before shedding load (default 64)
//   --cache-dir DIR     persistent cache directory (default: BB_CACHE_DIR;
//                       unset = memory tier only)
//   --cache-max-mb N    disk tier size cap (default: BB_CACHE_MAX_MB,
//                       then 256)
//   --memory-entries N  in-memory tier entry cap (default 65536)
//   --work-budget N     default per-request work budget (default:
//                       BB_WORK_BUDGET via the flow, 0 = unlimited)
//   --line-timeout-ms N slow-trickle guard: close connections holding an
//                       incomplete request line longer than this
//                       (default 30000, 0 = off)
//   --log FILE          JSONL operational event log: one completion
//                       record per request (BB_LOG env fallback)
//   --slow-ms N         attach a request's spans to its event-log record
//                       when it runs at least N ms (BB_SLOW_MS fallback;
//                       negative = off, the default)
//   --span-ring N       per-thread span-ring capacity in events for the
//                       live `trace` op (default 16384)
//   --project-dir DIR   root directory for incremental-build projects
//                       (default: BB_PROJECT_DIR; unset = the
//                       synthesize_incremental op is disabled)
//   --no-live-trace     do not keep the span tracer enabled (the `trace`
//                       op then only sees spans from an explicit --trace
//                       session)
//   --trace FILE        Chrome trace-event JSON (BB_TRACE env fallback)
//   --metrics FILE      metrics snapshot JSON (BB_METRICS env fallback)
//
// Fault injection (debug/failpoint builds): BB_FAILPOINTS activates
// named failpoints (src/util/failpoint.hpp) and BB_CHAOS_SEED seeds
// their probabilistic actions; both are read at process start.
//
// SIGINT/SIGTERM (or a "shutdown" request) drain in-flight work, flush
// replies, and exit 0.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

#include "src/obs/session.hpp"
#include "src/serve/disk_cache.hpp"
#include "src/serve/server.hpp"
#include "src/util/strings.hpp"

namespace {

bb::serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();  // atomic flag only
}

[[noreturn]] void usage() {
  std::cerr << "usage: bb-served --socket PATH [--jobs N] [--max-inflight N]"
               " [--cache-dir DIR] [--cache-max-mb N] [--memory-entries N]"
               " [--work-budget N] [--line-timeout-ms N] [--log FILE]"
               " [--slow-ms N] [--span-ring N] [--no-live-trace]"
               " [--project-dir DIR] [--trace FILE] [--metrics FILE]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bb::serve::ServerOptions options;
  std::string trace_path;
  std::string metrics_path;
  if (const char* dir = std::getenv("BB_CACHE_DIR")) options.cache_dir = dir;
  if (const char* mb = std::getenv("BB_CACHE_MAX_MB")) {
    const auto parsed = bb::util::parse_ll(mb);
    if (parsed && *parsed > 0) {
      options.cache_max_bytes = static_cast<std::uint64_t>(*parsed) << 20;
    }
  }
  if (const char* log = std::getenv("BB_LOG")) options.log_path = log;
  if (const char* proj = std::getenv("BB_PROJECT_DIR")) {
    options.project_dir = proj;
  }
  if (const char* slow = std::getenv("BB_SLOW_MS")) {
    if (const auto parsed = bb::util::parse_ll(slow)) {
      options.slow_ms = static_cast<int>(*parsed);
    }
  }

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (flag == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<int>(
          bb::util::parse_int("bb-served", "--jobs", argv[++i], 0, 4096));
    } else if (flag == "--max-inflight" && i + 1 < argc) {
      options.max_inflight = static_cast<int>(bb::util::parse_int(
          "bb-served", "--max-inflight", argv[++i], 1, 1000000));
    } else if (flag == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (flag == "--cache-max-mb" && i + 1 < argc) {
      options.cache_max_bytes =
          static_cast<std::uint64_t>(bb::util::parse_int(
              "bb-served", "--cache-max-mb", argv[++i], 1, 1 << 20))
          << 20;
    } else if (flag == "--memory-entries" && i + 1 < argc) {
      options.memory_cache_entries =
          static_cast<std::size_t>(bb::util::parse_int(
              "bb-served", "--memory-entries", argv[++i], 1, 100000000));
    } else if (flag == "--work-budget" && i + 1 < argc) {
      options.default_work_budget = bb::util::parse_int(
          "bb-served", "--work-budget", argv[++i], 0,
          std::numeric_limits<long long>::max());
    } else if (flag == "--line-timeout-ms" && i + 1 < argc) {
      options.line_timeout_ms = static_cast<int>(bb::util::parse_int(
          "bb-served", "--line-timeout-ms", argv[++i], 0, 86400000));
    } else if (flag == "--log" && i + 1 < argc) {
      options.log_path = argv[++i];
    } else if (flag == "--slow-ms" && i + 1 < argc) {
      options.slow_ms = static_cast<int>(bb::util::parse_int(
          "bb-served", "--slow-ms", argv[++i], -1, 86400000));
    } else if (flag == "--span-ring" && i + 1 < argc) {
      options.span_ring = static_cast<std::size_t>(bb::util::parse_int(
          "bb-served", "--span-ring", argv[++i], 1024, 1 << 20));
    } else if (flag == "--project-dir" && i + 1 < argc) {
      options.project_dir = argv[++i];
    } else if (flag == "--no-live-trace") {
      options.live_trace = false;
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      usage();
    }
  }
  if (options.socket_path.empty()) usage();

  bb::obs::Session session(bb::obs::env_or(trace_path, "BB_TRACE"),
                           bb::obs::env_or(metrics_path, "BB_METRICS"));
  try {
    bb::serve::Server server(std::move(options));
    g_server = &server;
    struct sigaction sa {};
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    std::cerr << "bb-served: listening on " << server.options().socket_path
              << (server.disk_cache() != nullptr
                      ? " (cache-dir " + server.disk_cache()->root() + ")"
                      : std::string(" (memory cache only)"))
              << std::endl;
    server.run();

    const auto stats = server.stats();
    std::cerr << "bb-served: drained; " << stats.requests << " request(s), "
              << stats.completed << " completed, " << stats.errors
              << " error(s), " << stats.overloaded << " shed" << std::endl;
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::cerr << "bb-served: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
