// bbbc — the Balsa Burst-Mode Back-end Compiler driver.
//
// Runs any stage of the Fig. 1 flow on a mini-Balsa source file or one of
// the built-in evaluation designs:
//
//   bbbc netlist  <file|design>   handshake-component netlist (balsa-c out)
//   bbbc ch       <file|design>   CH programs before and after clustering
//   bbbc bms      <file|design>   Burst-Mode specs of the final controllers
//   bbbc sol      <file|design>   synthesized two-level logic (.sol style)
//   bbbc verilog  <file|design>   mapped control netlist, structural Verilog
//   bbbc report   <file|design>   controller/area report for both flows
//   bbbc bench    <design>        run the design's Table 3 benchmark row
//
// A source file may declare several procedures; every stage then runs
// per procedure (units), with a "== unit NAME ==" header separating the
// outputs.
//
// Options: --unoptimized (template baseline instead of the clustered
// back-end), --max-states N, --jobs N (controller-synthesis worker
// threads; 0 = auto), --no-cache (disable the synthesis cache),
// --incremental (verilog/report only: build through the persistent
// project graph in src/incr, reusing unchanged units),
// --project-dir DIR (the project directory for --incremental;
// BB_PROJECT_DIR env fallback),
// --trace FILE (Chrome trace-event JSON; BB_TRACE env fallback),
// --metrics FILE (metrics snapshot JSON; BB_METRICS env fallback).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/balsa/compile.hpp"
#include "src/balsa/parser.hpp"
#include "src/bm/compile.hpp"
#include "src/ch/printer.hpp"
#include "src/designs/designs.hpp"
#include "src/flow/benchmarks.hpp"
#include "src/flow/flow.hpp"
#include "src/hsnet/to_ch.hpp"
#include "src/incr/build.hpp"
#include "src/netlist/verilog.hpp"
#include "src/obs/session.hpp"
#include "src/opt/cluster.hpp"
#include "src/util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: bbbc <netlist|ch|bms|sol|verilog|report|bench> "
         "<file.balsa|design> [--unoptimized] [--max-states N] "
         "[--jobs N] [--no-cache] [--incremental] [--project-dir DIR] "
         "[--trace FILE] [--metrics FILE]\n"
         "built-in designs: systolic wagging stack ssem\n";
  std::exit(2);
}

std::string load_source(const std::string& arg) {
  for (const auto* d : bb::designs::all_designs()) {
    if (d->name == arg) return d->source;
  }
  std::ifstream file(arg);
  if (!file) {
    std::cerr << "bbbc: cannot open '" << arg
              << "' (and it is not a built-in design)\n";
    std::exit(1);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string command = argv[1];
  const std::string target = argv[2];

  bb::flow::FlowOptions options = bb::flow::FlowOptions::optimized();
  std::string trace_path;
  std::string metrics_path;
  std::string project_dir;
  if (const char* dir = std::getenv(bb::incr::kProjectDirEnv)) {
    project_dir = dir;
  }
  bool incremental = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--unoptimized") {
      options = bb::flow::FlowOptions::unoptimized();
    } else if (flag == "--incremental") {
      incremental = true;
    } else if (flag == "--project-dir" && i + 1 < argc) {
      project_dir = argv[++i];
    } else if (flag == "--max-states" && i + 1 < argc) {
      options.max_states = static_cast<int>(
          bb::util::parse_int("bbbc", "--max-states", argv[++i], 0, 1000000));
    } else if (flag == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<int>(
          bb::util::parse_int("bbbc", "--jobs", argv[++i], 0, 4096));
    } else if (flag == "--no-cache") {
      options.cache = false;
    } else if (flag == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      usage();
    }
  }
  bb::obs::Session session(bb::obs::env_or(trace_path, "BB_TRACE"),
                           bb::obs::env_or(metrics_path, "BB_METRICS"));

  try {
    if (command == "bench") {
      const auto row = bb::flow::run_table3_row(target);
      std::cout << row.title << "\n  unoptimized: " << row.unoptimized.time_ns
                << " ns, area " << row.unoptimized.total_area << " ("
                << row.unoptimized.detail << ")\n  optimized:   "
                << row.optimized.time_ns << " ns, area "
                << row.optimized.total_area << " (" << row.optimized.detail
                << ")\n  improvement " << row.speed_improvement_pct
                << " %, area overhead " << row.area_overhead_pct << " %\n";
      return row.unoptimized.ok && row.optimized.ok ? 0 : 1;
    }

    if (command != "netlist" && command != "ch" && command != "bms" &&
        command != "sol" && command != "verilog" && command != "report") {
      usage();
    }

    if (incremental) {
      if (command != "verilog" && command != "report") {
        std::cerr << "bbbc: --incremental supports the verilog and report "
                     "commands\n";
        return 2;
      }
      if (project_dir.empty()) {
        std::cerr << "bbbc: --incremental needs --project-dir (or the "
                  << bb::incr::kProjectDirEnv << " environment variable)\n";
        return 2;
      }
      const auto result =
          bb::incr::build(load_source(target), project_dir, options);
      if (command == "verilog") {
        std::cout << result.verilog;
      } else {
        std::cout << result.report;
        std::cout << "incremental: " << result.units_rebuilt
                  << " unit(s) rebuilt, " << result.units_reused
                  << " reused";
        if (result.full_rebuild) {
          std::cout << " (full rebuild: " << result.full_rebuild_reason
                    << ")";
        }
        std::cout << "\n" << result.timings.to_text();
      }
      return 0;
    }

    const auto procedures = bb::balsa::parse_program(load_source(target));
    const bool multi = procedures.size() > 1;
    for (const auto& procedure : procedures) {
      if (multi) std::cout << "== unit " << procedure.name << " ==\n";
      const auto net = bb::balsa::compile(procedure);

      if (command == "netlist") {
        std::cout << net.to_string();
      } else if (command == "ch") {
        std::cout << "-- CH programs (Balsa-to-CH):\n";
        auto programs = bb::hsnet::control_programs(net);
        for (const auto& p : programs) {
          std::cout << p.name << ":\n"
                    << bb::ch::to_pretty_string(*p.body, 1) << "\n";
        }
        bb::opt::ClusterOptions copts;
        copts.max_states = options.max_states;
        bb::opt::ClusterStats stats;
        const auto clustered =
            bb::opt::optimize(std::move(programs), copts, &stats);
        std::cout << "\n-- after clustering (" << clustered.size()
                  << " controllers):\n";
        for (const auto& line : stats.log) std::cout << "   " << line << "\n";
        for (const auto& c : clustered) {
          std::cout << c.program.name << ":\n"
                    << bb::ch::to_pretty_string(*c.program.body, 1) << "\n";
        }
      } else if (command == "bms" || command == "sol") {
        bb::opt::ClusterOptions copts;
        copts.max_states = options.max_states;
        auto clustered =
            options.cluster
                ? bb::opt::optimize(bb::hsnet::control_programs(net), copts,
                                    nullptr)
                : bb::opt::wrap(bb::hsnet::control_programs(net));
        for (const auto& c : clustered) {
          const auto spec = bb::bm::compile(*c.program.body, c.program.name);
          if (command == "bms") {
            std::cout << spec.to_bms() << "\n";
          } else {
            std::cout
                << bb::minimalist::synthesize(spec, options.mode).to_sol()
                << "\n";
          }
        }
      } else {
        auto result = bb::flow::synthesize_control(net, options);
        if (multi) result.gates.set_name(procedure.name);
        if (command == "verilog") {
          std::cout << bb::netlist::to_verilog(result.gates);
        } else {
          std::cout << bb::flow::report(result, /*with_timings=*/true);
          for (const auto& line : result.cluster_stats.log) {
            std::cout << "  " << line << "\n";
          }
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bbbc: " << e.what() << "\n";
    return 1;
  }
}
