// S-expression parser for the CH language.
//
// Accepted syntax follows Section 3 of the paper:
//   (p-to-p passive A)                     (mult-ack active C 2)
//   (rep <expr>)  (break)                  (mult-req passive D 3)
//   (enc-early <e1> <e2>)  (enc-middle ..) (enc-late ..)
//   (seq <e1> <e2> [<e3> ...])             (seq-ov <e1> <e2>)
//   (mutex <e1> <e2> [<e3> ...])           void | (void)
//   (mux-ack A (<op> <expr>) (<op> <expr>) ...)
//   (mux-req A (<op> <expr>) ...)
//   (verb (<ev1>) (<ev2>) (<ev3>) (<ev4>))  with <ev> = (i|o name +|-)*
// Keywords may use '-' or '_' interchangeably.  seq and mutex with more
// than two arguments right-associate, as in the paper.
#pragma once

#include <stdexcept>
#include <string>

#include "src/ch/ast.hpp"

namespace bb::ch {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses one CH expression.  Throws ParseError on malformed input.
ExprPtr parse(std::string_view text);

/// Parses a named program: "name : <expr>" or just "<expr>" (name "").
Program parse_program(std::string_view text);

}  // namespace bb::ch
