// Pretty-printer for CH expressions (inverse of the parser).
#pragma once

#include <string>

#include "src/ch/ast.hpp"

namespace bb::ch {

/// Renders an expression as a single-line s-expression.
std::string to_string(const Expr& e);

/// Renders with indentation, one operator per line, for reports.
std::string to_pretty_string(const Expr& e, int indent = 0);

}  // namespace bb::ch
