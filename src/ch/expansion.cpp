#include "src/ch/expansion.hpp"

#include <map>

#include "src/util/strings.hpp"

namespace bb::ch {

namespace {

/// Wire-name prefix for a channel (wire names are lower-case, as in the
/// paper's figures: channel "A1" has wires "a1_r" / "a1_a").
std::string wire_prefix(const std::string& channel) {
  return util::to_lower(channel);
}

Transition tr(bool is_input, std::string signal, bool rising) {
  return Transition{is_input, std::move(signal), rising};
}

/// Expansion context: unique label generation and the loop stack that
/// resolves break targets.
struct Context {
  const ExpandOptions& options;
  int next_label = 0;
  std::vector<std::string> loop_end_labels;

  std::string fresh_label(const std::string& stem) {
    return stem + std::to_string(next_label++);
  }
};

Expansion expand_rec(const Expr& e, Context& ctx);

ItemSeq concat(std::initializer_list<const ItemSeq*> seqs) {
  ItemSeq out;
  for (const ItemSeq* s : seqs) out.insert(out.end(), s->begin(), s->end());
  return out;
}

/// Applies Table 2 to combine two expansions under an interleaving
/// operator.  `op` must be an interleaving operator; legality has already
/// been established (or deliberately bypassed for the ablation study).
Expansion combine(ExprKind op, const Expansion& a, const Expansion& b) {
  const ItemSeq& a1 = a.events[0];
  const ItemSeq& a2 = a.events[1];
  const ItemSeq& a3 = a.events[2];
  const ItemSeq& a4 = a.events[3];
  const ItemSeq b_all = b.flatten();

  Expansion out;
  // Result activity: first argument decides; a void first argument defers
  // to the body (Section 4.1 inlining), seq-ov is active, mutex passive.
  out.activity = a.activity != Activity::kNeither ? a.activity : b.activity;

  switch (op) {
    case ExprKind::kEncEarly:
      if (a.activity == Activity::kActive) {
        out.events = {a1, concat({&a2, &b_all}), a3, a4};
      } else {
        out.events = {concat({&a1, &b_all}), a2, a3, a4};
      }
      break;
    case ExprKind::kEncLate:
      out.events = {a1, a2, a3, concat({&b_all, &a4})};
      break;
    case ExprKind::kEncMiddle: {
      const ItemSeq& b1 = b.events[0];
      const ItemSeq& b2 = b.events[1];
      const ItemSeq& b3 = b.events[2];
      const ItemSeq& b4 = b.events[3];
      out.events = {concat({&a1, &b1}), concat({&b2, &a2}),
                    concat({&a3, &b3}), concat({&b4, &a4})};
      break;
    }
    case ExprKind::kSeq: {
      const ItemSeq& b1 = b.events[0];
      out.events = {concat({&a1, &a2, &a3, &a4, &b1}), b.events[1],
                    b.events[2], b.events[3]};
      break;
    }
    case ExprKind::kSeqOv: {
      const ItemSeq& b1 = b.events[0];
      const ItemSeq& b2 = b.events[1];
      const ItemSeq& b3 = b.events[2];
      const ItemSeq& b4 = b.events[3];
      out.events = {concat({&a1, &a2}), concat({&b1, &b2}),
                    concat({&a3, &a4}), concat({&b3, &b4})};
      out.activity = Activity::kActive;
      break;
    }
    case ExprKind::kMutex: {
      const ItemSeq a_all = a.flatten();
      out.events[0].push_back(Item::make_choice({a_all, b_all}));
      out.activity = Activity::kPassive;
      break;
    }
    default:
      throw std::logic_error("combine: not an interleaving operator");
  }
  return out;
}

/// Checks Table 1 legality, throwing unless the options allow a bypass.
void check_legal(ExprKind op, const Expansion& a, const Expansion& b,
                 Context& ctx) {
  if (ctx.options.allow_illegal) return;
  if (!is_bm_aware(op, a.activity, b.activity)) {
    throw BmAwareError(std::string("illegal Burst-Mode combination: (") +
                       std::string(kind_keyword(op)) + " " +
                       std::string(activity_name(a.activity)) + " " +
                       std::string(activity_name(b.activity)) + ")");
  }
}

Expansion expand_ptop(const Expr& e) {
  Expansion out;
  out.activity = e.declared_activity;
  const std::string p = wire_prefix(e.channel);
  const bool active = e.declared_activity == Activity::kActive;
  // Active:  [(o r+)] [(i a+)] [(o r-)] [(i a-)]
  // Passive: [(i r+)] [(o a+)] [(i r-)] [(o a-)]
  out.events[0].push_back(Item::make(tr(!active, p + "_r", true)));
  out.events[1].push_back(Item::make(tr(active, p + "_a", true)));
  out.events[2].push_back(Item::make(tr(!active, p + "_r", false)));
  out.events[3].push_back(Item::make(tr(active, p + "_a", false)));
  return out;
}

Expansion expand_mult_ack(const Expr& e) {
  // One request wire, n synchronized acknowledge wires.
  Expansion out;
  out.activity = e.declared_activity;
  const std::string p = wire_prefix(e.channel);
  const bool active = e.declared_activity == Activity::kActive;
  out.events[0].push_back(Item::make(tr(!active, p + "_r", true)));
  for (int i = 1; i <= e.wires; ++i) {
    out.events[1].push_back(
        Item::make(tr(active, p + "_a" + std::to_string(i), true)));
  }
  out.events[2].push_back(Item::make(tr(!active, p + "_r", false)));
  for (int i = 1; i <= e.wires; ++i) {
    out.events[3].push_back(
        Item::make(tr(active, p + "_a" + std::to_string(i), false)));
  }
  return out;
}

Expansion expand_mult_req(const Expr& e) {
  // n synchronized request wires, one acknowledge wire.
  Expansion out;
  out.activity = e.declared_activity;
  const std::string p = wire_prefix(e.channel);
  const bool active = e.declared_activity == Activity::kActive;
  for (int i = 1; i <= e.wires; ++i) {
    out.events[0].push_back(
        Item::make(tr(!active, p + "_r" + std::to_string(i), true)));
  }
  out.events[1].push_back(Item::make(tr(active, p + "_a", true)));
  for (int i = 1; i <= e.wires; ++i) {
    out.events[2].push_back(
        Item::make(tr(!active, p + "_r" + std::to_string(i), false)));
  }
  out.events[3].push_back(Item::make(tr(active, p + "_a", false)));
  return out;
}

Expansion expand_mux_ack(const Expr& e, Context& ctx) {
  // Always active: the controller raises the request, the environment
  // answers on exactly one acknowledge wire, selecting a guarded branch.
  Expansion out;
  out.activity = Activity::kActive;
  const std::string p = wire_prefix(e.channel);

  std::vector<ItemSeq> alternatives;
  int index = 0;
  for (const MuxBranch& branch : e.branches) {
    ++index;
    // The branch's share of the mux handshake (an active stub):
    //   [] [(i a_ai+)] [(o a_r-)] [(i a_ai-)]
    Expansion share;
    share.activity = Activity::kActive;
    const std::string ack = p + "_a" + std::to_string(index);
    share.events[1].push_back(Item::make(tr(true, ack, true)));
    share.events[2].push_back(Item::make(tr(false, p + "_r", false)));
    share.events[3].push_back(Item::make(tr(true, ack, false)));

    const Expansion body = expand_rec(*branch.body, ctx);
    check_legal(branch.op, share, body, ctx);
    alternatives.push_back(combine(branch.op, share, body).flatten());
  }
  out.events[0].push_back(Item::make(tr(false, p + "_r", true)));
  out.events[0].push_back(Item::make_choice(std::move(alternatives)));
  return out;
}

Expansion expand_mux_req(const Expr& e, Context& ctx) {
  // Always passive: exactly one request wire fires, selecting a branch.
  Expansion out;
  out.activity = Activity::kPassive;
  const std::string p = wire_prefix(e.channel);

  std::vector<ItemSeq> alternatives;
  int index = 0;
  for (const MuxBranch& branch : e.branches) {
    ++index;
    // The branch's share:  [(i a_ri+)] [(o a_a+)] [(i a_ri-)] [(o a_a-)]
    Expansion share;
    share.activity = Activity::kPassive;
    const std::string req = p + "_r" + std::to_string(index);
    share.events[0].push_back(Item::make(tr(true, req, true)));
    share.events[1].push_back(Item::make(tr(false, p + "_a", true)));
    share.events[2].push_back(Item::make(tr(true, req, false)));
    share.events[3].push_back(Item::make(tr(false, p + "_a", false)));

    const Expansion body = expand_rec(*branch.body, ctx);
    check_legal(branch.op, share, body, ctx);
    alternatives.push_back(combine(branch.op, share, body).flatten());
  }
  out.events[0].push_back(Item::make_choice(std::move(alternatives)));
  return out;
}

Expansion expand_rec(const Expr& e, Context& ctx) {
  switch (e.kind) {
    case ExprKind::kPToP:
      return expand_ptop(e);
    case ExprKind::kMultAck:
      return expand_mult_ack(e);
    case ExprKind::kMultReq:
      return expand_mult_req(e);
    case ExprKind::kMuxAck:
      return expand_mux_ack(e, ctx);
    case ExprKind::kMuxReq:
      return expand_mux_req(e, ctx);
    case ExprKind::kVoid:
      return Expansion{};
    case ExprKind::kVerb: {
      Expansion out;
      out.activity = activity_of(e);
      for (std::size_t i = 0; i < 4; ++i) {
        for (const Transition& t : e.verb_events[i]) {
          out.events[i].push_back(Item::make(t));
        }
      }
      return out;
    }
    case ExprKind::kRep: {
      // [label L  <body>  (goto L)  label Lend] [] [] []
      const std::string start = ctx.fresh_label("L");
      const std::string end = ctx.fresh_label("E");
      ctx.loop_end_labels.push_back(end);
      const Expansion body = expand_rec(*e.args.at(0), ctx);
      ctx.loop_end_labels.pop_back();

      Expansion out;
      out.activity = body.activity;
      ItemSeq& ev = out.events[0];
      ev.push_back(Item::make_label(start));
      const ItemSeq flat = body.flatten();
      ev.insert(ev.end(), flat.begin(), flat.end());
      ev.push_back(Item::make_goto(start));
      ev.push_back(Item::make_label(end));
      return out;
    }
    case ExprKind::kBreak: {
      if (ctx.loop_end_labels.empty()) {
        throw std::logic_error("CH: (break) outside of any (rep ...)");
      }
      Expansion out;
      out.events[0].push_back(Item::make_bgoto(ctx.loop_end_labels.back()));
      return out;
    }
    case ExprKind::kEncEarly:
    case ExprKind::kEncMiddle:
    case ExprKind::kEncLate:
    case ExprKind::kSeq:
    case ExprKind::kSeqOv:
    case ExprKind::kMutex: {
      const Expansion a = expand_rec(*e.args.at(0), ctx);
      const Expansion b = expand_rec(*e.args.at(1), ctx);
      check_legal(e.kind, a, b, ctx);
      return combine(e.kind, a, b);
    }
  }
  throw std::logic_error("expand: unknown expression kind");
}

void collect_signals(const ItemSeq& items,
                     std::map<std::string, bool>& directions) {
  for (const Item& item : items) {
    switch (item.kind) {
      case Item::Kind::kTransition: {
        const auto [it, inserted] = directions.emplace(
            item.transition.signal, item.transition.is_input);
        if (!inserted && it->second != item.transition.is_input) {
          throw std::logic_error("signal used as both input and output: " +
                                 item.transition.signal);
        }
        break;
      }
      case Item::Kind::kChoice:
        for (const ItemSeq& alt : item.alternatives) {
          collect_signals(alt, directions);
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace

Item Item::make(Transition t) {
  Item i;
  i.kind = Kind::kTransition;
  i.transition = std::move(t);
  return i;
}
Item Item::make_label(std::string name) {
  Item i;
  i.kind = Kind::kLabel;
  i.label = std::move(name);
  return i;
}
Item Item::make_goto(std::string name) {
  Item i;
  i.kind = Kind::kGoto;
  i.label = std::move(name);
  return i;
}
Item Item::make_bgoto(std::string name) {
  Item i;
  i.kind = Kind::kBGoto;
  i.label = std::move(name);
  return i;
}
Item Item::make_choice(std::vector<std::vector<Item>> alts) {
  Item i;
  i.kind = Kind::kChoice;
  i.alternatives = std::move(alts);
  return i;
}

ItemSeq Expansion::flatten() const {
  ItemSeq out;
  for (const ItemSeq& ev : events) out.insert(out.end(), ev.begin(), ev.end());
  return out;
}

bool is_bm_aware(ExprKind op, Activity first, Activity second) {
  // Void arguments (activity "neither") are transparent: they contribute no
  // events, so the combination is legal whenever some concrete activity
  // assignment for the void side is.
  if (first == Activity::kNeither || second == Activity::kNeither) {
    if (first == Activity::kNeither && second == Activity::kNeither) {
      return true;
    }
    for (const Activity a : {Activity::kPassive, Activity::kActive}) {
      const Activity f = first == Activity::kNeither ? a : first;
      const Activity s = second == Activity::kNeither ? a : second;
      if (is_bm_aware(op, f, s)) return true;
    }
    return false;
  }

  const bool fa = first == Activity::kActive;
  const bool sa = second == Activity::kActive;
  switch (op) {
    case ExprKind::kEncEarly:
    case ExprKind::kEncMiddle:
    case ExprKind::kSeq:
      // active/active yes, active/passive no, passive/* yes  (Table 1)
      return !(fa && !sa);
    case ExprKind::kEncLate:
      // only passive/* are legal
      return !fa;
    case ExprKind::kSeqOv:
      // only active/active
      return fa && sa;
    case ExprKind::kMutex:
      // only passive/passive
      return !fa && !sa;
    default:
      return false;
  }
}

Expansion expand(const Expr& e, const ExpandOptions& options) {
  Context ctx{options, 0, {}};
  return expand_rec(e, ctx);
}

std::string to_string(const Transition& t) {
  return std::string("(") + (t.is_input ? "i " : "o ") + t.signal +
         (t.rising ? " +" : " -") + ")";
}

std::string to_string(const Item& item) {
  switch (item.kind) {
    case Item::Kind::kTransition:
      return to_string(item.transition);
    case Item::Kind::kLabel:
      return "label " + item.label;
    case Item::Kind::kGoto:
      return "(goto " + item.label + ")";
    case Item::Kind::kBGoto:
      return "(bgoto " + item.label + ")";
    case Item::Kind::kChoice: {
      std::string s = "choice";
      for (const ItemSeq& alt : item.alternatives) {
        s += " { " + to_string(alt) + " }";
      }
      return s;
    }
  }
  return "?";
}

std::string to_string(const ItemSeq& items) {
  std::string s;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += " ";
    s += to_string(items[i]);
  }
  return s;
}

std::string to_string(const Expansion& expansion) {
  std::string s;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i > 0) s += " ";
    s += "[" + to_string(expansion.events[i]) + "]";
  }
  return s;
}

std::vector<SignalInfo> signals_of(const Expansion& expansion) {
  std::map<std::string, bool> directions;
  for (const ItemSeq& ev : expansion.events) collect_signals(ev, directions);
  std::vector<SignalInfo> out;
  out.reserve(directions.size());
  for (const auto& [name, is_input] : directions) {
    out.push_back(SignalInfo{name, is_input});
  }
  return out;
}

}  // namespace bb::ch
