#include "src/ch/ast.hpp"

#include <stdexcept>

namespace bb::ch {

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->channel = channel;
  out->declared_activity = declared_activity;
  out->wires = wires;
  out->verb_events = verb_events;
  out->branches.reserve(branches.size());
  for (const MuxBranch& b : branches) {
    out->branches.push_back(MuxBranch{b.op, b.body ? b.body->clone() : nullptr});
  }
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) {
    out->args.push_back(a ? a->clone() : nullptr);
  }
  return out;
}

bool is_channel(ExprKind kind) {
  switch (kind) {
    case ExprKind::kPToP:
    case ExprKind::kMultAck:
    case ExprKind::kMultReq:
    case ExprKind::kMuxAck:
    case ExprKind::kMuxReq:
    case ExprKind::kVoid:
    case ExprKind::kVerb:
      return true;
    default:
      return false;
  }
}

bool is_interleaving(ExprKind kind) {
  switch (kind) {
    case ExprKind::kEncEarly:
    case ExprKind::kEncMiddle:
    case ExprKind::kEncLate:
    case ExprKind::kSeq:
    case ExprKind::kSeqOv:
    case ExprKind::kMutex:
      return true;
    default:
      return false;
  }
}

std::string_view kind_keyword(ExprKind kind) {
  switch (kind) {
    case ExprKind::kPToP: return "p-to-p";
    case ExprKind::kMultAck: return "mult-ack";
    case ExprKind::kMultReq: return "mult-req";
    case ExprKind::kMuxAck: return "mux-ack";
    case ExprKind::kMuxReq: return "mux-req";
    case ExprKind::kVoid: return "void";
    case ExprKind::kVerb: return "verb";
    case ExprKind::kRep: return "rep";
    case ExprKind::kBreak: return "break";
    case ExprKind::kEncEarly: return "enc-early";
    case ExprKind::kEncMiddle: return "enc-middle";
    case ExprKind::kEncLate: return "enc-late";
    case ExprKind::kSeq: return "seq";
    case ExprKind::kSeqOv: return "seq-ov";
    case ExprKind::kMutex: return "mutex";
  }
  return "?";
}

std::string_view activity_name(Activity a) {
  switch (a) {
    case Activity::kPassive: return "passive";
    case Activity::kActive: return "active";
    case Activity::kNeither: return "neither";
  }
  return "?";
}

Activity activity_of(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kPToP:
    case ExprKind::kMultAck:
    case ExprKind::kMultReq:
      return e.declared_activity;
    case ExprKind::kMuxAck:
      return Activity::kActive;
    case ExprKind::kMuxReq:
      return Activity::kPassive;
    case ExprKind::kVoid:
      return Activity::kNeither;
    case ExprKind::kVerb: {
      for (const auto& ev : e.verb_events) {
        if (!ev.empty()) {
          return ev.front().is_input ? Activity::kPassive : Activity::kActive;
        }
      }
      return Activity::kNeither;
    }
    case ExprKind::kRep:
      return e.args.empty() ? Activity::kNeither : activity_of(*e.args[0]);
    case ExprKind::kBreak:
      return Activity::kNeither;
    case ExprKind::kSeqOv:
      return Activity::kActive;
    case ExprKind::kMutex:
      return Activity::kPassive;
    case ExprKind::kEncEarly:
    case ExprKind::kEncMiddle:
    case ExprKind::kEncLate:
    case ExprKind::kSeq: {
      if (e.args.size() < 2) {
        throw std::logic_error("activity_of: interleaving operator needs 2 args");
      }
      const Activity first = activity_of(*e.args[0]);
      // A void first argument (activation channel hidden by the optimizer)
      // makes the inlined body's activity decisive.
      if (first == Activity::kNeither) return activity_of(*e.args[1]);
      return first;
    }
  }
  return Activity::kNeither;
}

ExprPtr ptop(Activity a, std::string name) {
  auto e = std::make_unique<Expr>(ExprKind::kPToP);
  e->declared_activity = a;
  e->channel = std::move(name);
  return e;
}

ExprPtr mult_ack(Activity a, std::string name, int n) {
  auto e = std::make_unique<Expr>(ExprKind::kMultAck);
  e->declared_activity = a;
  e->channel = std::move(name);
  e->wires = n;
  return e;
}

ExprPtr mult_req(Activity a, std::string name, int n) {
  auto e = std::make_unique<Expr>(ExprKind::kMultReq);
  e->declared_activity = a;
  e->channel = std::move(name);
  e->wires = n;
  return e;
}

ExprPtr mux_ack(std::string name, std::vector<MuxBranch> branches) {
  auto e = std::make_unique<Expr>(ExprKind::kMuxAck);
  e->channel = std::move(name);
  e->wires = static_cast<int>(branches.size());
  e->branches = std::move(branches);
  return e;
}

ExprPtr mux_req(std::string name, std::vector<MuxBranch> branches) {
  auto e = std::make_unique<Expr>(ExprKind::kMuxReq);
  e->channel = std::move(name);
  e->wires = static_cast<int>(branches.size());
  e->branches = std::move(branches);
  return e;
}

ExprPtr void_channel() { return std::make_unique<Expr>(ExprKind::kVoid); }

ExprPtr rep(ExprPtr body) {
  auto e = std::make_unique<Expr>(ExprKind::kRep);
  e->args.push_back(std::move(body));
  return e;
}

ExprPtr brk() { return std::make_unique<Expr>(ExprKind::kBreak); }

ExprPtr op2(ExprKind kind, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>(kind);
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr enc_early(ExprPtr a, ExprPtr b) {
  return op2(ExprKind::kEncEarly, std::move(a), std::move(b));
}
ExprPtr enc_middle(ExprPtr a, ExprPtr b) {
  return op2(ExprKind::kEncMiddle, std::move(a), std::move(b));
}
ExprPtr enc_late(ExprPtr a, ExprPtr b) {
  return op2(ExprKind::kEncLate, std::move(a), std::move(b));
}
ExprPtr seq(ExprPtr a, ExprPtr b) {
  return op2(ExprKind::kSeq, std::move(a), std::move(b));
}
ExprPtr seq_ov(ExprPtr a, ExprPtr b) {
  return op2(ExprKind::kSeqOv, std::move(a), std::move(b));
}
ExprPtr mutex(ExprPtr a, ExprPtr b) {
  return op2(ExprKind::kMutex, std::move(a), std::move(b));
}

}  // namespace bb::ch
