// Abstract syntax for CH, the channel-level control specification language
// of the paper (Section 3).
//
// A CH program models one asynchronous controller.  Expressions are either
// channel declarations (leaves) or operators (internal nodes).  Both carry
// an "activity" (passive / active / neither) and both expand into four
// "higher-level" atomic events (the four-phase expansion).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace bb::ch {

/// Expression node kinds: seven channel types and eight operators.
enum class ExprKind {
  // --- channels (Section 3.1) ---
  kPToP,     ///< point-to-point: one request, one acknowledge wire
  kMultAck,  ///< one request wire, n acknowledge wires (synchronized acks)
  kMultReq,  ///< n request wires, one acknowledge wire
  kMuxAck,   ///< one request, n acks; exactly one ack answers (always active)
  kMuxReq,   ///< n requests, one ack; exactly one request fires (always passive)
  kVoid,     ///< all four events empty; used internally by the optimizer
  kVerb,     ///< events given verbatim by the user
  // --- looping operators (Section 3.2) ---
  kRep,    ///< repeat argument forever (until broken)
  kBreak,  ///< terminate the innermost rep
  // --- interleaving operators (Section 3.3) ---
  kEncEarly,   ///< enclose arg2's handshake between events 1 and 2 of arg1
  kEncMiddle,  ///< interleave phases pairwise (C-element / fork style)
  kEncLate,    ///< enclose arg2's handshake between events 3 and 4 of arg1
  kSeq,        ///< sequence arg1 then arg2
  kSeqOv,      ///< overlapped sequencing (transferrer style)
  kMutex,      ///< externally-arbitrated mutual exclusion of two behaviours
};

/// Handshake activity of a channel or operator expression.
enum class Activity {
  kPassive,  ///< handshake initiated by an input request
  kActive,   ///< handshake initiated by an output request
  kNeither,  ///< no events of its own (void, break)
};

/// A single signal edge, e.g. "(i a_r +)".
struct Transition {
  bool is_input = false;
  std::string signal;
  bool rising = true;

  bool operator==(const Transition&) const = default;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One branch of a mux-ack / mux-req channel: an interleaving operator that
/// combines the branch's share of the mux handshake with a guarded body.
struct MuxBranch {
  ExprKind op = ExprKind::kEncEarly;  ///< must be an interleaving operator
  ExprPtr body;
};

/// A CH expression tree node.  Channel fields are meaningful only for
/// channel kinds; `args` only for operators; `branches` only for muxes.
struct Expr {
  ExprKind kind = ExprKind::kVoid;

  // Channel payload.
  std::string channel;                           ///< channel name
  Activity declared_activity = Activity::kNeither;
  int wires = 0;                                 ///< n for mult-ack / mult-req
  std::vector<MuxBranch> branches;               ///< mux channels
  std::array<std::vector<Transition>, 4> verb_events;  ///< verb channels

  // Operator payload (1 arg for rep, 0 for break, 2 for interleavings).
  std::vector<ExprPtr> args;

  Expr() = default;
  explicit Expr(ExprKind k) : kind(k) {}

  /// Deep copy.
  ExprPtr clone() const;
};

/// True if `kind` denotes a channel declaration.
bool is_channel(ExprKind kind);

/// True if `kind` denotes one of the six interleaving operators.
bool is_interleaving(ExprKind kind);

/// Human-readable keyword for a node kind ("p-to-p", "enc-early", ...).
std::string_view kind_keyword(ExprKind kind);

/// "passive" / "active" / "neither".
std::string_view activity_name(Activity a);

/// The activity of an expression, computed per Section 3 rules:
///   channels per declaration (mux-ack active, mux-req passive, void neither);
///   rep inherits its argument; break is neither; enclosures and sequencing
///   inherit the first argument (or the second, if the first is void);
///   seq-ov is active; mutex is passive.
Activity activity_of(const Expr& e);

/// A named controller: one CH expression plus its identity in the netlist.
struct Program {
  std::string name;
  ExprPtr body;

  Program() = default;
  Program(std::string n, ExprPtr b) : name(std::move(n)), body(std::move(b)) {}
  Program clone() const { return Program(name, body ? body->clone() : nullptr); }
};

// ---- Construction helpers (used heavily by translators and tests) ----

ExprPtr ptop(Activity a, std::string name);
ExprPtr mult_ack(Activity a, std::string name, int n);
ExprPtr mult_req(Activity a, std::string name, int n);
ExprPtr mux_ack(std::string name, std::vector<MuxBranch> branches);
ExprPtr mux_req(std::string name, std::vector<MuxBranch> branches);
ExprPtr void_channel();
ExprPtr rep(ExprPtr body);
ExprPtr brk();
ExprPtr op2(ExprKind kind, ExprPtr a, ExprPtr b);
ExprPtr enc_early(ExprPtr a, ExprPtr b);
ExprPtr enc_middle(ExprPtr a, ExprPtr b);
ExprPtr enc_late(ExprPtr a, ExprPtr b);
ExprPtr seq(ExprPtr a, ExprPtr b);
ExprPtr seq_ov(ExprPtr a, ExprPtr b);
ExprPtr mutex(ExprPtr a, ExprPtr b);

}  // namespace bb::ch
