// Four-phase handshake expansion of CH expressions (paper Sections 3.1-3.3,
// Table 2) and the Burst-Mode-aware legality table (Table 1).
//
// The expansion of an expression is four "higher-level" atomic events; each
// event is a sequence of items: signal transitions plus the control-flow
// keywords label / goto / bgoto / choice that Sections 3.2-3.3 introduce.
// Flattening the four events in order yields the *intermediate form* that
// the CH-to-BMS compiler consumes (Section 3.6).
#pragma once

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ch/ast.hpp"

namespace bb::ch {

/// One element of an expansion event.
struct Item {
  enum class Kind {
    kTransition,  ///< a signal edge
    kLabel,       ///< loop / join label
    kGoto,        ///< back-edge to a label (rep)
    kBGoto,       ///< forward edge out of the innermost loop (break)
    kChoice,      ///< externally-resolved alternative behaviours
  };

  Kind kind = Kind::kTransition;
  Transition transition;                        ///< kTransition
  std::string label;                            ///< kLabel / kGoto / kBGoto
  std::vector<std::vector<Item>> alternatives;  ///< kChoice

  static Item make(Transition t);
  static Item make_label(std::string name);
  static Item make_goto(std::string name);
  static Item make_bgoto(std::string name);
  static Item make_choice(std::vector<std::vector<Item>> alts);
};

using ItemSeq = std::vector<Item>;

/// The four-phase expansion of a CH expression.
struct Expansion {
  std::array<ItemSeq, 4> events;
  Activity activity = Activity::kNeither;

  /// Concatenation of the four events: the intermediate form.
  ItemSeq flatten() const;
};

/// Raised when an expansion would require an operator/activity combination
/// that is not Burst-Mode aware (a "no" entry of Table 1).
class BmAwareError : public std::runtime_error {
 public:
  explicit BmAwareError(const std::string& what) : std::runtime_error(what) {}
};

/// Table 1: is (op, first-arg activity, second-arg activity) a legal,
/// correct-by-construction Burst-Mode combination?  `kNeither` arguments
/// (void channels inserted by the optimizer) are transparent: the
/// combination is judged as if the void argument adopted the legal side.
bool is_bm_aware(ExprKind op, Activity first, Activity second);

/// Options for the expansion engine.
struct ExpandOptions {
  /// When true, illegal (Table 1 "no") combinations expand with a naive
  /// best-guess interleaving instead of throwing.  Used by the ablation
  /// benchmark to demonstrate that such expansions fail BM validation.
  bool allow_illegal = false;
};

/// Expands a CH expression into its four-phase expansion.
/// Throws BmAwareError for Table 1 "no" combinations (unless allowed).
Expansion expand(const Expr& e, const ExpandOptions& options = {});

/// Renders an expansion in the paper's notation, e.g.
/// "[(i a_r +)] [(o a_a +)] [(i a_r -)] [(o a_a -)]".
std::string to_string(const Expansion& expansion);
std::string to_string(const ItemSeq& items);
std::string to_string(const Item& item);
std::string to_string(const Transition& t);

/// All signal names referenced by an expansion, with their directions.
struct SignalInfo {
  std::string name;
  bool is_input = false;
};
std::vector<SignalInfo> signals_of(const Expansion& expansion);

}  // namespace bb::ch
