#include "src/ch/parser.hpp"

#include <optional>
#include <vector>

#include "src/util/strings.hpp"

namespace bb::ch {

namespace {

// ---- S-expression layer ----

struct Sexp {
  bool is_atom = false;
  std::string atom;
  std::vector<Sexp> list;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : text_(text) {}

  std::optional<std::string> next() {
    skip_space();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '(' || c == ')') {
      ++pos_;
      return std::string(1, c);
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

 private:
  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ';') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Sexp parse_sexp(Tokenizer& tok) {
  const auto t = tok.next();
  if (!t) throw ParseError("CH: unexpected end of input");
  if (*t == "(") {
    Sexp s;
    while (true) {
      const auto peeked = tok.next();
      if (!peeked) throw ParseError("CH: missing ')'");
      if (*peeked == ")") return s;
      if (*peeked == "(") {
        // Re-parse the sub-list: emulate push-back by recursing on a
        // sub-tokenizer is awkward, so build the element inline.
        Sexp child;
        int depth = 1;
        std::vector<Sexp*> stack{&child};
        while (depth > 0) {
          const auto inner = tok.next();
          if (!inner) throw ParseError("CH: missing ')'");
          if (*inner == "(") {
            stack.back()->list.emplace_back();
            stack.push_back(&stack.back()->list.back());
            ++depth;
          } else if (*inner == ")") {
            stack.pop_back();
            --depth;
          } else {
            Sexp atom;
            atom.is_atom = true;
            atom.atom = *inner;
            stack.back()->list.push_back(std::move(atom));
          }
        }
        s.list.push_back(std::move(child));
      } else {
        Sexp atom;
        atom.is_atom = true;
        atom.atom = *peeked;
        s.list.push_back(std::move(atom));
      }
    }
  }
  Sexp atom;
  atom.is_atom = true;
  atom.atom = *t;
  return atom;
}

// ---- CH layer ----

/// Normalizes keywords: lower-case, '_' -> '-'.
std::string keyword(const std::string& s) {
  return util::replace_all(util::to_lower(s), "_", "-");
}

Activity parse_activity(const Sexp& s) {
  if (!s.is_atom) throw ParseError("CH: expected activity keyword");
  const std::string k = keyword(s.atom);
  if (k == "passive") return Activity::kPassive;
  if (k == "active") return Activity::kActive;
  throw ParseError("CH: bad activity '" + s.atom + "'");
}

ExprKind interleaving_kind(const std::string& kw) {
  if (kw == "enc-early") return ExprKind::kEncEarly;
  if (kw == "enc-middle") return ExprKind::kEncMiddle;
  if (kw == "enc-late") return ExprKind::kEncLate;
  if (kw == "seq") return ExprKind::kSeq;
  if (kw == "seq-ov") return ExprKind::kSeqOv;
  if (kw == "mutex") return ExprKind::kMutex;
  throw ParseError("CH: '" + kw + "' is not an interleaving operator");
}

ExprPtr build(const Sexp& s);

std::vector<Transition> build_event(const Sexp& s) {
  std::vector<Transition> out;
  for (const Sexp& t : s.list) {
    if (t.list.size() != 3 || !t.list[0].is_atom || !t.list[1].is_atom ||
        !t.list[2].is_atom) {
      throw ParseError("CH: verb transition must be (i|o name +|-)");
    }
    Transition tr;
    const std::string dir = keyword(t.list[0].atom);
    if (dir == "i") {
      tr.is_input = true;
    } else if (dir == "o") {
      tr.is_input = false;
    } else {
      throw ParseError("CH: verb transition direction must be i or o");
    }
    tr.signal = util::to_lower(t.list[1].atom);
    if (t.list[2].atom == "+") {
      tr.rising = true;
    } else if (t.list[2].atom == "-") {
      tr.rising = false;
    } else {
      throw ParseError("CH: verb transition polarity must be + or -");
    }
    out.push_back(std::move(tr));
  }
  return out;
}

std::vector<MuxBranch> build_branches(const Sexp& s, std::size_t from) {
  std::vector<MuxBranch> branches;
  for (std::size_t i = from; i < s.list.size(); ++i) {
    const Sexp& b = s.list[i];
    if (b.is_atom || b.list.size() != 2 || !b.list[0].is_atom) {
      throw ParseError("CH: mux branch must be (<op> <expr>)");
    }
    MuxBranch branch;
    branch.op = interleaving_kind(keyword(b.list[0].atom));
    branch.body = build(b.list[1]);
    branches.push_back(std::move(branch));
  }
  if (branches.empty()) throw ParseError("CH: mux channel needs branches");
  return branches;
}

ExprPtr build(const Sexp& s) {
  if (s.is_atom) {
    if (keyword(s.atom) == "void") return void_channel();
    throw ParseError("CH: unexpected atom '" + s.atom + "'");
  }
  if (s.list.empty() || !s.list[0].is_atom) {
    throw ParseError("CH: expected (keyword ...)");
  }
  const std::string kw = keyword(s.list[0].atom);
  const std::size_t n = s.list.size();

  if (kw == "p-to-p") {
    if (n != 3 || !s.list[2].is_atom) {
      throw ParseError("CH: p-to-p wants (p-to-p activity name)");
    }
    return ptop(parse_activity(s.list[1]), s.list[2].atom);
  }
  if (kw == "mult-ack" || kw == "mult-req") {
    if (n != 4 || !s.list[2].is_atom || !s.list[3].is_atom) {
      throw ParseError("CH: " + kw + " wants (" + kw + " activity name n)");
    }
    const auto wires_value = util::parse_ll(s.list[3].atom);
    if (!wires_value || *wires_value < 1 || *wires_value > 4096) {
      throw ParseError("CH: " + kw + " wire count '" + s.list[3].atom +
                       "' must be an integer in 1..4096");
    }
    const int wires = static_cast<int>(*wires_value);
    return kw == "mult-ack"
               ? mult_ack(parse_activity(s.list[1]), s.list[2].atom, wires)
               : mult_req(parse_activity(s.list[1]), s.list[2].atom, wires);
  }
  if (kw == "mux-ack" || kw == "mux-req") {
    if (n < 3 || !s.list[1].is_atom) {
      throw ParseError("CH: " + kw + " wants (" + kw + " name (op expr)...)");
    }
    auto branches = build_branches(s, 2);
    return kw == "mux-ack" ? mux_ack(s.list[1].atom, std::move(branches))
                           : mux_req(s.list[1].atom, std::move(branches));
  }
  if (kw == "void") {
    if (n != 1) throw ParseError("CH: void takes no arguments");
    return void_channel();
  }
  if (kw == "verb") {
    if (n != 5) throw ParseError("CH: verb wants four event lists");
    auto e = std::make_unique<Expr>(ExprKind::kVerb);
    for (std::size_t i = 0; i < 4; ++i) {
      e->verb_events[i] = build_event(s.list[i + 1]);
    }
    return e;
  }
  if (kw == "rep") {
    if (n != 2) throw ParseError("CH: rep takes exactly one argument");
    return rep(build(s.list[1]));
  }
  if (kw == "break") {
    if (n != 1) throw ParseError("CH: break takes no arguments");
    return brk();
  }

  const ExprKind op = interleaving_kind(kw);
  if ((op == ExprKind::kSeq || op == ExprKind::kMutex) && n > 3) {
    // Right-associate extra arguments, as the paper specifies:
    // (seq c1 c2 c3) == (seq c1 (seq c2 c3)).
    ExprPtr tail = build(s.list[n - 1]);
    for (std::size_t i = n - 2; i >= 2; --i) {
      tail = op2(op, build(s.list[i]), std::move(tail));
    }
    return op2(op, build(s.list[1]), std::move(tail));
  }
  if (n != 3) {
    throw ParseError("CH: " + kw + " takes exactly two arguments");
  }
  return op2(op, build(s.list[1]), build(s.list[2]));
}

}  // namespace

ExprPtr parse(std::string_view text) {
  Tokenizer tok(text);
  const Sexp s = parse_sexp(tok);
  ExprPtr e = build(s);
  if (const auto extra = tok.next()) {
    throw ParseError("CH: trailing input '" + *extra + "'");
  }
  return e;
}

Program parse_program(std::string_view text) {
  const std::size_t colon = text.find(':');
  std::string name;
  std::string_view body = text;
  if (colon != std::string_view::npos &&
      text.find('(') != std::string_view::npos &&
      colon < text.find('(')) {
    name = std::string(util::trim(text.substr(0, colon)));
    body = text.substr(colon + 1);
  }
  return Program(std::move(name), parse(body));
}

}  // namespace bb::ch
