#include "src/ch/printer.hpp"

namespace bb::ch {

namespace {

std::string transition_text(const Transition& t) {
  return std::string("(") + (t.is_input ? "i " : "o ") + t.signal +
         (t.rising ? " +" : " -") + ")";
}

std::string render(const Expr& e, int indent, bool pretty) {
  const std::string pad = pretty ? std::string(2 * indent, ' ') : "";
  const std::string nl = pretty ? "\n" : " ";

  switch (e.kind) {
    case ExprKind::kPToP:
      return pad + "(p-to-p " + std::string(activity_name(e.declared_activity)) +
             " " + e.channel + ")";
    case ExprKind::kMultAck:
    case ExprKind::kMultReq:
      return pad + "(" + std::string(kind_keyword(e.kind)) + " " +
             std::string(activity_name(e.declared_activity)) + " " + e.channel +
             " " + std::to_string(e.wires) + ")";
    case ExprKind::kMuxAck:
    case ExprKind::kMuxReq: {
      std::string s = pad + "(" + std::string(kind_keyword(e.kind)) + " " +
                      e.channel;
      for (const MuxBranch& b : e.branches) {
        s += nl + (pretty ? std::string(2 * (indent + 1), ' ') : "") + "(" +
             std::string(kind_keyword(b.op)) + " " +
             render(*b.body, 0, false) + ")";
      }
      return s + ")";
    }
    case ExprKind::kVoid:
      return pad + "void";
    case ExprKind::kVerb: {
      std::string s = pad + "(verb";
      for (const auto& ev : e.verb_events) {
        s += " (";
        for (std::size_t i = 0; i < ev.size(); ++i) {
          if (i > 0) s += " ";
          s += transition_text(ev[i]);
        }
        s += ")";
      }
      return s + ")";
    }
    case ExprKind::kBreak:
      return pad + "(break)";
    case ExprKind::kRep:
    case ExprKind::kEncEarly:
    case ExprKind::kEncMiddle:
    case ExprKind::kEncLate:
    case ExprKind::kSeq:
    case ExprKind::kSeqOv:
    case ExprKind::kMutex: {
      std::string s = pad + "(" + std::string(kind_keyword(e.kind));
      for (const ExprPtr& a : e.args) {
        s += nl + render(*a, indent + 1, pretty);
      }
      return s + ")";
    }
  }
  return pad + "?";
}

}  // namespace

std::string to_string(const Expr& e) { return render(e, 0, false); }

std::string to_pretty_string(const Expr& e, int indent) {
  return render(e, indent, true);
}

}  // namespace bb::ch
