#include "src/minimalist/funcspec.hpp"

#include <deque>
#include <map>
#include <set>
#include <stdexcept>

#include "src/bm/validate.hpp"

namespace bb::minimalist {

namespace {

using logic::Cube;
using logic::Lit;

/// Signal valuations per state, computed by BFS from the initial state.
struct StateValuations {
  std::vector<std::map<std::string, bool>> at_state;
};

StateValuations compute_valuations(const bm::Spec& spec) {
  StateValuations vals;
  vals.at_state.resize(spec.num_states);

  std::map<std::string, bool> initial;
  for (const auto& entry : spec.is_input) initial[entry.first] = false;

  std::vector<bool> seen(spec.num_states, false);
  vals.at_state[spec.initial_state] = initial;
  seen[spec.initial_state] = true;
  std::deque<int> queue{spec.initial_state};
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (const bm::Arc* arc : spec.arcs_from(s)) {
      std::map<std::string, bool> v = vals.at_state[s];
      for (const ch::Transition& t : arc->in_burst.transitions) {
        v[t.signal] = t.rising;
      }
      for (const ch::Transition& t : arc->out_burst.transitions) {
        v[t.signal] = t.rising;
      }
      if (!seen[arc->to]) {
        seen[arc->to] = true;
        vals.at_state[arc->to] = std::move(v);
        queue.push_back(arc->to);
      } else if (vals.at_state[arc->to] != v) {
        throw std::runtime_error(
            "minimalist: state " + std::to_string(arc->to) +
            " entered with inconsistent wire valuations");
      }
    }
  }
  return vals;
}

/// Builds cubes over the (inputs, state bits) variable space.
class CubeFactory {
 public:
  CubeFactory(std::vector<std::string> inputs, int num_states)
      : inputs_(std::move(inputs)), num_states_(num_states) {
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      input_index_[inputs_[i]] = i;
    }
  }

  std::size_t num_vars() const { return inputs_.size() + num_states_; }
  std::size_t state_var(int state) const { return inputs_.size() + state; }

  /// Input part from a valuation; state part one-hot `s`.
  Cube at(const std::map<std::string, bool>& x, int s) const {
    Cube c(num_vars());
    for (const auto& [name, value] : x) {
      const auto it = input_index_.find(name);
      if (it != input_index_.end()) {
        c.set(it->second, value ? Lit::kOne : Lit::kZero);
      }
    }
    for (int t = 0; t < num_states_; ++t) {
      c.set(state_var(t), t == s ? Lit::kOne : Lit::kZero);
    }
    return c;
  }

  /// Dashes the input variables that change in `burst`.
  Cube dash_burst(Cube c, const bm::Burst& burst) const {
    for (const ch::Transition& t : burst.transitions) {
      const auto it = input_index_.find(t.signal);
      if (it != input_index_.end()) c.set(it->second, Lit::kDash);
    }
    return c;
  }

  /// Dashes the named input variables.
  Cube dash_inputs(Cube c, const std::set<std::string>& names) const {
    for (const std::string& name : names) {
      const auto it = input_index_.find(name);
      if (it != input_index_.end()) c.set(it->second, Lit::kDash);
    }
    return c;
  }

  /// Sets one named input variable to a concrete value.
  Cube set_input(Cube c, const std::string& name, bool value) const {
    const auto it = input_index_.find(name);
    if (it != input_index_.end()) {
      c.set(it->second, value ? Lit::kOne : Lit::kZero);
    }
    return c;
  }

  /// Dashes the state bit of `state`.
  Cube dash_state(Cube c, int state) const {
    c.set(state_var(state), Lit::kDash);
    return c;
  }

  /// Sets the state bit of `state` to 1.
  Cube set_state(Cube c, int state, bool value) const {
    c.set(state_var(state), value ? Lit::kOne : Lit::kZero);
    return c;
  }

 private:
  std::vector<std::string> inputs_;
  std::map<std::string, std::size_t> input_index_;
  int num_states_;
};

}  // namespace

MachineSpec extract(const bm::Spec& spec) {
  MachineSpec machine;
  machine.name = spec.name;
  machine.inputs = spec.input_names();
  const std::vector<std::string> outputs = spec.output_names();
  for (int s = 0; s < spec.num_states; ++s) {
    machine.state_bits.push_back("y" + std::to_string(s));
  }

  const CubeFactory cubes(machine.inputs, spec.num_states);
  machine.num_vars = cubes.num_vars();

  machine.state_codes.assign(
      spec.num_states, std::vector<bool>(machine.state_bits.size(), false));
  for (int s = 0; s < spec.num_states; ++s) machine.state_codes[s][s] = true;
  machine.initial_state_code = machine.state_codes[spec.initial_state];
  machine.initial_outputs.assign(outputs.size(), false);

  // Function table: outputs first, then state bits.
  std::map<std::string, std::size_t> func_index;
  for (const std::string& z : outputs) {
    FuncSpec f;
    f.name = z;
    f.off = logic::Cover(machine.num_vars);
    func_index[z] = machine.functions.size();
    machine.functions.push_back(std::move(f));
  }
  const std::size_t state_func_base = machine.functions.size();
  for (int s = 0; s < spec.num_states; ++s) {
    FuncSpec f;
    f.name = machine.state_bits[s];
    f.is_state_bit = true;
    f.off = logic::Cover(machine.num_vars);
    machine.functions.push_back(std::move(f));
  }

  const StateValuations vals = compute_valuations(spec);

  // Input edges that may arrive early per state (pending edges that are
  // stuck or carried over from a predecessor — see bm::early_edges).
  // Pinning such an input to the state's entry valuation would leave the
  // circuit uncovered — hence free to glitch — the moment the edge
  // arrives early, so every cube anchored at the state treats the signal
  // as a don't-care instead (the extended-burst-mode "directed
  // don't-care" treatment), and arcs that consume an early edge pin
  // their dynamic transitions to the remaining compulsory triggers.
  // Only machines within the one-burst-earliness class get this
  // treatment: an edge that can linger across two states cannot be
  // absorbed this way (see bm::adjacency_violations), and such machines
  // keep the classic strict-fundamental-mode cubes.
  std::vector<std::set<std::pair<std::string, bool>>> early_edges(
      spec.num_states);
  std::vector<std::set<std::string>> early(spec.num_states);
  if (bm::adjacency_violations(spec).empty()) {
    early_edges = bm::early_edges(spec);
    for (int s = 0; s < spec.num_states; ++s) {
      for (const auto& e : early_edges[s]) early[s].insert(e.first);
    }
  }

  // Predecessors per state: while the machine hands off p -> s, bit p is
  // still high when s's next input burst may already arrive (the peer can
  // answer faster than the feedback settles).  Transition cubes therefore
  // leave predecessor bits unconstrained instead of requiring them low.
  std::vector<std::vector<int>> preds(spec.num_states);
  for (const bm::Arc& arc : spec.arcs) {
    if (arc.from != arc.to) preds[arc.to].push_back(arc.from);
  }
  const auto dash_preds = [&](Cube c, int state) {
    for (const int p : preds[state]) {
      if (p != state) c = cubes.dash_state(c, p);
    }
    return c;
  };

  const auto add_on = [&](std::size_t fi, Cube c, bool required) {
    if (required) {
      machine.functions[fi].on_required.push_back(std::move(c));
    } else {
      machine.functions[fi].on_points.push_back(std::move(c));
    }
  };
  const auto add_off = [&](std::size_t fi, Cube c) {
    machine.functions[fi].off.add(std::move(c));
  };
  const std::size_t num_inputs = machine.inputs.size();
  // Privilege anchors constrain only input variables.
  const auto inputs_only = [&](Cube c) {
    for (std::size_t v = num_inputs; v < machine.num_vars; ++v) {
      c.set(v, logic::Lit::kDash);
    }
    return c;
  };
  const auto add_priv = [&](std::size_t fi, Cube t, const Cube& a) {
    machine.functions[fi].privileges.push_back(
        Privilege{std::move(t), inputs_only(a)});
  };

  std::vector<bool> has_arc(spec.num_states, false);

  for (const bm::Arc& arc : spec.arcs) {
    const int s = arc.from;
    const int s2 = arc.to;
    has_arc[s] = true;
    const auto& val_s = vals.at_state[s];

    auto val_mid = val_s;  // after the input burst
    for (const ch::Transition& t : arc.in_burst.transitions) {
      val_mid[t.signal] = t.rising;
    }
    auto val_e = val_mid;  // after the output burst
    for (const ch::Transition& t : arc.out_burst.transitions) {
      val_e[t.signal] = t.rising;
    }

    // Early signals that survive the burst: a surviving early signal can
    // flip during the output burst and the handoff just as freely as
    // while the machine sat in s, so every post-burst cube of this arc
    // dashes it too.
    std::set<std::string> early_after = early[s];
    for (const ch::Transition& t : arc.in_burst.transitions) {
      early_after.erase(t.signal);
    }

    // Trigger/transition cubes tolerate a stale predecessor bit (the
    // p -> s handoff may still be completing when this arc's burst
    // arrives); hold cubes stay strict one-hot pairs so specifications of
    // different arcs cannot claim conflicting values for the same codes.
    // Cubes anchored at s additionally dash the inputs that may arrive a
    // burst early while the machine sits in s.
    const Cube strict_end = cubes.at(val_mid, s);
    const Cube start_point = cubes.dash_inputs(
        dash_preds(cubes.at(val_s, s), s), early[s]);
    const Cube end_point =
        cubes.dash_inputs(dash_preds(strict_end, s), early_after);
    const Cube t_in = cubes.dash_burst(start_point, arc.in_burst);

    // "Burst incomplete" pin cubes for multiple-input bursts, one per
    // member: the region where that member still sits at its pre-burst
    // value, whatever the other burst inputs do.  Classic hazard-free
    // theory leaves the intermediate points of a dynamic transition as
    // don't-cares, which lets the minimizer drop a slow member's literal
    // and fire outputs (or advance the state) as soon as the fast
    // members arrive.  In a flat composition each output edge goes to a
    // *different* peer that answers it individually, so a partial output
    // burst is immediately acted upon — the machine must change nothing
    // until the whole burst has genuinely arrived.  The same pinning
    // keeps functions put when an early-capable member completes ahead
    // of the compulsory triggers.
    // Pins are anchored strictly one-hot (no stale-predecessor dash):
    // a compulsory trigger cannot arrive while a handoff is still
    // settling (one-sided timing assumption), and in a 2-state cycle a
    // pred-dashed pin of one arc would overlap the other arc's
    // post-burst cubes, which describe the opposite output value.
    std::vector<Cube> incomplete;
    if (arc.in_burst.transitions.size() > 1) {
      const Cube strict_t_in = cubes.dash_burst(
          cubes.dash_inputs(cubes.at(val_s, s), early[s]), arc.in_burst);
      for (const ch::Transition& t : arc.in_burst.transitions) {
        incomplete.push_back(
            cubes.set_input(strict_t_in, t.signal, val_s.at(t.signal)));
      }
    }

    // Hold cubes for the two-step one-hot handoff (s raises s', then s
    // falls), both at the post-burst input valuation.  hold1 is still
    // anchored at s (s'=don't-care); hold2 is anchored at s'.  Burst
    // members just transitioned and hold their new values, but early
    // signals that survive the burst stay dashed through the handoff.
    Cube hold1, hold2;
    if (s2 != s) {
      hold1 = cubes.dash_inputs(cubes.dash_state(strict_end, s2),
                                early_after);                     // s=1, s'=-
      hold2 = cubes.dash_inputs(
          cubes.set_state(cubes.dash_state(strict_end, s), s2, true),
          early_after);                                           // s=-, s'=1
    }

    // --- output functions ---
    std::set<std::string> out_changed;
    for (const ch::Transition& t : arc.out_burst.transitions) {
      out_changed.insert(t.signal);
    }
    for (const std::string& z : outputs) {
      const std::size_t fi = func_index.at(z);
      const bool old_v = val_s.at(z);
      const bool new_v = val_e.at(z);
      if (!out_changed.count(z)) {
        // Static through the burst.
        if (old_v) {
          add_on(fi, t_in, /*required=*/true);
        } else {
          add_off(fi, t_in);
        }
      } else if (!old_v && new_v) {
        // Dynamic 0->1: fires when the burst completes; intermediates are
        // don't-care but any intersecting product must contain the end.
        // With early burst members the pre-completion region is reachable
        // out of burst order, so it is pinned OFF explicitly.
        add_on(fi, end_point, /*required=*/false);
        add_off(fi, start_point);
        for (const Cube& c : incomplete) add_off(fi, c);
        add_priv(fi, t_in, end_point);
      } else {
        // Dynamic 1->0: must likewise hold its old value until every
        // early member has arrived, or the handshake it drives completes
        // before the state change latches.
        add_on(fi, start_point, /*required=*/false);
        add_off(fi, end_point);
        for (const Cube& c : incomplete) add_on(fi, c, /*required=*/true);
        add_priv(fi, t_in, start_point);
      }
      if (s2 != s) {
        if (new_v) {
          add_on(fi, hold1, /*required=*/true);
          add_on(fi, hold2, /*required=*/true);
        } else {
          add_off(fi, hold1);
          add_off(fi, hold2);
        }
      }
    }

    // --- state-bit functions ---
    for (int t = 0; t < spec.num_states; ++t) {
      const std::size_t fi = state_func_base + t;
      if (t == s && s2 != s) {
        // Holds through the burst, then falls after s' rises.  The
        // successor bit must stay excluded from the hold even when s' is
        // also a predecessor of s (2-cycles): once s' rises, Y_s falls.
        add_on(fi, cubes.set_state(t_in, s2, false), /*required=*/true);
        add_off(fi, cubes.set_state(end_point, s2, true));
        add_off(fi, hold2);
        add_priv(fi, hold1, end_point);
      } else if (t == s && s2 == s) {
        add_on(fi, t_in, /*required=*/true);
      } else if (t == s2 && s2 != s) {
        // Rises with the output burst, holds through the handoff.  Early
        // burst members make pre-completion points reachable: the bit
        // must not rise while any of them still sits at its old value.
        add_on(fi, end_point, /*required=*/false);
        add_off(fi, start_point);
        for (const Cube& c : incomplete) {
          add_off(fi, cubes.set_state(c, s2, false));
        }
        add_priv(fi, t_in, end_point);
        add_on(fi, hold1, /*required=*/true);
        add_on(fi, hold2, /*required=*/true);
      } else {
        add_off(fi, t_in);
        if (s2 != s) {
          add_off(fi, hold1);
          add_off(fi, hold2);
        }
      }
    }
  }

  // Terminal states (no outgoing arcs) must still hold their code and
  // output values stably.
  for (int s = 0; s < spec.num_states; ++s) {
    if (has_arc[s]) continue;
    const Cube stable =
        cubes.dash_inputs(cubes.at(vals.at_state[s], s), early[s]);
    for (const std::string& z : outputs) {
      const std::size_t fi = func_index.at(z);
      if (vals.at_state[s].at(z)) {
        add_on(fi, stable, /*required=*/true);
      } else {
        add_off(fi, stable);
      }
    }
    for (int t = 0; t < spec.num_states; ++t) {
      const std::size_t fi = state_func_base + t;
      if (t == s) {
        add_on(fi, stable, /*required=*/true);
      } else {
        add_off(fi, stable);
      }
    }
  }

  // Consistency: no ON cube may intersect the OFF cover.
  for (const FuncSpec& f : machine.functions) {
    const auto check = [&](const Cube& c) {
      for (const Cube& off : f.off.cubes()) {
        if (c.intersects(off)) {
          throw std::runtime_error("minimalist: ON/OFF conflict on '" +
                                   f.name + "' between " + c.to_string() +
                                   " and " + off.to_string());
        }
      }
    };
    for (const Cube& c : f.on_required) check(c);
    for (const Cube& c : f.on_points) check(c);
  }

  return machine;
}

}  // namespace bb::minimalist
