#include "src/minimalist/synth.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace bb::minimalist {

namespace {

/// Evaluation state of the synthesized machine during validation.
struct MachineState {
  std::vector<bool> vars;  // inputs then state bits
  std::vector<bool> outputs;
};

/// Settles the feedback loop after an input change; returns false if it
/// oscillates (should never happen for a correct synthesis).
bool settle(const SynthesizedController& ctrl, MachineState& m) {
  const std::size_t m_inputs = ctrl.inputs.size();
  for (int iter = 0; iter < 200; ++iter) {
    bool changed = false;
    // Outputs follow combinationally.
    for (std::size_t z = 0; z < ctrl.outputs.size(); ++z) {
      const bool v = ctrl.functions[z].products.covers_minterm(m.vars);
      if (m.outputs[z] != v) {
        m.outputs[z] = v;
        changed = true;
      }
    }
    // State bits feed back.
    const std::size_t base = ctrl.outputs.size();
    std::vector<bool> next = m.vars;
    for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
      next[m_inputs + s] =
          ctrl.functions[base + s].products.covers_minterm(m.vars);
    }
    if (next != m.vars) {
      m.vars = std::move(next);
      changed = true;
    }
    if (!changed) return true;
  }
  return false;
}

}  // namespace

std::vector<bool> SynthesizedController::state_code(int s) const {
  if (static_cast<std::size_t>(s) < state_codes.size()) {
    return state_codes[s];
  }
  std::vector<bool> code(state_bits.size(), false);
  if (s >= 0 && static_cast<std::size_t>(s) < code.size()) code[s] = true;
  return code;
}

std::size_t SynthesizedController::num_products() const {
  std::size_t n = 0;
  for (const SolvedFunction& f : functions) n += f.products.size();
  return n;
}

std::size_t SynthesizedController::num_literals() const {
  std::size_t n = 0;
  for (const SolvedFunction& f : functions) n += f.products.num_literals();
  return n;
}

std::string SynthesizedController::to_sol() const {
  std::string s = "# controller " + name + "\n# variables:";
  for (const std::string& in : inputs) s += " " + in;
  for (const std::string& y : state_bits) s += " " + y;
  s += "\n";
  for (const SolvedFunction& f : functions) {
    s += ".fn " + f.name + (f.is_state_bit ? " (state)" : "") + "\n";
    for (const auto& cube : f.products.cubes()) {
      s += cube.to_string() + "\n";
    }
  }
  return s;
}

SynthesizedController synthesize(const bm::Spec& spec, SynthMode mode,
                                 util::WorkBudget* budget) {
  obs::Span span("minimalist.synthesize", obs::kCatSynth);
  span.arg("controller", spec.name);
  span.arg("states", static_cast<std::uint64_t>(spec.num_states));
  obs::Registry::global().counter("minimalist.synthesized").add();
  const MachineSpec machine = extract(spec);

  SynthesizedController out;
  out.name = spec.name;
  out.inputs = machine.inputs;
  out.outputs = spec.output_names();
  out.state_bits = machine.state_bits;
  out.num_vars = machine.num_vars;
  out.state_codes = machine.state_codes;
  out.initial_state_code = machine.initial_state_code;
  out.functions.reserve(machine.functions.size());
  for (const FuncSpec& f : machine.functions) {
    out.functions.push_back(minimize_function(
        f, machine.num_vars, machine.inputs.size(), mode, budget));
  }
  return out;
}

ValidationReport validate_against_spec(const SynthesizedController& ctrl,
                                       const bm::Spec& spec) {
  ValidationReport report;
  const std::size_t m_inputs = ctrl.inputs.size();
  std::map<std::string, std::size_t> input_index;
  for (std::size_t i = 0; i < m_inputs; ++i) input_index[ctrl.inputs[i]] = i;
  std::map<std::string, std::size_t> output_index;
  for (std::size_t i = 0; i < ctrl.outputs.size(); ++i) {
    output_index[ctrl.outputs[i]] = i;
  }

  // Recover per-state wire valuations (the spec is validated, so entry
  // valuations are unique).
  std::vector<std::map<std::string, bool>> vals(spec.num_states);
  {
    std::vector<bool> seen(spec.num_states, false);
    for (const auto& entry : spec.is_input) {
      vals[spec.initial_state][entry.first] = false;
    }
    seen[spec.initial_state] = true;
    std::deque<int> queue{spec.initial_state};
    while (!queue.empty()) {
      const int s = queue.front();
      queue.pop_front();
      for (const bm::Arc* arc : spec.arcs_from(s)) {
        auto v = vals[s];
        for (const auto& t : arc->in_burst.transitions) v[t.signal] = t.rising;
        for (const auto& t : arc->out_burst.transitions) {
          v[t.signal] = t.rising;
        }
        if (!seen[arc->to]) {
          seen[arc->to] = true;
          vals[arc->to] = std::move(v);
          queue.push_back(arc->to);
        }
      }
    }
  }

  // Replay each arc from its source state's stable configuration, trying
  // several input orders within the burst.
  for (const bm::Arc& arc : spec.arcs) {
    const auto& val_s = vals[arc.from];

    std::vector<ch::Transition> burst = arc.in_burst.transitions;
    std::sort(burst.begin(), burst.end(),
              [](const ch::Transition& a, const ch::Transition& b) {
                return a.signal < b.signal;
              });
    const std::size_t n_orders = std::max<std::size_t>(burst.size(), 1);

    for (std::size_t rot = 0; rot < n_orders; ++rot) {
      std::vector<ch::Transition> order = burst;
      std::rotate(order.begin(), order.begin() + rot, order.end());

      MachineState m;
      m.vars.assign(ctrl.num_vars, false);
      for (const auto& [signal, value] : val_s) {
        const auto it = input_index.find(signal);
        if (it != input_index.end()) m.vars[it->second] = value;
      }
      const std::vector<bool> from_code = ctrl.state_code(arc.from);
      for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
        m.vars[m_inputs + s] = from_code[s];
      }
      m.outputs.assign(ctrl.outputs.size(), false);
      for (const auto& [signal, value] : val_s) {
        const auto it = output_index.find(signal);
        if (it != output_index.end()) m.outputs[it->second] = value;
      }

      // The source configuration must be stable.
      MachineState probe = m;
      if (!settle(ctrl, probe)) {
        report.ok = false;
        report.errors.push_back("oscillation settling state " +
                                std::to_string(arc.from));
        continue;
      }
      if (probe.vars != m.vars || probe.outputs != m.outputs) {
        report.ok = false;
        report.errors.push_back("state " + std::to_string(arc.from) +
                                " is not stable under the synthesized logic");
        continue;
      }

      // Apply the burst one input at a time, watching output monotonicity.
      std::map<std::string, int> changes;
      bool failed = false;
      for (const ch::Transition& t : order) {
        m.vars[input_index.at(t.signal)] = t.rising;
        const MachineState before = m;
        if (!settle(ctrl, m)) {
          report.ok = false;
          report.errors.push_back("oscillation during arc " +
                                  std::to_string(arc.from) + "->" +
                                  std::to_string(arc.to));
          failed = true;
          break;
        }
        for (std::size_t z = 0; z < ctrl.outputs.size(); ++z) {
          if (before.outputs[z] != m.outputs[z]) ++changes[ctrl.outputs[z]];
        }
      }
      if (failed) continue;

      // Check the final configuration against the arc's target.
      auto val_e = val_s;
      for (const auto& t : arc.in_burst.transitions) val_e[t.signal] = t.rising;
      for (const auto& t : arc.out_burst.transitions) {
        val_e[t.signal] = t.rising;
      }
      for (std::size_t z = 0; z < ctrl.outputs.size(); ++z) {
        if (m.outputs[z] != val_e.at(ctrl.outputs[z])) {
          report.ok = false;
          report.errors.push_back(
              "arc " + std::to_string(arc.from) + "->" +
              std::to_string(arc.to) + ": output " + ctrl.outputs[z] +
              " ended at " + (m.outputs[z] ? "1" : "0"));
        }
      }
      const std::vector<bool> to_code = ctrl.state_code(arc.to);
      for (std::size_t s = 0; s < ctrl.state_bits.size(); ++s) {
        const bool want = to_code[s];
        if (m.vars[m_inputs + s] != want) {
          report.ok = false;
          report.errors.push_back("arc " + std::to_string(arc.from) + "->" +
                                  std::to_string(arc.to) + ": state bit " +
                                  ctrl.state_bits[s] + " wrong");
        }
      }
      for (const auto& [signal, count] : changes) {
        if (count > 1) {
          report.ok = false;
          report.errors.push_back("arc " + std::to_string(arc.from) + "->" +
                                  std::to_string(arc.to) + ": output " +
                                  signal + " changed " +
                                  std::to_string(count) + " times");
        }
      }
    }
  }
  return report;
}

}  // namespace bb::minimalist
