// Burst-Mode state minimization (an optional Minimalist pass).
//
// Conservative Moore-style partition refinement: two states may merge
// only if they are entered with identical wire valuations and their
// outgoing arcs agree label-for-label (same input bursts, same output
// bursts, targets in the same block).  This collapses the duplicated
// continuation paths the CH-to-BMS compiler creates after choices whose
// alternatives share behaviour, and never changes the language of the
// machine.
#pragma once

#include "src/bm/spec.hpp"
#include "src/util/workbudget.hpp"

namespace bb::minimalist {

struct StateMinResult {
  bm::Spec spec;
  int merged_states = 0;  ///< states removed by the pass
};

/// Returns the quotient machine (validated-spec in, validated-spec out).
/// When `budget` is given, every refinement pass charges one unit per
/// state; util::WorkBudgetExceeded propagates to the caller.
StateMinResult minimize_states(const bm::Spec& spec,
                               util::WorkBudget* budget = nullptr);

}  // namespace bb::minimalist
