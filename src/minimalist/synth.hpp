// Top level of the Minimalist substitute: Burst-Mode specification in,
// hazard-free two-level controller out, plus a functional validator that
// replays every specification arc against the synthesized logic.
#pragma once

#include <string>
#include <vector>

#include "src/bm/spec.hpp"
#include "src/minimalist/hfmin.hpp"

namespace bb::minimalist {

/// A synthesized controller: one two-level SOP per output and state bit
/// over the variable order (inputs..., state bits...).
struct SynthesizedController {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> state_bits;
  std::size_t num_vars = 0;
  /// Output functions first (aligned with `outputs`), then state bits.
  std::vector<SolvedFunction> functions;
  /// State-bit code per specification state (the machine's actual state
  /// assignment; one-hot today).  Positional — no signal names inside —
  /// so it survives the synthesis cache's name rebinding unchanged.
  std::vector<std::vector<bool>> state_codes;
  std::vector<bool> initial_state_code;

  /// The state-bit pattern of specification state `s`.  Falls back to a
  /// one-hot code for hand-built controllers that never filled
  /// `state_codes`.
  std::vector<bool> state_code(int s) const;

  std::size_t num_products() const;
  std::size_t num_literals() const;

  /// Renders in a ".sol"-style PLA listing (one plane per function).
  std::string to_sol() const;
};

/// Synthesizes a validated Burst-Mode specification.
/// Throws std::runtime_error on inconsistent or non-implementable specs.
/// When `budget` is given it is polled by the exponential inner steps
/// (DHF candidate expansion, unate covering); util::WorkBudgetExceeded
/// propagates so the flow can degrade the affected controller.
SynthesizedController synthesize(const bm::Spec& spec,
                                 SynthMode mode = SynthMode::kSpeed,
                                 util::WorkBudget* budget = nullptr);

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;
};

/// Replays every arc of `spec` through the synthesized logic in
/// fundamental mode (inputs of a burst applied one at a time, feedback
/// settled after each), checking output values, monotonicity of output
/// changes, and the reached state code.
ValidationReport validate_against_spec(const SynthesizedController& ctrl,
                                       const bm::Spec& spec);

}  // namespace bb::minimalist
