// Content-addressed memoization of Burst-Mode synthesis.
//
// Controllers are keyed by bm::Spec::to_canonical() plus the synthesis
// mode: a stable serialization with every signal renamed to its
// positional index, so structurally identical controllers synthesized
// for different component instances (different wire names, same machine)
// share one cache entry.  A hit returns the stored controller with the
// requesting spec's signal names rebound; because synthesis is a pure
// function of the canonical form, the rebound result is byte-identical
// to what a fresh synthesis run would produce, which keeps cached and
// uncached flows deterministic relative to each other.
//
// The in-memory map is the first tier.  A cache can additionally be
// backed by a second, slower tier through the BackingStore hook (the
// serve::DiskCache persists entries across processes); the memory tier
// consults it on a miss and write-throughs every store.  The memory tier
// is bounded: entries beyond `max_entries` are evicted in LRU order so a
// long-running daemon cannot grow the cache without limit.
//
// The cache is thread-safe (one mutex around the map and counters) and
// is shared by all workers of the parallel flow.  Backing-store calls
// are made *outside* that mutex, so a slow disk never stalls workers
// that are hitting in memory; the BackingStore implementation must be
// thread-safe itself.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/bm/spec.hpp"
#include "src/minimalist/synth.hpp"

namespace bb::minimalist {

/// The cache key of a (spec, mode) pair under a library/techmap version
/// string.  The version is an opaque salt (the flow passes
/// techmap::CellLibrary::fingerprint()); keys derived under different
/// versions never match, so a persistent tier shared across binary
/// revisions can never serve a controller synthesized for a different
/// technology contract — the stale entries just stop matching and age
/// out of the LRU.  An empty version reproduces the bare (spec, mode)
/// key for callers outside any library context.
std::string cache_key(const bm::Spec& spec, SynthMode mode,
                      std::string_view library_version = {});

/// Which tier satisfied a lookup.
enum class CacheTier {
  kMiss,    ///< neither tier had the entry
  kMemory,  ///< in-memory map hit
  kDisk,    ///< backing-store hit (promoted into memory)
};

class SynthCache {
 public:
  /// Second-tier storage behind the in-memory map.  Keys are the opaque
  /// cache_key() strings; values survive exactly (signal names included
  /// — rebinding happens in the memory tier on the way out).
  /// Implementations must be thread-safe and must treat any internal
  /// failure as a miss (load) or a no-op (store): the cache is an
  /// optimization, never a correctness dependency.
  class BackingStore {
   public:
    virtual ~BackingStore() = default;
    virtual std::optional<SynthesizedController> load(
        const std::string& key) = 0;
    virtual void store(const std::string& key,
                       const SynthesizedController& ctrl) = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;       ///< memory-tier hits
    std::uint64_t disk_hits = 0;  ///< backing-store hits (memory missed)
    std::uint64_t misses = 0;     ///< both tiers missed
    std::uint64_t evictions = 0;  ///< memory entries dropped by the LRU cap
    std::size_t entries = 0;      ///< current memory-tier entry count
    std::size_t max_entries = 0;  ///< the configured cap
  };

  /// Default memory-tier entry cap.  Far above what any batch flow
  /// produces (the four evaluation designs synthesize tens of distinct
  /// controllers), so batch behavior is unchanged; a daemon serving
  /// arbitrary requests stays bounded.
  static constexpr std::size_t kDefaultMaxEntries = 65536;

  /// Returns the cached controller rebound to `spec`'s signal names, or
  /// nullopt on a miss.  Counts a hit or miss; `tier` (when non-null)
  /// reports which tier answered.
  std::optional<SynthesizedController> lookup(const bm::Spec& spec,
                                              SynthMode mode,
                                              CacheTier* tier = nullptr);

  /// Stores a freshly synthesized controller (first writer wins; a
  /// concurrent duplicate insert is a no-op since both results are
  /// identical up to names).  Write-throughs to the backing store.
  void store(const bm::Spec& spec, SynthMode mode,
             const SynthesizedController& ctrl);

  /// Attaches a second-tier store (not owned; must outlive the cache or
  /// be detached with nullptr first).
  void set_backing_store(BackingStore* store);

  /// Sets the library/techmap version folded into every key this cache
  /// derives (see cache_key()).  The flow and the serve daemon set it
  /// to techmap::CellLibrary::fingerprint() before first use; setting
  /// the same value again is a cheap no-op, so per-call wiring is fine.
  /// Changing the value does NOT flush the memory tier — old-version
  /// entries become unreachable and fall off the LRU.
  void set_library_version(std::string version);
  std::string library_version() const;

  /// Bounds the memory tier to `cap` entries (minimum 1); the least
  /// recently used entries are evicted when the cap is exceeded.
  void set_max_entries(std::size_t cap);

  Stats stats() const;
  void clear();

  /// The process-wide cache used by the flow when no explicit instance
  /// is configured.
  static SynthCache& global();

 private:
  struct Entry {
    SynthesizedController ctrl;
    std::list<std::string>::iterator lru;  ///< position in lru_
  };

  /// Inserts under mu_ (caller holds the lock); evicts LRU overflow.
  void insert_locked(std::string key, const SynthesizedController& ctrl);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< most recently used at the front
  std::size_t max_entries_ = kDefaultMaxEntries;
  BackingStore* backing_ = nullptr;
  std::string library_version_;
  std::uint64_t hits_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// synthesize() through `cache`: looks up first, synthesizes and stores
/// on a miss.  `hit` (when non-null) reports which path was taken and
/// `tier` which tier answered.  `budget` is only consulted on the miss
/// path — a cache hit costs no budgeted work, so a controller that would
/// blow its budget uncached can still succeed when a structurally
/// identical twin seeded the cache.
SynthesizedController synthesize_cached(const bm::Spec& spec, SynthMode mode,
                                        SynthCache& cache, bool* hit = nullptr,
                                        util::WorkBudget* budget = nullptr,
                                        CacheTier* tier = nullptr);

}  // namespace bb::minimalist
