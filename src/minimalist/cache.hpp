// Content-addressed memoization of Burst-Mode synthesis.
//
// Controllers are keyed by bm::Spec::to_canonical() plus the synthesis
// mode: a stable serialization with every signal renamed to its
// positional index, so structurally identical controllers synthesized
// for different component instances (different wire names, same machine)
// share one cache entry.  A hit returns the stored controller with the
// requesting spec's signal names rebound; because synthesis is a pure
// function of the canonical form, the rebound result is byte-identical
// to what a fresh synthesis run would produce, which keeps cached and
// uncached flows deterministic relative to each other.
//
// The cache is thread-safe (one mutex around the map and counters) and
// is shared by all workers of the parallel flow.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/bm/spec.hpp"
#include "src/minimalist/synth.hpp"

namespace bb::minimalist {

/// The cache key of a (spec, mode) pair.
std::string cache_key(const bm::Spec& spec, SynthMode mode);

class SynthCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  /// Returns the cached controller rebound to `spec`'s signal names, or
  /// nullopt on a miss.  Counts a hit or miss.
  std::optional<SynthesizedController> lookup(const bm::Spec& spec,
                                              SynthMode mode);

  /// Stores a freshly synthesized controller (first writer wins; a
  /// concurrent duplicate insert is a no-op since both results are
  /// identical up to names).
  void store(const bm::Spec& spec, SynthMode mode,
             const SynthesizedController& ctrl);

  Stats stats() const;
  void clear();

  /// The process-wide cache used by the flow when no explicit instance
  /// is configured.
  static SynthCache& global();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SynthesizedController> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// synthesize() through `cache`: looks up first, synthesizes and stores
/// on a miss.  `hit` (when non-null) reports which path was taken.
/// `budget` is only consulted on the miss path — a cache hit costs no
/// budgeted work, so a controller that would blow its budget uncached
/// can still succeed when a structurally identical twin seeded the cache.
SynthesizedController synthesize_cached(const bm::Spec& spec, SynthMode mode,
                                        SynthCache& cache, bool* hit = nullptr,
                                        util::WorkBudget* budget = nullptr);

}  // namespace bb::minimalist
