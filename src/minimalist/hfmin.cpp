#include "src/minimalist/hfmin.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "src/logic/ucp.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace bb::minimalist {

namespace {

using logic::Cube;
using logic::Lit;

bool disjoint_from_off(const Cube& cube, const logic::Cover& off) {
  for (const Cube& c : off.cubes()) {
    if (cube.intersects(c)) return false;
  }
  return true;
}

bool anchors_ok(const Cube& cube, const std::vector<Privilege>& privileges) {
  for (const Privilege& p : privileges) {
    if (cube.intersects(p.transition) &&
        !cube.agrees_with_fixed(p.anchor)) {
      return false;
    }
  }
  return true;
}

/// Greedy expansion of `seed` raising variables in the given order.
/// Positive state-bit literals of the seed are pinned (state anchoring).
Cube expand_in_order(const Cube& seed, const FuncSpec& spec,
                     std::size_t state_base,
                     const std::vector<std::size_t>& order) {
  Cube current = seed;
  for (const std::size_t v : order) {
    if (current[v] == Lit::kDash) continue;
    if (v >= state_base && seed[v] == Lit::kOne) continue;  // anchored
    const Cube raised = current.raised(v);
    if (disjoint_from_off(raised, spec.off) &&
        anchors_ok(raised, spec.privileges)) {
      current = raised;
    }
  }
  return current;
}

}  // namespace

bool is_dhf_implicant(const Cube& cube, const FuncSpec& spec) {
  return disjoint_from_off(cube, spec.off) &&
         anchors_ok(cube, spec.privileges);
}

SolvedFunction minimize_function(const FuncSpec& spec, std::size_t num_vars,
                                 std::size_t state_base, SynthMode mode,
                                 util::WorkBudget* budget) {
  obs::Span span("minimalist.hfmin", obs::kCatSynth);
  span.arg("function", spec.name);
  // Rows: every required cube and every anchor point must sit inside a
  // single product of the final cover.
  std::vector<Cube> rows = spec.on_required;
  rows.insert(rows.end(), spec.on_points.begin(), spec.on_points.end());

  SolvedFunction out;
  out.name = spec.name;
  out.is_state_bit = spec.is_state_bit;
  out.products = logic::Cover(num_vars);
  if (rows.empty()) return out;  // constant-0 function

  for (const Cube& r : rows) {
    if (!is_dhf_implicant(r, spec)) {
      throw std::runtime_error(
          "hfmin: required cube " + r.to_string() + " of '" + spec.name +
          "' is not a hazard-free implicant (no DHF cover exists)");
    }
  }

  // Candidate generation: several expansion orders per row.
  std::vector<Cube> candidates;
  std::set<std::string> seen;
  const auto add_candidate = [&](Cube c) {
    if (seen.insert(c.to_string()).second) candidates.push_back(std::move(c));
  };

  std::vector<std::size_t> order(num_vars);
  for (std::size_t v = 0; v < num_vars; ++v) order[v] = v;

  for (const Cube& r : rows) {
    // Natural, reversed, and a handful of rotated orders.  Each expansion
    // is one unit of DHF-candidate work against the budget.
    if (budget != nullptr) budget->charge();
    add_candidate(expand_in_order(r, spec, state_base, order));
    std::vector<std::size_t> rev(order.rbegin(), order.rend());
    add_candidate(expand_in_order(r, spec, state_base, rev));
    const std::size_t rotations = std::min<std::size_t>(6, num_vars);
    for (std::size_t k = 1; k <= rotations; ++k) {
      if (budget != nullptr) budget->charge();
      std::vector<std::size_t> rot = order;
      std::rotate(rot.begin(), rot.begin() + (k * num_vars) / (rotations + 1),
                  rot.end());
      add_candidate(expand_in_order(r, spec, state_base, rot));
    }
  }

  obs::Registry::global()
      .counter("minimalist.dhf_candidates")
      .add(candidates.size());
  span.arg("rows", static_cast<std::uint64_t>(rows.size()));
  span.arg("candidates", static_cast<std::uint64_t>(candidates.size()));

  // Covering problem: candidate c covers row r iff c contains r.
  logic::UcpProblem problem;
  problem.column_cost.reserve(candidates.size());
  for (const Cube& c : candidates) {
    problem.column_cost.push_back(
        mode == SynthMode::kSpeed
            ? 1.0
            : static_cast<double>(c.num_literals()) + 1.0);
  }
  problem.covers.resize(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (candidates[c].contains(rows[r])) problem.covers[r].push_back(c);
    }
    if (problem.covers[r].empty()) {
      throw std::runtime_error("hfmin: row " + rows[r].to_string() + " of '" +
                               spec.name + "' has no covering candidate");
    }
  }

  const logic::UcpSolution solution = logic::solve_ucp(problem, budget);
  if (!solution.feasible) {
    throw std::runtime_error("hfmin: covering infeasible for '" + spec.name +
                             "'");
  }
  for (const std::size_t c : solution.columns) {
    out.products.add(candidates[c]);
  }
  return out;
}

}  // namespace bb::minimalist
