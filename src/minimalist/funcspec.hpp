// Flow-table extraction: turns a Burst-Mode specification into per-output
// and per-state-bit Boolean function specifications with hazard-freedom
// annotations (the front half of the Minimalist substitute).
//
// Implementation model (standard Huffman machine with one-hot state codes
// and sequential "rise-before-fall" state handoff):
//   - variables are the machine's input wires followed by one state bit
//     per specification state;
//   - within an arc  s --I/O--> s'  the machine first absorbs the input
//     burst I (state bits frozen at code{s}), fires the output burst and
//     raises bit s' (dynamic transitions anchored at the burst's end
//     point), then lowers bit s (a second, single-variable feedback step).
//   Each feedback update changes exactly one state bit, so state changes
//   are critical-race-free by construction.
//
// Hazard-freedom annotations follow Nowick/Dill two-level theory:
//   - every static-1 region of a transition is a *required cube* that some
//     single product of the final cover must contain;
//   - every dynamic transition is *privileged*: a product intersecting its
//     transition cube must contain the anchor (the start point for 1->0,
//     the end point for 0->1), which forbids glitching products.
#pragma once

#include <string>
#include <vector>

#include "src/bm/spec.hpp"
#include "src/logic/cover.hpp"
#include "src/logic/cube.hpp"

namespace bb::minimalist {

/// A privileged (dynamic) transition constraint on one function: any
/// product intersecting `transition` must have all its *input* literals
/// compatible with `anchor` (the transition's start inputs for a 1->0
/// change, its end inputs for 0->1).  Otherwise the product could turn on
/// and off again mid-burst (a dynamic hazard).  Anchors constrain only
/// input variables; the product's state literals merely select the state
/// slice it serves.
struct Privilege {
  logic::Cube transition;  ///< the full transition cube (stale-tolerant)
  logic::Cube anchor;      ///< input-variable values products must respect
};

/// Specification of one Boolean function (an output or a state bit).
struct FuncSpec {
  std::string name;
  bool is_state_bit = false;
  /// Cubes where the function must be 1.  `required` cubes must each lie
  /// inside a single product of the final cover.
  std::vector<logic::Cube> on_required;
  std::vector<logic::Cube> on_points;  ///< remaining ON cubes (burst anchors)
  logic::Cover off;                    ///< cubes where the function must be 0
  std::vector<Privilege> privileges;
};

/// The complete machine specification ready for minimization.
struct MachineSpec {
  std::string name;
  std::vector<std::string> inputs;      ///< variable order: inputs first
  std::vector<std::string> state_bits;  ///< then one bit per state
  std::size_t num_vars = 0;
  std::vector<FuncSpec> functions;      ///< outputs then state bits
  /// State-bit assignment: the code of every specification state over
  /// `state_bits` (one-hot today, but consumers must not assume that —
  /// the validator derives bit patterns from here, not from state ids).
  std::vector<std::vector<bool>> state_codes;
  /// Initial values of the state bits (state_codes[initial state]).
  std::vector<bool> initial_state_code;
  /// Initial values of the outputs (all low).
  std::vector<bool> initial_outputs;
};

/// Extracts the machine specification.  Throws std::runtime_error when the
/// spec is inconsistent (ON/OFF overlap, non-unique entry valuations).
MachineSpec extract(const bm::Spec& spec);

}  // namespace bb::minimalist
