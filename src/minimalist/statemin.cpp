#include "src/minimalist/statemin.hpp"

#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace bb::minimalist {

namespace {

/// Entry valuation per state, as a canonical string.
std::vector<std::string> entry_signatures(const bm::Spec& spec) {
  std::vector<std::map<std::string, bool>> vals(spec.num_states);
  std::vector<bool> seen(spec.num_states, false);
  for (const auto& entry : spec.is_input) {
    vals[spec.initial_state][entry.first] = false;
  }
  seen[spec.initial_state] = true;
  std::deque<int> queue{spec.initial_state};
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    for (const bm::Arc* arc : spec.arcs_from(s)) {
      auto v = vals[s];
      for (const auto& t : arc->in_burst.transitions) v[t.signal] = t.rising;
      for (const auto& t : arc->out_burst.transitions) v[t.signal] = t.rising;
      if (!seen[arc->to]) {
        seen[arc->to] = true;
        vals[arc->to] = std::move(v);
        queue.push_back(arc->to);
      }
    }
  }
  std::vector<std::string> sig(spec.num_states);
  for (int s = 0; s < spec.num_states; ++s) {
    for (const auto& [name, value] : vals[s]) {
      sig[s] += name + (value ? "1" : "0") + ";";
    }
  }
  return sig;
}

}  // namespace

StateMinResult minimize_states(const bm::Spec& spec,
                               util::WorkBudget* budget) {
  obs::Span span("minimalist.statemin", obs::kCatSynth);
  span.arg("controller", spec.name);
  span.arg("states", static_cast<std::uint64_t>(spec.num_states));
  // Initial partition: entry valuation + the initial-state marker (the
  // initial state must stay in its own mergeable group only with states
  // that are truly equivalent to it, which refinement decides).
  std::vector<int> block = [&] {
    const auto sig = entry_signatures(spec);
    std::map<std::string, int> index;
    std::vector<int> out(spec.num_states);
    for (int s = 0; s < spec.num_states; ++s) {
      const auto [it, inserted] =
          index.emplace(sig[s], static_cast<int>(index.size()));
      out[s] = it->second;
    }
    return out;
  }();

  // Refinement: states in a block must have identical (in burst -> out
  // burst, target block) maps.
  bool changed = true;
  std::uint64_t passes = 0;  // batched into the registry after the loop
  while (changed) {
    changed = false;
    ++passes;
    if (budget != nullptr) {
      budget->charge(static_cast<std::uint64_t>(spec.num_states));
    }
    std::map<std::pair<int, std::string>, int> index;
    std::vector<int> next(spec.num_states);
    for (int s = 0; s < spec.num_states; ++s) {
      std::map<std::string, std::string> arcs;
      for (const bm::Arc* a : spec.arcs_from(s)) {
        arcs[a->in_burst.to_string()] =
            a->out_burst.to_string() + ">" + std::to_string(block[a->to]);
      }
      std::string key;
      for (const auto& [in, rest] : arcs) key += in + "|" + rest + ";";
      const auto [it, inserted] = index.emplace(
          std::make_pair(block[s], key), static_cast<int>(index.size()));
      next[s] = it->second;
    }
    if (next != block) {
      block = std::move(next);
      changed = true;
    }
  }

  // Renumber blocks with the initial state's block first.
  std::map<int, int> number;
  number[block[spec.initial_state]] = 0;
  for (int s = 0; s < spec.num_states; ++s) {
    number.emplace(block[s], static_cast<int>(number.size()));
  }

  StateMinResult result;
  result.spec.name = spec.name;
  result.spec.is_input = spec.is_input;
  result.spec.initial_state = 0;
  result.spec.num_states = static_cast<int>(number.size());
  result.merged_states = spec.num_states - result.spec.num_states;
  obs::Registry& registry = obs::Registry::global();
  registry.counter("minimalist.statemin.passes").add(passes);
  registry.counter("minimalist.statemin.merged")
      .add(static_cast<std::uint64_t>(result.merged_states));
  span.arg("passes", passes);
  span.arg("merged", static_cast<std::uint64_t>(result.merged_states));

  std::set<std::string> seen;
  for (const bm::Arc& a : spec.arcs) {
    bm::Arc out = a;
    out.from = number.at(block[a.from]);
    out.to = number.at(block[a.to]);
    const std::string key = std::to_string(out.from) + ">" +
                            std::to_string(out.to) + ":" +
                            out.in_burst.to_string() + "|" +
                            out.out_burst.to_string();
    if (seen.insert(key).second) result.spec.arcs.push_back(std::move(out));
  }
  return result;
}

}  // namespace bb::minimalist
