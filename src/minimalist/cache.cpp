#include "src/minimalist/cache.hpp"

#include <utility>

#include "src/obs/metrics.hpp"

namespace bb::minimalist {

namespace {

/// Rebinds a stored controller to the requesting spec's signal names.
/// Everything else in a SynthesizedController is positional (covers,
/// state codes, state-bit names "y<s>"), so only the display names of
/// the machine and its input/output wires change.
SynthesizedController rebind(SynthesizedController ctrl, const bm::Spec& spec) {
  ctrl.name = spec.name;
  ctrl.inputs = spec.input_names();
  ctrl.outputs = spec.output_names();
  for (std::size_t z = 0; z < ctrl.outputs.size(); ++z) {
    ctrl.functions[z].name = ctrl.outputs[z];
  }
  return ctrl;
}

}  // namespace

std::string cache_key(const bm::Spec& spec, SynthMode mode,
                      std::string_view library_version) {
  std::string key;
  if (!library_version.empty()) {
    key += "lib ";
    key += library_version;
    key += '\n';
  }
  key += mode == SynthMode::kSpeed ? "speed\n" : "area\n";
  key += spec.to_canonical();
  return key;
}

std::optional<SynthesizedController> SynthCache::lookup(const bm::Spec& spec,
                                                        SynthMode mode,
                                                        CacheTier* tier) {
  const std::string key = cache_key(spec, mode, library_version());
  BackingStore* backing = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      obs::Registry::global().counter("minimalist.cache.hits").add();
      if (tier != nullptr) *tier = CacheTier::kMemory;
      return rebind(it->second.ctrl, spec);
    }
    backing = backing_;
  }

  // Memory miss: consult the second tier outside the lock so disk reads
  // never serialize the workers.
  if (backing != nullptr) {
    if (auto loaded = backing->load(key)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++disk_hits_;
      insert_locked(key, *loaded);
      obs::Registry::global().counter("minimalist.cache.disk.hits").add();
      if (tier != nullptr) *tier = CacheTier::kDisk;
      return rebind(std::move(*loaded), spec);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }
  obs::Registry::global().counter("minimalist.cache.misses").add();
  if (tier != nullptr) *tier = CacheTier::kMiss;
  return std::nullopt;
}

void SynthCache::store(const bm::Spec& spec, SynthMode mode,
                       const SynthesizedController& ctrl) {
  std::string key = cache_key(spec, mode, library_version());
  BackingStore* backing = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(key, ctrl);
    backing = backing_;
  }
  if (backing != nullptr) backing->store(key, ctrl);
}

void SynthCache::insert_locked(std::string key,
                               const SynthesizedController& ctrl) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // First writer wins; just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  lru_.push_front(key);
  map_.emplace(std::move(key), Entry{ctrl, lru_.begin()});
  while (map_.size() > max_entries_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    obs::Registry::global().counter("minimalist.cache.evictions").add();
  }
}

void SynthCache::set_library_version(std::string version) {
  std::lock_guard<std::mutex> lock(mu_);
  library_version_ = std::move(version);
}

std::string SynthCache::library_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return library_version_;
}

void SynthCache::set_backing_store(BackingStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  backing_ = store;
}

void SynthCache::set_max_entries(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = cap == 0 ? 1 : cap;
  while (map_.size() > max_entries_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    obs::Registry::global().counter("minimalist.cache.evictions").add();
  }
}

SynthCache::Stats SynthCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_,      disk_hits_,  misses_,
               evictions_, map_.size(), max_entries_};
}

void SynthCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  hits_ = 0;
  disk_hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

SynthCache& SynthCache::global() {
  static SynthCache cache;
  return cache;
}

SynthesizedController synthesize_cached(const bm::Spec& spec, SynthMode mode,
                                        SynthCache& cache, bool* hit,
                                        util::WorkBudget* budget,
                                        CacheTier* tier) {
  CacheTier local_tier = CacheTier::kMiss;
  if (auto cached = cache.lookup(spec, mode, &local_tier)) {
    if (hit) *hit = true;
    if (tier) *tier = local_tier;
    return std::move(*cached);
  }
  SynthesizedController ctrl = synthesize(spec, mode, budget);
  cache.store(spec, mode, ctrl);
  if (hit) *hit = false;
  if (tier) *tier = CacheTier::kMiss;
  return ctrl;
}

}  // namespace bb::minimalist
