#include "src/minimalist/cache.hpp"

#include "src/obs/metrics.hpp"

namespace bb::minimalist {

namespace {

/// Rebinds a stored controller to the requesting spec's signal names.
/// Everything else in a SynthesizedController is positional (covers,
/// state codes, state-bit names "y<s>"), so only the display names of
/// the machine and its input/output wires change.
SynthesizedController rebind(SynthesizedController ctrl, const bm::Spec& spec) {
  ctrl.name = spec.name;
  ctrl.inputs = spec.input_names();
  ctrl.outputs = spec.output_names();
  for (std::size_t z = 0; z < ctrl.outputs.size(); ++z) {
    ctrl.functions[z].name = ctrl.outputs[z];
  }
  return ctrl;
}

}  // namespace

std::string cache_key(const bm::Spec& spec, SynthMode mode) {
  return (mode == SynthMode::kSpeed ? "speed\n" : "area\n") +
         spec.to_canonical();
}

std::optional<SynthesizedController> SynthCache::lookup(const bm::Spec& spec,
                                                        SynthMode mode) {
  const std::string key = cache_key(spec, mode);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    obs::Registry::global().counter("minimalist.cache.misses").add();
    return std::nullopt;
  }
  ++hits_;
  obs::Registry::global().counter("minimalist.cache.hits").add();
  return rebind(it->second, spec);
}

void SynthCache::store(const bm::Spec& spec, SynthMode mode,
                       const SynthesizedController& ctrl) {
  std::string key = cache_key(spec, mode);
  std::lock_guard<std::mutex> lock(mu_);
  map_.emplace(std::move(key), ctrl);
}

SynthCache::Stats SynthCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, map_.size()};
}

void SynthCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

SynthCache& SynthCache::global() {
  static SynthCache cache;
  return cache;
}

SynthesizedController synthesize_cached(const bm::Spec& spec, SynthMode mode,
                                        SynthCache& cache, bool* hit,
                                        util::WorkBudget* budget) {
  if (auto cached = cache.lookup(spec, mode)) {
    if (hit) *hit = true;
    return std::move(*cached);
  }
  SynthesizedController ctrl = synthesize(spec, mode, budget);
  cache.store(spec, mode, ctrl);
  if (hit) *hit = false;
  return ctrl;
}

}  // namespace bb::minimalist
