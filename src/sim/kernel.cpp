#include "src/sim/kernel.hpp"

#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace bb::sim {

Simulator::Simulator(int num_nets)
    : values_(num_nets, false),
      pending_seq_(num_nets, 0),
      pending_value_(num_nets, false),
      has_pending_(num_nets, false),
      subscribers_(num_nets) {}

void Simulator::set_initial(int net, bool value) { values_.at(net) = value; }

void Simulator::schedule(int net, bool value, double delay_ns) {
  if (delay_ns < 0) throw std::invalid_argument("schedule: negative delay");
  if (has_pending_[net]) {
    if (pending_value_[net] == value) return;  // already on its way
    // Contradicted pending transition: cancel it (inertial filtering).
    has_pending_[net] = false;
    if (values_[net] == value) return;  // glitch swallowed entirely
  } else if (values_[net] == value) {
    return;  // no change needed
  }
  const std::uint64_t token = ++seq_;
  pending_seq_[net] = token;
  pending_value_[net] = value;
  has_pending_[net] = true;
  queue_.push(NetEvent{now_ + delay_ns, token, net, value});
}

void Simulator::subscribe(int net, Process* process) {
  subscribers_.at(net).push_back(process);
}

void Simulator::call_at(double delay_ns, std::function<void()> fn) {
  callbacks_.push(Callback{now_ + delay_ns, ++seq_, std::move(fn)});
}

void Simulator::add_process(Process* process) {
  processes_.push_back(process);
  if (started_) process->start(*this);
}

void Simulator::apply(int net, bool value) {
  if (values_[net] == value) return;
  values_[net] = value;
  for (Process* p : subscribers_[net]) p->on_change(*this, net);
}

RunStatus Simulator::run_status(double max_time_ns, std::uint64_t max_events) {
  obs::Span span("sim.run", obs::kCatSim);
  if (!started_) {
    started_ = true;
    for (Process* p : processes_) p->start(*this);
  }
  events_ = 0;
  // Batched into locals: one registry publish per run_status call, not
  // per event.
  std::size_t queue_high_water = queue_.size();
  RunStatus status = RunStatus::kQuiescent;
  while (!queue_.empty() || !callbacks_.empty()) {
    if (events_ + 1 > max_events) {
      status = RunStatus::kEventBudget;
      break;
    }
    ++events_;
    ++total_events_;
    queue_high_water = std::max(queue_high_water, queue_.size());

    const double net_time =
        queue_.empty() ? 1e300 : queue_.top().time;
    const double cb_time =
        callbacks_.empty() ? 1e300 : callbacks_.top().time;
    const double t = std::min(net_time, cb_time);
    if (t > max_time_ns) {
      status = RunStatus::kTimeout;
      break;
    }

    if (cb_time <= net_time) {
      Callback cb = callbacks_.top();
      callbacks_.pop();
      now_ = cb.time;
      cb.fn();
      continue;
    }

    const NetEvent ev = queue_.top();
    queue_.pop();
    // Skip stale events (replaced or cancelled).
    if (!has_pending_[ev.net] || pending_seq_[ev.net] != ev.seq) continue;
    now_ = ev.time;
    has_pending_[ev.net] = false;
    apply(ev.net, ev.value);
  }
  obs::Registry& registry = obs::Registry::global();
  registry.counter("sim.events").add(events_);
  registry.gauge("sim.queue_high_water")
      .update_max(static_cast<std::int64_t>(queue_high_water));
  span.arg("events", events_);
  span.arg("status", run_status_name(status));
  return status;
}

std::string_view run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kQuiescent: return "quiescent";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kEventBudget: return "event budget exhausted";
  }
  return "unknown";
}

}  // namespace bb::sim
