#include "src/sim/gatesim.hpp"

#include <stdexcept>

namespace bb::sim {

namespace {
using netlist::CellFn;
using netlist::Gate;
}  // namespace

GateBinding::GateBinding(const netlist::GateNetlist& netlist)
    : netlist_(netlist), fanout_(netlist.num_nets()) {
  const auto& gates = netlist_.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    for (const int f : gates[g].fanins) {
      fanout_[f].push_back(static_cast<int>(g));
    }
  }
}

void GateBinding::bind(Simulator& sim) {
  for (int net = 0; net < netlist_.num_nets(); ++net) {
    if (!fanout_[net].empty()) sim.subscribe(net, this);
  }
  sim.add_process(this);
}

bool GateBinding::eval(const Simulator& sim, const Gate& gate) const {
  const auto in = [&](std::size_t i) { return sim.value(gate.fanins[i]); };
  switch (gate.fn) {
    case CellFn::kInv:
      return !in(0);
    case CellFn::kBuf:
      return in(0);
    case CellFn::kAnd:
    case CellFn::kNand: {
      bool v = true;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v && in(i);
      return gate.fn == CellFn::kAnd ? v : !v;
    }
    case CellFn::kOr:
    case CellFn::kNor: {
      bool v = false;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v || in(i);
      return gate.fn == CellFn::kOr ? v : !v;
    }
    case CellFn::kXor: {
      bool v = false;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v != in(i);
      return v;
    }
    case CellFn::kCelem: {
      const bool first = in(0);
      for (std::size_t i = 1; i < gate.fanins.size(); ++i) {
        if (in(i) != first) return sim.value(gate.output);  // hold
      }
      return first;
    }
    case CellFn::kConst0:
      return false;
    case CellFn::kConst1:
      return true;
  }
  return false;
}

void GateBinding::on_change(Simulator& sim, int net) {
  for (const int g : fanout_[net]) {
    const Gate& gate = netlist_.gates()[g];
    sim.schedule(gate.output, eval(sim, gate), gate.delay_ns);
  }
}

void GateBinding::settle_initial(Simulator& sim,
                                 const std::vector<int>& clamped) const {
  std::vector<bool> is_clamped(netlist_.num_nets(), false);
  for (const int net : clamped) is_clamped.at(net) = true;

  bool settled = false;
  for (int pass = 0; pass < 1000 && !settled; ++pass) {
    settled = true;
    for (const Gate& gate : netlist_.gates()) {
      if (is_clamped[gate.output]) continue;
      const bool v = eval(sim, gate);
      if (sim.value(gate.output) != v) {
        sim.set_initial(gate.output, v);
        settled = false;
      }
    }
  }
  if (!settled) {
    throw std::runtime_error(
        "GateBinding: no stable initial assignment (oscillating loop)");
  }
  // The clamped nets must be reproduced by their drivers: the seeded
  // state is a stable point of the feedback logic.
  for (const Gate& gate : netlist_.gates()) {
    if (!is_clamped[gate.output]) continue;
    if (eval(sim, gate) != sim.value(gate.output)) {
      throw std::runtime_error(
          "GateBinding: seeded value on net '" +
          netlist_.net_name(gate.output) +
          "' is not stable under the feedback logic");
    }
  }
}

}  // namespace bb::sim
