#include "src/sim/gatesim.hpp"

#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/sim/fault.hpp"

namespace bb::sim {

namespace {
using netlist::CellFn;
using netlist::Gate;
}  // namespace

GateBinding::GateBinding(const netlist::GateNetlist& netlist)
    : netlist_(netlist), fanout_(netlist.num_nets()) {
  const auto& gates = netlist_.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    for (const int f : gates[g].fanins) {
      fanout_[f].push_back(static_cast<int>(g));
    }
  }
}

void GateBinding::bind(Simulator& sim) {
  for (int net = 0; net < netlist_.num_nets(); ++net) {
    if (!fanout_[net].empty()) sim.subscribe(net, this);
  }
  sim.add_process(this);
}

void GateBinding::set_fault_plan(const FaultPlan* plan) {
  if (plan != nullptr && &plan->netlist() != &netlist_ &&
      plan->netlist().num_nets() != netlist_.num_nets()) {
    throw std::invalid_argument(
        "GateBinding::set_fault_plan: plan targets a different netlist");
  }
  faults_ = plan;
}

void GateBinding::start(Simulator& sim) {
  if (faults_ == nullptr) return;
  // Stuck-at outputs: schedule the forced value as an ordinary zero-delay
  // transition.  If the settled value already matches, the inertial model
  // swallows the event and the fault simply holds from then on via eval.
  const auto& gates = netlist_.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (faults_->is_forced(static_cast<int>(g))) {
      sim.schedule(gates[g].output, faults_->forced_value(static_cast<int>(g)),
                   0.0);
    }
  }
  // Single-event upsets: at the chosen instant, invert whatever value the
  // net holds at that moment.
  for (const Fault* flip : faults_->bit_flips()) {
    const int net = flip->net;
    sim.call_at(flip->at_ns, [&sim, net] {
      sim.schedule(net, !sim.value(net), 0.0);
    });
  }
}

bool GateBinding::eval(const Simulator& sim, std::size_t g,
                       bool faulted) const {
  if (faulted && faults_ != nullptr &&
      faults_->is_forced(static_cast<int>(g))) {
    return faults_->forced_value(static_cast<int>(g));
  }
  const Gate& gate = netlist_.gates()[g];
  const auto in = [&](std::size_t i) { return sim.value(gate.fanins[i]); };
  switch (gate.fn) {
    case CellFn::kInv:
      return !in(0);
    case CellFn::kBuf:
      return in(0);
    case CellFn::kAnd:
    case CellFn::kNand: {
      bool v = true;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v && in(i);
      return gate.fn == CellFn::kAnd ? v : !v;
    }
    case CellFn::kOr:
    case CellFn::kNor: {
      bool v = false;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v || in(i);
      return gate.fn == CellFn::kOr ? v : !v;
    }
    case CellFn::kXor: {
      bool v = false;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) v = v != in(i);
      return v;
    }
    case CellFn::kCelem: {
      const bool first = in(0);
      for (std::size_t i = 1; i < gate.fanins.size(); ++i) {
        if (in(i) != first) return sim.value(gate.output);  // hold
      }
      return first;
    }
    case CellFn::kConst0:
      return false;
    case CellFn::kConst1:
      return true;
  }
  return false;
}

void GateBinding::on_change(Simulator& sim, int net) {
  for (const int g : fanout_[net]) {
    const Gate& gate = netlist_.gates()[g];
    const double delay =
        faults_ != nullptr ? faults_->effective_delay_ns(g) : gate.delay_ns;
    sim.schedule(gate.output, eval(sim, static_cast<std::size_t>(g), true),
                 delay);
  }
}

void GateBinding::settle_initial(Simulator& sim,
                                 const std::vector<int>& clamped) const {
  std::vector<bool> is_clamped(netlist_.num_nets(), false);
  for (const int net : clamped) is_clamped.at(net) = true;

  const auto& gates = netlist_.gates();
  bool settled = false;
  std::uint64_t passes = 0;
  for (int pass = 0; pass < 1000 && !settled; ++pass) {
    settled = true;
    ++passes;
    for (std::size_t g = 0; g < gates.size(); ++g) {
      if (is_clamped[gates[g].output]) continue;
      const bool v = eval(sim, g, /*faulted=*/false);
      if (sim.value(gates[g].output) != v) {
        sim.set_initial(gates[g].output, v);
        settled = false;
      }
    }
  }
  obs::Registry::global().counter("sim.settle_passes").add(passes);
  if (!settled) {
    throw std::runtime_error(
        "GateBinding: no stable initial assignment (oscillating loop)");
  }
  // The clamped nets must be reproduced by their drivers: the seeded
  // state is a stable point of the feedback logic.
  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (!is_clamped[gates[g].output]) continue;
    if (eval(sim, g, /*faulted=*/false) != sim.value(gates[g].output)) {
      throw std::runtime_error(
          "GateBinding: seeded value on net '" +
          netlist_.net_name(gates[g].output) +
          "' is not stable under the feedback logic");
    }
  }
}

}  // namespace bb::sim
