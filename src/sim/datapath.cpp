#include "src/sim/datapath.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/strings.hpp"

namespace bb::sim {

namespace {

std::uint64_t mask_of(int width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

std::uint64_t apply_op(const std::string& op, std::uint64_t a,
                       std::uint64_t b, int width) {
  const std::uint64_t m = mask_of(width);
  if (op == "add") return (a + b) & m;
  if (op == "sub") return (a - b) & m;
  if (op == "and") return a & b & m;
  if (op == "or") return (a | b) & m;
  if (op == "xor") return (a ^ b) & m;
  if (op == "eq") return (a & m) == (b & m) ? 1 : 0;
  if (op == "ne") return (a & m) != (b & m) ? 1 : 0;
  if (op == "lt") return (a & m) < (b & m) ? 1 : 0;
  if (op == "lts") {
    const std::uint64_t sign = 1ull << (width - 1);
    const auto ext = [&](std::uint64_t v) {
      return static_cast<std::int64_t>((v & m) ^ sign) -
             static_cast<std::int64_t>(sign);
    };
    return ext(a) < ext(b) ? 1 : 0;
  }
  if (op == "shl") return (a << (b & 63)) & m;
  if (op == "shr") return ((a & m) >> (b & 63)) & m;
  throw std::invalid_argument("datapath: unknown binary op '" + op + "'");
}

std::uint64_t apply_unop(const std::string& op, std::uint64_t a, int width) {
  const std::uint64_t m = mask_of(width);
  if (op == "not") return ~a & m;
  if (op == "neg") return (~a + 1) & m;
  throw std::invalid_argument("datapath: unknown unary op '" + op + "'");
}

/// Base class: owns the channel-net handles and a subscription list.
class Model : public Process {
 public:
  const std::vector<int>& watched() const { return watched_; }

 protected:
  Model(netlist::GateNetlist& gates, DatapathContext& data,
        const DpModels& models)
      : gates_(gates), data_(data), models_(models) {}

  ChannelNets ch(const std::string& name) {
    return channel_nets(gates_, name);
  }
  void watch(int net) { watched_.push_back(net); }

  DatapathContext& data() { return data_; }
  const DpModels& models() const { return models_; }

 private:
  netlist::GateNetlist& gates_;
  DatapathContext& data_;
  DpModels models_;
  std::vector<int> watched_;
};

class VariableModel : public Model {
 public:
  VariableModel(netlist::GateNetlist& g, DatapathContext& d,
                const DpModels& m, const hsnet::Component& c)
      : Model(g, d, m), mask_(mask_of(c.width > 0 ? c.width : 64)) {
    const int writes = c.ways;  // ways = number of write ports
    for (int i = 0; i < static_cast<int>(c.ports.size()); ++i) {
      Port p;
      p.name = c.ports[i];
      p.nets = ch(c.ports[i]);
      p.is_write = i < writes;
      watch(p.nets.req);
      ports_.push_back(std::move(p));
    }
  }

  void on_change(Simulator& sim, int net) override {
    for (const Port& p : ports_) {
      if (net != p.nets.req) continue;
      if (sim.value(net)) {
        if (p.is_write) {
          value_ = data().get(p.name) & mask_;
          sim.schedule(p.nets.ack, true, models().latch_ns);
        } else {
          data().set(p.name, value_);
          sim.schedule(p.nets.ack, true, models().read_ns);
        }
      } else {
        sim.schedule(p.nets.ack, false, models().step_ns);
      }
    }
  }

 private:
  struct Port {
    std::string name;
    ChannelNets nets;
    bool is_write = false;
  };
  std::vector<Port> ports_;
  std::uint64_t mask_ = ~0ull;
  std::uint64_t value_ = 0;
};

class FetchModel : public Model {
 public:
  FetchModel(netlist::GateNetlist& g, DatapathContext& d, const DpModels& m,
             const hsnet::Component& c)
      : Model(g, d, m),
        in_name_(c.ports.at(1)),
        out_name_(c.ports.at(2)),
        a_(ch(c.ports.at(0))),
        i_(ch(c.ports.at(1))),
        o_(ch(c.ports.at(2))) {
    watch(a_.req);
    watch(i_.ack);
    watch(o_.ack);
  }

  void on_change(Simulator& sim, int net) override {
    const double d = models().step_ns;
    if (net == a_.req) {
      if (sim.value(net)) {
        sim.schedule(i_.req, true, d);
      } else {
        sim.schedule(a_.ack, false, models().ctl_ns);
      }
    } else if (net == i_.ack) {
      if (sim.value(net)) {
        tmp_ = data().get(in_name_);
        sim.schedule(i_.req, false, d);
      } else {
        data().set(out_name_, tmp_);
        sim.schedule(o_.req, true, d);
      }
    } else if (net == o_.ack) {
      if (sim.value(net)) {
        sim.schedule(o_.req, false, d);
      } else {
        sim.schedule(a_.ack, true, models().ctl_ns);
      }
    }
  }

 private:
  std::string in_name_;
  std::string out_name_;
  ChannelNets a_, i_, o_;
  std::uint64_t tmp_ = 0;
};

class BinaryFuncModel : public Model {
 public:
  BinaryFuncModel(netlist::GateNetlist& g, DatapathContext& d,
                  const DpModels& m, const hsnet::Component& c)
      : Model(g, d, m),
        op_(c.op),
        width_(c.width),
        out_name_(c.ports.at(0)),
        in1_name_(c.ports.at(1)),
        in2_name_(c.ports.at(2)),
        o_(ch(c.ports.at(0))),
        i1_(ch(c.ports.at(1))),
        i2_(ch(c.ports.at(2))) {
    watch(o_.req);
    watch(i1_.ack);
    watch(i2_.ack);
  }

  void on_change(Simulator& sim, int net) override {
    const double d = models().step_ns;
    if (net == o_.req) {
      if (sim.value(net)) {
        sim.schedule(i1_.req, true, d);
        sim.schedule(i2_.req, true, d);
      } else {
        sim.schedule(o_.ack, false, d);
      }
    } else if (net == i1_.ack || net == i2_.ack) {
      if (sim.value(net)) {
        if (sim.value(i1_.ack) && sim.value(i2_.ack)) {
          result_ = apply_op(op_, data().get(in1_name_), data().get(in2_name_),
                             width_);
          sim.schedule(i1_.req, false, d);
          sim.schedule(i2_.req, false, d);
        }
      } else if (!sim.value(i1_.ack) && !sim.value(i2_.ack) &&
                 sim.value(o_.req)) {
        data().set(out_name_, result_);
        sim.schedule(o_.ack, true, DpModels::func_delay_ns(op_, width_));
      }
    }
  }

 private:
  std::string op_;
  int width_;
  std::string out_name_, in1_name_, in2_name_;
  ChannelNets o_, i1_, i2_;
  std::uint64_t result_ = 0;
};

class UnaryFuncModel : public Model {
 public:
  UnaryFuncModel(netlist::GateNetlist& g, DatapathContext& d,
                 const DpModels& m, const hsnet::Component& c)
      : Model(g, d, m),
        op_(c.op),
        width_(c.width),
        out_name_(c.ports.at(0)),
        in_name_(c.ports.at(1)),
        o_(ch(c.ports.at(0))),
        i_(ch(c.ports.at(1))) {
    watch(o_.req);
    watch(i_.ack);
  }

  void on_change(Simulator& sim, int net) override {
    const double d = models().step_ns;
    if (net == o_.req) {
      if (sim.value(net)) {
        sim.schedule(i_.req, true, d);
      } else {
        sim.schedule(o_.ack, false, d);
      }
    } else if (net == i_.ack) {
      if (sim.value(net)) {
        result_ = apply_unop(op_, data().get(in_name_), width_);
        sim.schedule(i_.req, false, d);
      } else if (sim.value(o_.req)) {
        data().set(out_name_, result_);
        sim.schedule(o_.ack, true, DpModels::func_delay_ns(op_, width_));
      }
    }
  }

 private:
  std::string op_;
  int width_;
  std::string out_name_, in_name_;
  ChannelNets o_, i_;
  std::uint64_t result_ = 0;
};

class ConstantModel : public Model {
 public:
  ConstantModel(netlist::GateNetlist& g, DatapathContext& d,
                const DpModels& m, const hsnet::Component& c)
      : Model(g, d, m),
        value_(static_cast<std::uint64_t>(c.value)),
        out_name_(c.ports.at(0)),
        o_(ch(c.ports.at(0))) {
    watch(o_.req);
  }

  void on_change(Simulator& sim, int net) override {
    if (net != o_.req) return;
    if (sim.value(net)) {
      data().set(out_name_, value_);
      sim.schedule(o_.ack, true, models().const_ns);
    } else {
      sim.schedule(o_.ack, false, models().step_ns);
    }
  }

 private:
  std::uint64_t value_;
  std::string out_name_;
  ChannelNets o_;
};

class GuardModel : public Model {
 public:
  GuardModel(netlist::GateNetlist& g, DatapathContext& d, const DpModels& m,
             const hsnet::Component& c)
      : Model(g, d, m),
        cond_name_(c.ports.at(1)),
        cond_(ch(c.ports.at(1))),
        ways_(std::max(c.ways, 2)),
        boolean_(c.op != "index"),
        labels_(c.labels),
        default_branch_(static_cast<int>(c.value)) {
    const std::string q = util::to_lower(c.ports.at(0));
    query_req_ = g.net(q + "_r");
    if (query_req_ < 0) query_req_ = g.add_net(q + "_r");
    for (int i = 1; i <= ways_; ++i) {
      const std::string name = q + "_a" + std::to_string(i);
      int net = g.net(name);
      if (net < 0) net = g.add_net(name);
      acks_.push_back(net);
    }
    watch(query_req_);
    watch(cond_.ack);
  }

  void on_change(Simulator& sim, int net) override {
    const double d = models().step_ns;
    if (net == query_req_) {
      if (sim.value(net)) {
        sim.schedule(cond_.req, true, d);
      } else {
        sim.schedule(acks_.at(index_), false, models().ctl_ns);
      }
    } else if (net == cond_.ack) {
      if (sim.value(net)) {
        index_ = select(data().get(cond_name_));
        sim.schedule(cond_.req, false, d);
      } else {
        sim.schedule(acks_.at(index_), true, models().ctl_ns);
      }
    }
  }

 private:
  int select(std::uint64_t v) const {
    if (boolean_) return v != 0 ? 0 : 1;
    if (v < labels_.size()) return labels_[v];
    return default_branch_;
  }

  std::string cond_name_;
  ChannelNets cond_;
  int ways_;
  int query_req_ = -1;
  std::vector<int> acks_;
  int index_ = 0;
  bool boolean_ = true;
  std::vector<int> labels_;
  int default_branch_ = 0;
};

class MergeModel : public Model {
 public:
  MergeModel(netlist::GateNetlist& g, DatapathContext& d, const DpModels& m,
             const hsnet::Component& c)
      : Model(g, d, m), push_(c.op != "pull"), server_name_(c.ports.back()),
        server_(ch(c.ports.back())) {
    for (std::size_t i = 0; i + 1 < c.ports.size(); ++i) {
      client_names_.push_back(c.ports[i]);
      clients_.push_back(ch(c.ports[i]));
      watch(clients_.back().req);
    }
    watch(server_.ack);
  }

  void on_change(Simulator& sim, int net) override {
    const double d = models().step_ns;
    for (std::size_t k = 0; k < clients_.size(); ++k) {
      if (net != clients_[k].req) continue;
      if (sim.value(net)) {
        active_ = static_cast<int>(k);
        if (push_) data().set(server_name_, data().get(client_names_[k]));
        sim.schedule(server_.req, true, d);
      } else {
        sim.schedule(server_.req, false, d);
      }
      return;
    }
    if (net == server_.ack && active_ >= 0) {
      if (sim.value(net)) {
        if (!push_) {
          data().set(client_names_[active_], data().get(server_name_));
        }
        sim.schedule(clients_[active_].ack, true, d);
      } else {
        sim.schedule(clients_[active_].ack, false, d);
      }
    }
  }

 private:
  bool push_;
  std::string server_name_;
  ChannelNets server_;
  std::vector<std::string> client_names_;
  std::vector<ChannelNets> clients_;
  int active_ = -1;
};

}  // namespace

ChannelNets channel_nets(netlist::GateNetlist& net, const std::string& name) {
  const std::string base = util::to_lower(name);
  ChannelNets out;
  out.req = net.net(base + "_r");
  if (out.req < 0) out.req = net.add_net(base + "_r");
  out.ack = net.net(base + "_a");
  if (out.ack < 0) out.ack = net.add_net(base + "_a");
  return out;
}

double DpModels::func_delay_ns(const std::string& op, int width) {
  if (op == "add" || op == "sub" || op == "neg" || op == "lts" ||
      op == "lt") {
    return 0.25 + 0.11 * width;  // ripple-carry chain
  }
  if (op == "eq" || op == "ne") {
    return 0.30 + 0.05 * std::ceil(std::log2(std::max(width, 2)));
  }
  if (op == "shl" || op == "shr") return 0.10;
  return 0.25;  // bitwise logic
}

double DpModels::func_area(const std::string& op, int width) {
  if (op == "add" || op == "sub" || op == "neg" || op == "lts" ||
      op == "lt") {
    return 330.0 * width;
  }
  if (op == "eq" || op == "ne") return 120.0 * width;
  if (op == "shl" || op == "shr") return 10.0 * width;
  if (op == "not") return 55.0 * width;
  return 73.0 * width;
}

double DpModels::variable_area(int width, int writes, int reads) {
  return 128.0 * width + 90.0 * width * std::max(writes - 1, 0) +
         40.0 * width * reads + 150.0;
}

double DpModels::fetch_area(int width) { return 180.0 + 8.0 * width; }

double DpModels::guard_area(int ways) { return 250.0 + 60.0 * ways; }

double DpModels::merge_area(int width, int ways) {
  return 120.0 * ways + 90.0 * width * std::max(ways - 1, 0);
}

DatapathBuilder::DatapathBuilder(netlist::GateNetlist& gates,
                                 DatapathContext& data)
    : gates_(gates), data_(data) {}

double DatapathBuilder::build(const hsnet::Component& c) {
  std::unique_ptr<Model> model;
  double area = 0.0;
  switch (c.kind) {
    case hsnet::ComponentKind::kVariable: {
      const int writes = c.ways;
      const int reads = static_cast<int>(c.ports.size()) - writes;
      area = DpModels::variable_area(c.width, writes, reads);
      model = std::make_unique<VariableModel>(gates_, data_, models_, c);
      break;
    }
    case hsnet::ComponentKind::kFetch:
      area = DpModels::fetch_area(c.width);
      model = std::make_unique<FetchModel>(gates_, data_, models_, c);
      break;
    case hsnet::ComponentKind::kBinaryFunc:
      area = DpModels::func_area(c.op, c.width);
      model = std::make_unique<BinaryFuncModel>(gates_, data_, models_, c);
      break;
    case hsnet::ComponentKind::kUnaryFunc:
      area = DpModels::func_area(c.op, c.width);
      model = std::make_unique<UnaryFuncModel>(gates_, data_, models_, c);
      break;
    case hsnet::ComponentKind::kConstant:
      area = 18.0 * std::max(c.width, 1);
      model = std::make_unique<ConstantModel>(gates_, data_, models_, c);
      break;
    case hsnet::ComponentKind::kGuard:
      area = DpModels::guard_area(std::max(c.ways, 2));
      model = std::make_unique<GuardModel>(gates_, data_, models_, c);
      break;
    case hsnet::ComponentKind::kMerge:
      area = DpModels::merge_area(c.width,
                                  static_cast<int>(c.ports.size()) - 1);
      model = std::make_unique<MergeModel>(gates_, data_, models_, c);
      break;
    default:
      throw std::invalid_argument("DatapathBuilder: " + c.display_name() +
                                  " is not a datapath component");
  }
  subscriptions_.push_back(model->watched());
  processes_.push_back(std::move(model));
  return area;
}

double DatapathBuilder::build_all(const hsnet::Netlist& netlist) {
  double area = 0.0;
  for (const int id : netlist.datapath_ids()) {
    const auto& c = netlist.component(id);
    if (c.kind == hsnet::ComponentKind::kMemory) continue;  // environment
    area += build(c);
  }
  return area;
}

void DatapathBuilder::attach(Simulator& sim) {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    for (const int net : subscriptions_[i]) {
      sim.subscribe(net, processes_[i].get());
    }
    sim.add_process(processes_[i].get());
  }
}

}  // namespace bb::sim
