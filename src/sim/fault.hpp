// Gate-level fault injection for the event kernel.
//
// A FaultPlan describes a set of faults applied to one GateNetlist during
// simulation:
//   - stuck-at-0 / stuck-at-1 on a gate's output: the gate evaluates to
//     the forced value for the whole run (the classic manufacturing-test
//     fault model), with the forced value scheduled once at time ~0 so a
//     wire whose fault value differs from its settled initial state makes
//     a real transition the rest of the circuit reacts to;
//   - transient bit flips (single-event upsets) on state-holding nets: at
//     a chosen instant the net is driven to the opposite of its current
//     value for one transition, after which the surrounding feedback logic
//     either restores or latches the upset;
//   - per-gate delay perturbation: every gate delay is scaled and jittered
//     (seeded PRNG, see FaultPlan::perturb_delays) to stress the
//     hazard-freedom claim beyond the single nominal delay model.
//
// Faults apply only to event-driven evaluation.  GateBinding's initial
// fixpoint (settle_initial) stays fault-free, which models a circuit that
// powers up healthy and then misbehaves — and keeps the campaign's
// "detected vs tolerated" classification about dynamic behaviour rather
// than unreachable initial states.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netlist/gates.hpp"

namespace bb::sim {

enum class FaultKind {
  kStuckAt0,  ///< gate output forced to 0 for the whole run
  kStuckAt1,  ///< gate output forced to 1 for the whole run
  kBitFlip,   ///< one-shot inversion of a net at `at_ns` (SEU)
  kDelay,     ///< gate delay multiplied by `delay_scale` + `delay_add_ns`
};

std::string_view fault_kind_name(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kStuckAt0;
  /// Target gate index (stuck-at / delay faults); -1 for bit flips.
  int gate = -1;
  /// Target net id (bit flips); for stuck-at faults this is filled with
  /// the gate's output net for reporting convenience.
  int net = -1;
  /// Injection instant for bit flips.
  double at_ns = 0.0;
  /// Delay model perturbation (kDelay only).
  double delay_scale = 1.0;
  double delay_add_ns = 0.0;

  /// "stuck-at-1 gate 12 (net ctl0/y0)" — stable across runs, used in the
  /// campaign's deterministic JSON.
  std::string describe(const netlist::GateNetlist& netlist) const;
};

/// An immutable set of faults for one netlist.  Build it once, hand it to
/// GateBinding::set_fault_plan, and keep it alive for the whole run.
class FaultPlan {
 public:
  explicit FaultPlan(const netlist::GateNetlist& netlist);

  /// Adds a stuck-at fault on `gate`'s output.
  void stuck_at(int gate, bool value);

  /// Adds a transient bit flip on `net` at `at_ns`.
  void bit_flip(int net, double at_ns);

  /// Applies `scale` to every gate delay plus a per-gate additive jitter
  /// drawn uniformly from [-jitter_ns, +jitter_ns] with SplitMix64(seed).
  /// Deterministic: the same (netlist, seed, scale, jitter) always yields
  /// the same perturbation.  Recorded as one kDelay fault per gate whose
  /// effective delay actually changed.
  void perturb_delays(std::uint64_t seed, double scale, double jitter_ns);

  const std::vector<Fault>& faults() const { return faults_; }
  const netlist::GateNetlist& netlist() const { return netlist_; }
  bool empty() const { return faults_.empty(); }

  // ---- resolved per-gate views consumed by GateBinding ----

  /// Does `gate` have a stuck-at fault, and at which value?
  bool is_forced(int gate) const { return forced_mask_[gate]; }
  bool forced_value(int gate) const { return forced_value_[gate]; }

  /// The effective inertial delay of `gate` under the plan.
  double effective_delay_ns(int gate) const { return delay_[gate]; }

  /// All bit-flip faults, in insertion order.
  std::vector<const Fault*> bit_flips() const;

 private:
  const netlist::GateNetlist& netlist_;
  std::vector<Fault> faults_;
  std::vector<bool> forced_mask_;   // per gate
  std::vector<bool> forced_value_;  // per gate
  std::vector<double> delay_;       // per gate, effective delay
};

}  // namespace bb::sim
