// Behavioural datapath models (the "Balsa tech-mapped datapath" side of
// Fig. 1).
//
// Control is simulated at gate level; datapath handshake components run as
// behavioural processes with characterized delays and areas (see
// DESIGN.md's substitution table).  Data values travel through a channel
// registry rather than modelled wires; the req/ack wires are real nets so
// control and datapath interact exactly as in the merged circuit.
//
// All data channels follow a pull-style four-phase protocol: the consumer
// raises <ch>_r, the producer publishes data[<ch>] and raises <ch>_a, then
// both return to zero.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hsnet/netlist.hpp"
#include "src/netlist/gates.hpp"
#include "src/sim/kernel.hpp"

namespace bb::sim {

/// Data carried by channels during simulation.
struct DatapathContext {
  std::map<std::string, std::uint64_t> data;

  std::uint64_t get(const std::string& channel) const {
    const auto it = data.find(channel);
    return it == data.end() ? 0 : it->second;
  }
  void set(const std::string& channel, std::uint64_t value) {
    data[channel] = value;
  }
};

/// Request/acknowledge nets of a channel, created on demand with the
/// names "<ch>_r" / "<ch>_a" so control netlists merge onto them.
struct ChannelNets {
  int req = -1;
  int ack = -1;
};
ChannelNets channel_nets(netlist::GateNetlist& net, const std::string& name);

/// Characterized delays and area models shared by all datapath models.
struct DpModels {
  // Handshake step delays.  Edges that feed a *controller* input must
  // respect the controllers' one-sided timing assumption (see
  // techmap/cells.cpp): no controller-facing response faster than
  // ctl_ns.  Datapath-internal steps (component-to-component) are the
  // faster latch-controller delays.
  double step_ns = 0.30;         ///< datapath-internal handshake step
  double ctl_ns = 0.80;          ///< controller-facing response
  double latch_ns = 0.50;        ///< variable write
  double read_ns = 0.40;         ///< variable read
  double const_ns = 0.30;

  static double func_delay_ns(const std::string& op, int width);
  static double func_area(const std::string& op, int width);
  static double variable_area(int width, int writes, int reads);
  static double fetch_area(int width);
  static double guard_area(int ways);
  static double merge_area(int width, int ways);
};

/// Instantiates behavioural models for every datapath component of the
/// handshake netlist and wires them to the gate netlist by channel name.
/// Returns the total datapath area.
class DatapathBuilder {
 public:
  DatapathBuilder(netlist::GateNetlist& gates, DatapathContext& data);

  /// Builds the model for one component; returns its area.
  double build(const hsnet::Component& component);

  /// Builds everything datapath in `netlist`; returns total area.
  double build_all(const hsnet::Netlist& netlist);

  /// Registers all built processes with a simulator.
  void attach(Simulator& sim);

  const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 private:
  netlist::GateNetlist& gates_;
  DatapathContext& data_;
  DpModels models_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::vector<int>> subscriptions_;  // per process: nets
};

}  // namespace bb::sim
