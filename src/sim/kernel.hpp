// Event-driven simulation kernel (Verilog-XL substitute).
//
// Nets carry Boolean values; gates and behavioural processes react to net
// changes and schedule future changes.  Gates use an inertial delay model:
// at most one transition is pending per net, and re-evaluation replaces a
// contradicted pending transition (short glitch pulses are filtered, as a
// real gate's output capacitance would).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include <string_view>

namespace bb::sim {

class Simulator;

/// Why a run() call returned.
enum class RunStatus {
  kQuiescent,    ///< no events left: the model settled
  kTimeout,      ///< the next event lies beyond max_time_ns
  kEventBudget,  ///< max_events exceeded (livelock or oscillation)
};

/// "quiescent" / "timeout" / "event budget exhausted".
std::string_view run_status_name(RunStatus status);

/// A behavioural participant: testbench or datapath model.
class Process {
 public:
  virtual ~Process() = default;
  /// Called once before simulation starts.
  virtual void start(Simulator& sim) { (void)sim; }
  /// Called when a subscribed net changes value.
  virtual void on_change(Simulator& sim, int net) = 0;
};

class Simulator {
 public:
  explicit Simulator(int num_nets);

  int num_nets() const { return static_cast<int>(values_.size()); }
  double now() const { return now_; }
  bool value(int net) const { return values_.at(net); }

  /// Sets a net's value before simulation (no event generated).
  void set_initial(int net, bool value);

  /// Schedules `net` to become `value` at now()+delay.  Replaces any
  /// pending transition on the same net (inertial model); scheduling the
  /// current value cancels a pending opposite transition.
  void schedule(int net, bool value, double delay_ns);

  /// Registers `process` for notifications when `net` changes.
  void subscribe(int net, Process* process);

  /// Schedules a one-shot callback at now()+delay.
  void call_at(double delay_ns, std::function<void()> fn);

  /// Runs until quiescence or the limits hit.  The event budget is
  /// per-call: each invocation starts counting from zero, so a simulator
  /// can be re-run any number of times.
  RunStatus run_status(double max_time_ns = 1e9,
                       std::uint64_t max_events = 50'000'000);

  /// Bool-compatible wrapper around run_status(): true on quiescence.
  bool run(double max_time_ns = 1e9, std::uint64_t max_events = 50'000'000) {
    return run_status(max_time_ns, max_events) == RunStatus::kQuiescent;
  }

  /// Starts all registered processes (called by run on first use).
  void add_process(Process* process);

  /// Events handled by the most recent run()/run_status() call.
  std::uint64_t events_processed() const { return events_; }
  /// Events handled across all calls on this simulator.
  std::uint64_t total_events() const { return total_events_; }

 private:
  struct NetEvent {
    double time;
    std::uint64_t seq;  // invalidation token
    int net;
    bool value;
    bool operator>(const NetEvent& other) const {
      return time > other.time || (time == other.time && seq > other.seq);
    }
  };
  struct Callback {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Callback& other) const {
      return time > other.time || (time == other.time && seq > other.seq);
    }
  };

  void apply(int net, bool value);

  std::vector<bool> values_;
  std::vector<std::uint64_t> pending_seq_;  // valid event token per net
  std::vector<bool> pending_value_;
  std::vector<bool> has_pending_;
  std::vector<std::vector<Process*>> subscribers_;
  std::vector<Process*> processes_;
  bool started_ = false;

  std::priority_queue<NetEvent, std::vector<NetEvent>, std::greater<>> queue_;
  std::priority_queue<Callback, std::vector<Callback>, std::greater<>>
      callbacks_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;        // per-call counter, reset by run_status
  std::uint64_t total_events_ = 0;  // lifetime counter
};

}  // namespace bb::sim
