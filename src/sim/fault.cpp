#include "src/sim/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/prng.hpp"

namespace bb::sim {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt0:
      return "stuck-at-0";
    case FaultKind::kStuckAt1:
      return "stuck-at-1";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kDelay:
      return "delay";
  }
  return "?";
}

std::string Fault::describe(const netlist::GateNetlist& netlist) const {
  std::string s{fault_kind_name(kind)};
  if (gate >= 0) {
    s += " gate " + std::to_string(gate) + " (" +
         netlist.gates()[gate].cell + ")";
  }
  if (net >= 0) {
    const std::string& name = netlist.net_name(net);
    s += " net " + (name.empty() ? std::to_string(net) : name);
  }
  if (kind == FaultKind::kBitFlip) {
    s += " at " + std::to_string(at_ns) + " ns";
  }
  if (kind == FaultKind::kDelay) {
    s += " x" + std::to_string(delay_scale) + " +" +
         std::to_string(delay_add_ns) + " ns";
  }
  return s;
}

FaultPlan::FaultPlan(const netlist::GateNetlist& netlist)
    : netlist_(netlist),
      forced_mask_(netlist.gates().size(), false),
      forced_value_(netlist.gates().size(), false) {
  delay_.reserve(netlist.gates().size());
  for (const netlist::Gate& gate : netlist.gates()) {
    delay_.push_back(gate.delay_ns);
  }
}

void FaultPlan::stuck_at(int gate, bool value) {
  if (gate < 0 || static_cast<std::size_t>(gate) >= forced_mask_.size()) {
    throw std::out_of_range("FaultPlan::stuck_at: gate index out of range");
  }
  Fault f;
  f.kind = value ? FaultKind::kStuckAt1 : FaultKind::kStuckAt0;
  f.gate = gate;
  f.net = netlist_.gates()[gate].output;
  faults_.push_back(f);
  forced_mask_[gate] = true;
  forced_value_[gate] = value;
}

void FaultPlan::bit_flip(int net, double at_ns) {
  if (net < 0 || net >= netlist_.num_nets()) {
    throw std::out_of_range("FaultPlan::bit_flip: net id out of range");
  }
  Fault f;
  f.kind = FaultKind::kBitFlip;
  f.net = net;
  f.at_ns = at_ns;
  faults_.push_back(f);
}

void FaultPlan::perturb_delays(std::uint64_t seed, double scale,
                               double jitter_ns) {
  util::SplitMix64 prng(seed);
  for (std::size_t g = 0; g < delay_.size(); ++g) {
    const double jitter = jitter_ns * (2.0 * prng.uniform() - 1.0);
    const double perturbed =
        std::max(0.0, netlist_.gates()[g].delay_ns * scale + jitter);
    if (perturbed == delay_[g]) continue;
    delay_[g] = perturbed;
    Fault f;
    f.kind = FaultKind::kDelay;
    f.gate = static_cast<int>(g);
    f.net = netlist_.gates()[g].output;
    f.delay_scale = scale;
    f.delay_add_ns = jitter;
    faults_.push_back(f);
  }
}

std::vector<const Fault*> FaultPlan::bit_flips() const {
  std::vector<const Fault*> out;
  for (const Fault& f : faults_) {
    if (f.kind == FaultKind::kBitFlip) out.push_back(&f);
  }
  return out;
}

}  // namespace bb::sim
