// Gate-level binding: evaluates a GateNetlist inside the event kernel.
#pragma once

#include "src/netlist/gates.hpp"
#include "src/sim/kernel.hpp"

namespace bb::sim {

class FaultPlan;

class GateBinding : public Process {
 public:
  /// The netlist must outlive the binding.
  explicit GateBinding(const netlist::GateNetlist& netlist);

  /// Subscribes every gate to its fanin nets.
  void bind(Simulator& sim);

  /// Applies a fault plan (see sim/fault.hpp) to event-driven evaluation.
  /// The plan must target the same netlist and must outlive the binding;
  /// pass nullptr to clear.  Stuck-at values and bit flips are scheduled
  /// when the simulator starts processes (first run call), so
  /// settle_initial stays fault-free.
  void set_fault_plan(const FaultPlan* plan);

  /// Schedules stuck-at forcing and bit-flip injections.
  void start(Simulator& sim) override;

  /// Computes a consistent initial assignment by iterating gate
  /// evaluation to a fixpoint.  Call after seeding primary inputs and
  /// state-bit nets with set_initial; pass the seeded feedback nets as
  /// `clamped` so the iteration cannot stomp them before their drivers
  /// settle.  Throws if no fixpoint is reached or if the released clamps
  /// are inconsistent with the seeded values.
  void settle_initial(Simulator& sim,
                      const std::vector<int>& clamped = {}) const;

  void on_change(Simulator& sim, int net) override;

 private:
  /// Evaluates gate `g`; `faulted` applies the fault plan's stuck-at
  /// forcing (event-driven path), false evaluates the healthy function
  /// (initial settling).
  bool eval(const Simulator& sim, std::size_t g, bool faulted) const;

  const netlist::GateNetlist& netlist_;
  std::vector<std::vector<int>> fanout_;  // net id -> gate indices
  const FaultPlan* faults_ = nullptr;
};

}  // namespace bb::sim
